"""Service throughput: client count x scheduler policy sweep.

The serving-layer cousin of the paper's Sec. 8 overhead tables: the
multi-tenant gateway (docs/SERVICE.md) serves a closed-loop workload --
each simulated client keeps one request outstanding -- and we sweep the
concurrency level against the three scheduler policies:

* **fifo**     -- release at completion, global arrival order (baseline);
* **rr**       -- release at completion, per-tenant round-robin fairness;
* **quantized** -- TIFC-style batched starts and grid-aligned releases.

Per cell the table reports throughput (completed requests per million
cycles of makespan), p50/p95/p99 client-observed latency (streamed
through :class:`repro.telemetry.StreamingHistogram`, the same quantile
machinery ``repro serve --profile`` uses), the worst tenant's observed
release-time leakage in bits, the worst cross-tenant distinguisher
advantage, and the audit verdict.  The expected shape:

* every cell's audit holds (observed bits within the Theorem 2 bound --
  the handlers' language-level mitigation plus the release discipline do
  their job at every load level);
* quantized throughput <= fifo throughput at equal load, and quantized
  latency >= fifo latency: the price of holding releases to the grid is
  idle boundary time, which is exactly Ford's TIFC trade-off.

The sweep grid (policies, client counts, request count, quantum, seed,
tenants) is the canonical one from :mod:`repro.telemetry.bench`, so the
``BENCH_service.json`` this benchmark writes to the repo root agrees
cell-for-cell with ``repro bench --suite service``.
"""

import time

from repro.service import audit_service, serve_workload
from repro.service.audit import service_document
from repro.telemetry import StreamingHistogram
from repro.telemetry.bench import (
    SCHEMA as BENCH_SCHEMA,
    SERVICE_CLIENT_COUNTS as CLIENT_COUNTS,
    SERVICE_POLICIES as POLICIES,
    SERVICE_QUANTUM as QUANTUM,
    SERVICE_REQUESTS as REQUESTS,
    SERVICE_SEED as SEED,
    SERVICE_TENANTS as TENANTS,
    service_case,
    service_spec,
)

from _report import Report, write_bench, write_metrics


def _sweep():
    """Measure every cell: (result, audit, wall seconds)."""
    cells = {}
    for policy in POLICIES:
        for clients in CLIENT_COUNTS:
            started = time.perf_counter_ns()
            result = serve_workload(service_spec(policy, clients))
            wall = (time.perf_counter_ns() - started) / 1e9
            audit = audit_service(result)
            cells[(policy, clients)] = (result, audit, wall)
    return cells


def _latency_quantiles(result):
    hist = StreamingHistogram()
    for response in result.completed():
        hist.observe(response.latency)
    return hist.quantiles()


def _build_report():
    cells = _sweep()
    report = Report(
        "service_throughput",
        "Service throughput: client count x scheduler policy",
    )
    report.line(f"{REQUESTS} closed-loop requests over {len(TENANTS)} "
                f"tenants; quantum={QUANTUM} cycles; seed={SEED}")
    report.line()

    rows = []
    for (policy, clients), (result, audit, _wall) in sorted(cells.items()):
        q = _latency_quantiles(result)
        cross = max(
            (p.probe.advantage for p in audit.cross_tenant), default=0.0
        )
        rows.append((
            policy, clients, len(result.completed()),
            f"{result.throughput_per_mcycle():.1f}",
            q["p50"], q["p95"], q["p99"],
            f"{audit.max_observed_bits():.3f}",
            f"{cross:+.3f}",
            "ok" if audit.ok else "VIOLATED",
        ))
    report.table(
        ("policy", "clients", "completed", "req/Mcycle", "p50 lat",
         "p95 lat", "p99 lat", "leaked bits", "cross adv", "audit"),
        rows,
    )

    all_ok = all(audit.ok for _, audit, _ in cells.values())
    report.expect(
        "every policy x load cell within the Theorem 2 bound",
        "all audits hold",
        f"{sum(a.ok for _, a, _ in cells.values())}/{len(cells)} ok",
        all_ok,
    )
    tifc_price = all(
        cells[("quantized", c)][0].throughput_per_mcycle()
        <= cells[("fifo", c)][0].throughput_per_mcycle()
        for c in CLIENT_COUNTS
    )
    report.expect(
        "quantized release trades throughput for uniformity",
        "quantized <= fifo req/Mcycle at equal load",
        {c: (f"q={cells[('quantized', c)][0].throughput_per_mcycle():.1f}"
             f" vs f={cells[('fifo', c)][0].throughput_per_mcycle():.1f}")
         for c in CLIENT_COUNTS},
        tifc_price,
    )

    # The perf-trajectory document: makespan cycles over host wall time
    # per cell, gated by `repro bench --compare BENCH_service.json`.
    bench_doc = {
        "schema": BENCH_SCHEMA,
        "kind": "service",
        "config": {
            "requests": REQUESTS,
            "client_counts": list(CLIENT_COUNTS),
            "policies": list(POLICIES),
            "quantum": QUANTUM,
            "seed": SEED,
            "tenants": [t["name"] for t in TENANTS],
        },
        "entries": {
            f"service/{policy}/c{clients}": service_case(result, audit, wall)
            for (policy, clients), (result, audit, wall)
            in sorted(cells.items())
        },
    }
    bench_path = write_bench(bench_doc)

    # One full telemetry document for the heaviest quantized cell, so the
    # service section is inspectable with `repro report`.
    heavy = cells[("quantized", CLIENT_COUNTS[-1])]
    metrics_path = write_metrics(
        "service_throughput", service_document(heavy[0], heavy[1])
    )
    report.line()
    report.line(f"Telemetry (quantized, {CLIENT_COUNTS[-1]} clients): "
                f"{metrics_path}")
    report.line(f"Perf trajectory: {bench_path}")
    report.emit()
    return all_ok and tifc_price


def test_service_throughput(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
