"""Service throughput: client count x scheduler policy sweep.

The serving-layer cousin of the paper's Sec. 8 overhead tables: the
multi-tenant gateway (docs/SERVICE.md) serves a closed-loop workload --
each simulated client keeps one request outstanding -- and we sweep the
concurrency level against the three scheduler policies:

* **fifo**     -- release at completion, global arrival order (baseline);
* **rr**       -- release at completion, per-tenant round-robin fairness;
* **quantized** -- TIFC-style batched starts and grid-aligned releases.

Per cell the table reports throughput (completed requests per million
cycles of makespan), p50/p99 client-observed latency, the worst tenant's
observed release-time leakage in bits, the worst cross-tenant
distinguisher advantage, and the audit verdict.  The expected shape:

* every cell's audit holds (observed bits within the Theorem 2 bound --
  the handlers' language-level mitigation plus the release discipline do
  their job at every load level);
* quantized throughput <= fifo throughput at equal load, and quantized
  latency >= fifo latency: the price of holding releases to the grid is
  idle boundary time, which is exactly Ford's TIFC trade-off.
"""

from repro.service import WorkloadSpec, audit_service, serve_workload
from repro.service.audit import service_document

from _report import Report, write_metrics

POLICIES = ("fifo", "rr", "quantized")
CLIENT_COUNTS = (4, 12)
REQUESTS = 80
QUANTUM = 2048
SEED = 2012

TENANTS = [
    {"name": "acme-login", "app": "login", "weight": 2.0,
     "config": {"table_size": 8}},
    {"name": "bank-passwords", "app": "password", "weight": 2.0,
     "config": {"length": 6}},
    {"name": "cdn-sbox", "app": "sbox", "weight": 1.0,
     "config": {"length": 6}},
]


def _spec(policy: str, clients: int) -> WorkloadSpec:
    return WorkloadSpec.from_dict({
        "seed": SEED,
        "requests": REQUESTS,
        "policy": policy,
        "quantum": QUANTUM,
        "workers": 2,
        "queue_depth": 8,
        "arrival": {"kind": "closed", "clients": clients, "think": 512},
        "tenants": TENANTS,
    })


def _sweep():
    cells = {}
    for policy in POLICIES:
        for clients in CLIENT_COUNTS:
            result = serve_workload(_spec(policy, clients))
            audit = audit_service(result)
            cells[(policy, clients)] = (result, audit)
    return cells


def _build_report():
    cells = _sweep()
    report = Report(
        "service_throughput",
        "Service throughput: client count x scheduler policy",
    )
    report.line(f"{REQUESTS} closed-loop requests over {len(TENANTS)} "
                f"tenants; quantum={QUANTUM} cycles; seed={SEED}")
    report.line()

    rows = []
    for (policy, clients), (result, audit) in sorted(cells.items()):
        latencies = sorted(
            r.latency for r in result.completed()
        )
        p50 = latencies[len(latencies) // 2] if latencies else 0
        p99 = latencies[min(len(latencies) - 1,
                            int(len(latencies) * 0.99))] if latencies else 0
        cross = max(
            (p.probe.advantage for p in audit.cross_tenant), default=0.0
        )
        rows.append((
            policy, clients, len(result.completed()),
            f"{result.throughput_per_mcycle():.1f}",
            p50, p99,
            f"{audit.max_observed_bits():.3f}",
            f"{cross:+.3f}",
            "ok" if audit.ok else "VIOLATED",
        ))
    report.table(
        ("policy", "clients", "completed", "req/Mcycle", "p50 lat",
         "p99 lat", "leaked bits", "cross adv", "audit"),
        rows,
    )

    all_ok = all(audit.ok for _, audit in cells.values())
    report.expect(
        "every policy x load cell within the Theorem 2 bound",
        "all audits hold",
        f"{sum(a.ok for _, a in cells.values())}/{len(cells)} ok",
        all_ok,
    )
    tifc_price = all(
        cells[("quantized", c)][0].throughput_per_mcycle()
        <= cells[("fifo", c)][0].throughput_per_mcycle()
        for c in CLIENT_COUNTS
    )
    report.expect(
        "quantized release trades throughput for uniformity",
        "quantized <= fifo req/Mcycle at equal load",
        {c: (f"q={cells[('quantized', c)][0].throughput_per_mcycle():.1f}"
             f" vs f={cells[('fifo', c)][0].throughput_per_mcycle():.1f}")
         for c in CLIENT_COUNTS},
        tifc_price,
    )

    # One full telemetry document for the heaviest quantized cell, so the
    # service section is inspectable with `repro report`.
    heavy = cells[("quantized", CLIENT_COUNTS[-1])]
    metrics_path = write_metrics(
        "service_throughput", service_document(heavy[0], heavy[1])
    )
    report.line()
    report.line(f"Telemetry (quantized, {CLIENT_COUNTS[-1]} clients): "
                f"{metrics_path}")
    report.emit()
    return all_ok and tifc_price


def test_service_throughput(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
