"""Red-team advantage: attack x scheduler policy sweep over the gateway.

The adversarial cousin of ``bench_service_throughput``: instead of
honest closed-loop clients we run the registered red-team attacks
(:mod:`repro.adversary`) against the live gateway under each scheduler
policy and tabulate the measured distinguisher advantage, Welch p-value,
and extracted bits against the victim tenant's Theorem 2 budget.

The expected shape is the campaign's falsifiable-in-both-directions
claim:

* **fifo / rr** (release at completion) are the *positive controls*:
  the unmitigated crack victims leak their full secrets -- nonzero
  bits extracted at perfect recovery accuracy with a statistically
  significant Welch verdict -- proving the harness actually measures a
  channel;
* **quantized** release holds every attack at or below its budget:
  the strict-signal gate reports zero extracted bits because all
  observables collapse onto quantum boundaries;
* the ``mitigate``-wrapped victim holds under *every* policy: the
  language-level defense does not need the scheduler's help.

The sweep reuses the campaign runner cell-for-cell, so this table
agrees with ``repro attack --policy fifo,rr,quantized`` at the same
seed, and the emitted ``repro.adversary/1`` document is the same
artifact the CI adversary job uploads.
"""

import json
import time

from repro.adversary import REGISTRY, run_campaign

from _report import Report, ensure_results_dir
import os

SEED = 7
QUANTUM = 4096
POLICIES = ("fifo", "rr", "quantized")


def _run():
    started = time.perf_counter_ns()
    document = run_campaign(policies=POLICIES, seed=SEED, quantum=QUANTUM)
    wall = (time.perf_counter_ns() - started) / 1e9
    return document, wall


def _build_report():
    document, wall = _run()
    report = Report(
        "attack_advantage",
        "Red-team advantage: attack x scheduler policy",
    )
    report.line(f"{len(REGISTRY)} registered attacks x "
                f"{len(POLICIES)} policies; quantum={QUANTUM}; "
                f"seed={SEED}; {wall:.1f}s wall")
    report.line()

    rows = []
    for cell in document["cells"]:
        rows.append((
            cell["attack"], cell["policy"], cell["clients"],
            f"{cell['advantage']:+.3f}",
            f"{cell['p_value']:.2e}",
            f"{cell['bits_extracted']:.1f}",
            f"{cell['budget_bits']:.1f}",
            f"{cell['accuracy']:.2f}",
            cell["expected"],
            "ok" if cell["ok"] else "BUDGET BEATEN",
        ))
    report.table(
        ("attack", "policy", "clients", "advantage", "p-value",
         "bits", "budget", "accuracy", "expected", "verdict"),
        rows,
    )
    report.line()

    cells = document["cells"]
    fifo_leaks = [
        c for c in cells
        if c["policy"] == "fifo" and c["expected"] == "leaks"
    ]
    positive = bool(fifo_leaks) and all(
        c["significant"] and c["bits_extracted"] > 0 and c["accuracy"] == 1.0
        for c in fifo_leaks
    )
    report.expect(
        "fifo leaks the unmitigated victims (positive control)",
        "full recovery, significant Welch verdict",
        f"{sum(c['bits_extracted'] for c in fifo_leaks):.0f} bits over "
        f"{len(fifo_leaks)} cells",
        positive,
    )
    quantized = [c for c in cells if c["policy"] == "quantized"]
    defended = bool(quantized) and all(c["within_budget"] for c in quantized)
    report.expect(
        "quantized release holds every attack at/below budget",
        "0 extracted bits in every quantized cell",
        f"{sum(c['bits_extracted'] for c in quantized):.0f} bits over "
        f"{len(quantized)} cells",
        defended,
    )
    mitigated = [
        c for c in cells if c["attack"] == "password-crack-mitigated"
    ]
    language_level = bool(mitigated) and all(
        c["within_budget"] and c["bits_extracted"] == 0 for c in mitigated
    )
    report.expect(
        "the mitigate-wrapped victim holds under every policy",
        "0 extracted bits under fifo, rr, and quantized",
        f"{sum(c['bits_extracted'] for c in mitigated):.0f} bits over "
        f"{len(mitigated)} cells",
        language_level,
    )

    ensure_results_dir()
    doc_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results",
        "attack_advantage_campaign.json",
    )
    with open(doc_path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    report.line()
    report.line(f"Campaign document ({document['schema']}): {doc_path}")
    report.emit()
    return positive and defended and language_level and document["ok"]


def test_attack_advantage(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
