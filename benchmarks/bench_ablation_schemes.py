"""Ablation: prediction schemes, penalty policies, and initial predictions.

Design choices inside the mitigation runtime (Sec. 7, Sec. 8.2):

* *scheme*: fast doubling vs polynomial backoff -- doubling admits only
  ``O(log T)`` distinct durations (small leakage) but pads up to 2x;
  polynomial pads tighter but admits more distinct durations (more
  leakage);
* *penalty policy*: local (per-level Miss counters) vs global (shared) --
  with a multilevel lattice the local policy keeps one level's
  mispredictions from inflating another's predictions;
* *initial prediction* (Sec. 8.2): 110% of sampled average vs a wild
  underestimate -- a good initial prediction removes most padding waste.

Measured on the mitigated-sleep microbenchmark with enumerable secrets.
"""

import random

from repro import api
from repro.lang import DEFAULT_LATTICE, parse
from repro.lattice import chain
from repro.machine import Memory
from repro.hardware import NullHardware
from repro.quantitative import secret_variants, timing_variations
from repro.semantics import (
    DoublingScheme,
    MitigationState,
    PolynomialScheme,
    execute,
)

from _report import Report, mean

LAT = DEFAULT_LATTICE
SECRETS = range(1, 129)


def _run_scheme(scheme, budget):
    """Mitigated sleep(h) over all secrets: (avg padded time, #durations)."""
    src = f"mitigate({budget}, H) {{ sleep(h) [H,H] }} [L,L]"
    program = parse(src)
    durations = set()
    times = []
    for h in SECRETS:
        result = execute(
            program, Memory({"h": h}), NullHardware(LAT),
            mitigation=MitigationState(scheme=scheme),
        )
        durations.add(result.mitigations[0].duration)
        times.append(result.time)
    return mean(times), len(durations)


def _run_policy(policy):
    """Two levels mitigated in one long-running state: does an H
    misprediction inflate M's predictions?"""
    lat = chain(("L", "M", "H"))
    src = ("mitigate(10, H) { sleep(h) [H,H] } [L,L];"
           "mitigate(10, M) { sleep(m) [M,M] } [L,L]")
    program = parse(src, lat)
    state = MitigationState(policy=policy)
    result = execute(
        program, Memory({"h": 500, "m": 3}), NullHardware(lat),
        mitigation=state,
    )
    h_dur, m_dur = (result.mitigations[0].duration,
                    result.mitigations[1].duration)
    return h_dur, m_dur


def _build_report():
    report = Report("ablation_schemes",
                    "Ablation: mitigation schemes, policies, predictions")

    report.line("Scheme comparison (sleep(h), h in 1..128, budget 8):")
    rows = []
    outcomes = {}
    for scheme in (DoublingScheme(), PolynomialScheme(1),
                   PolynomialScheme(2)):
        avg, n_durations = _run_scheme(scheme, budget=8)
        outcomes[scheme.name()] = (avg, n_durations)
        rows.append((scheme.name(), f"{avg:.0f}", n_durations))
    report.table(("scheme", "avg padded time", "distinct durations"), rows)
    doubling_avg, doubling_n = outcomes["DoublingScheme"]
    linear_avg, linear_n = outcomes["PolynomialScheme(q=1)"]
    tradeoff = doubling_n < linear_n and doubling_avg > linear_avg * 0.7
    report.expect(
        "doubling leaks less (fewer durations), polynomial pads tighter",
        "security/performance trade-off",
        f"doubling {doubling_n} durations vs linear {linear_n}",
        doubling_n < linear_n,
    )

    report.line()
    report.line("Penalty policy (H mispredicts badly; M block follows):")
    rows = []
    policy_out = {}
    for policy in ("local", "global"):
        h_dur, m_dur = _run_policy(policy)
        policy_out[policy] = (h_dur, m_dur)
        rows.append((policy, h_dur, m_dur))
    report.table(("policy", "H block duration", "M block duration"), rows)
    local_isolates = policy_out["local"][1] < policy_out["global"][1]
    report.expect(
        "local policy isolates levels (M unaffected by H's misprediction)",
        "local keeps M at its own prediction",
        f"M: local={policy_out['local'][1]} vs "
        f"global={policy_out['global'][1]}",
        local_isolates,
    )

    report.line()
    report.line("Initial prediction (Sec. 8.2: 110% of sampled average), "
                "long-running server state:")
    cp = api.compile_program("mitigate(b, H) { sleep(h) }; l := 1",
                             gamma={"h": "H", "l": "L", "b": "L"})
    sampled = mean([h for h in SECRETS])
    good = int(1.10 * sampled)
    stream = list(SECRETS)
    random.Random(7).shuffle(stream)  # requests arrive in no helpful order
    rows = []
    totals = {}
    for name, budget in (("110% of average", good), ("underestimate (1)", 1)):
        # One predictor state across the request stream, like the paper's
        # web server: a blind estimate's Miss counter climbs to cover the
        # worst request and every later request pays the inflated power
        # of two, while a sampled estimate settles low.
        state = MitigationState()
        times = [
            cp.run({"h": h, "l": 0, "b": budget}, hardware="null",
                   mitigation=state).time
            for h in stream
        ]
        totals[name] = mean(times)
        rows.append((name, budget, f"{mean(times):.0f}"))
    report.table(("policy", "initial prediction", "avg total time"), rows)
    calibration_helps = totals["110% of average"] <= \
        totals["underestimate (1)"]
    report.expect(
        "sampled initial prediction reduces padding waste",
        "110%-of-average beats a blind estimate",
        {k: round(v) for k, v in totals.items()},
        calibration_helps,
    )
    report.emit()
    return (doubling_n < linear_n) and local_isolates and calibration_helps


def test_ablation_mitigation_choices(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
