"""Extension experiment: the branch-predictor channel (Sec. 2.1's list).

The paper names "branch predictors and branch target buffers" (Aciicmez,
Koc, Seifert) among the hardware sources of indirect timing dependencies.
With the optional predictor component enabled, this bench measures:

* the *victim-side* channel: a secret-outcome branch executed repeatedly
  makes the victim's own later public branch faster/slower on shared
  hardware;
* the *attacker-side* channel: an attacker branch aliasing the victim's
  table entry is timed directly (simple branch prediction analysis);
* both channels on the secure designs, where the per-level predictors
  (partitioned) or the no-train discipline (no-fill) close them;
* the performance the predictor buys back on a public loop, per design.
"""

from dataclasses import replace

from repro.lang import DEFAULT_LATTICE, parse
from repro.machine import AccessTrace, Memory
from repro.hardware import (
    BranchPredictorParams,
    NoFillHardware,
    PartitionedHardware,
    StandardHardware,
    StepKind,
    tiny_machine,
)
from repro.semantics import execute

from _report import Report

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]
CODE = 0x0040_0000

DESIGNS = {
    "nopar": StandardHardware,
    "nofill": NoFillHardware,
    "partitioned": PartitionedHardware,
}


def _machine():
    return replace(tiny_machine(),
                   branch=BranchPredictorParams(entries=16, penalty=3))


def _attacker_channel(cls):
    """Attacker times its own aliasing branch after the victim trains."""
    costs = {}
    for secret in (0, 1):
        env = cls(LAT, _machine())
        for _ in range(4):  # victim: secret-outcome branch, high context
            env.step(StepKind.BRANCH,
                     AccessTrace(instruction=CODE, taken=bool(secret)),
                     H, H)
        alias = CODE + 16 * 8  # same predictor entry
        costs[secret] = env.step(
            StepKind.BRANCH, AccessTrace(instruction=alias, taken=True),
            L, L,
        )
    return costs


def _victim_side_channel(cls):
    """The victim's own public branch timing after secret training."""
    src = """
    while h > 0 do { h := h - 1 [H,H] } [H,H];
    if l1 then { l2 := 1 [L,L] } else { l2 := 2 [L,L] } [L,L]
    """
    times = {}
    for h in (0, 6):
        r = execute(parse(src), Memory({"h": h, "l1": 1, "l2": 0}),
                    cls(LAT, _machine()))
        times[h] = next(e.time for e in r.events if e.name == "l2") - 0
    return times


def _loop_speedup(cls):
    """Cycles a predictable public loop costs with vs without predictor."""
    src = "i := 12 [L,L]; while i > 0 do { i := i - 1 [L,L] } [L,L]"
    with_bp = execute(parse(src), Memory({"i": 0}), cls(LAT, _machine())).time
    without = execute(parse(src), Memory({"i": 0}),
                      cls(LAT, tiny_machine())).time
    return with_bp, without


def _build_report():
    report = Report("branch_channel",
                    "Extension: the branch-predictor channel")
    rows = []
    attacker = {}
    for name, cls in DESIGNS.items():
        attacker[name] = _attacker_channel(cls)
        victim = _victim_side_channel(cls)
        with_bp, without = _loop_speedup(cls)
        rows.append((
            name,
            "leaks" if len(set(attacker[name].values())) > 1 else "blind",
            "leaks" if len(set(victim.values())) > 1 else "blind",
            f"{with_bp - without:+d} cycles",
        ))
    report.table(
        ("design", "attacker aliasing probe", "victim public branch",
         "predictor cost on public loop"),
        rows,
    )
    nopar_leaks = len(set(attacker["nopar"].values())) > 1
    secure_blind = all(
        len(set(attacker[n].values())) == 1
        for n in ("nofill", "partitioned")
    )
    report.expect(
        "simple branch prediction analysis works on shared predictors",
        "Aciicmez et al.: attacker's aliasing branch is timing-correlated",
        f"{attacker}", nopar_leaks,
    )
    report.expect(
        "per-level predictors / no-train discipline close the channel",
        "0 bits via the predictor", "attacker probe constant",
        secure_blind,
    )
    report.emit()
    return nopar_leaks and secure_blind


def test_branch_predictor_channel(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
