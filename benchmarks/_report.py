"""Shared reporting for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
and prints paper-expected vs measured rows.  Output goes both to stdout
(visible with ``pytest -s`` or in the captured section) and to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
artifacts.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Iterable, Mapping, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def ensure_results_dir() -> str:
    """Create ``benchmarks/results/`` when absent (fresh clones don't ship
    the generated JSON artifacts; see .gitignore) and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_metrics(name: str, payload: Mapping[str, Any]) -> str:
    """Write a telemetry JSON document (``repro.telemetry/1``) next to the
    text reports as ``benchmarks/results/<name>_metrics.json``; returns the
    path.  ``payload`` is typically
    ``MetricsRegistry.as_dict(leakage=meter.as_dict())``.  The schema
    version is stamped uniformly here so every ``bench_*`` artifact is
    version-tagged even when a producer builds the document by hand."""
    from repro.telemetry import SCHEMA

    ensure_results_dir()
    doc = dict(payload)
    doc.setdefault("schema", SCHEMA)
    path = os.path.join(RESULTS_DIR, f"{name}_metrics.json")
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return path


def write_bench(doc: Mapping[str, Any], path: "str | None" = None) -> str:
    """Write a perf-trajectory document (``repro.bench/1``, stamping the
    schema) and return the path.  Defaults to the repo-root
    ``BENCH_<kind>.json`` — the committed baselines that ``repro bench
    --compare`` gates against (docs/PROFILING.md)."""
    from repro.telemetry.bench import write_bench_document

    if path is None:
        kind = doc.get("kind", "core")
        path = os.path.join(REPO_ROOT, f"BENCH_{kind}.json")
    return write_bench_document(path, doc)


def write_trace(name: str, spans) -> str:
    """Write a Chrome trace-event timeline (Perfetto-loadable) next to the
    text reports as ``benchmarks/results/<name>_trace.json``; returns the
    path.  ``spans`` is a :class:`repro.telemetry.SpanRecorder` span list
    (``detail="epochs"`` keeps benchmark streams compact: one track per
    run, one child span per mitigate epoch)."""
    from repro.telemetry import write_chrome_trace

    ensure_results_dir()
    path = os.path.join(RESULTS_DIR, f"{name}_trace.json")
    write_chrome_trace(path, spans)
    return path


class Report:
    """Collects the rows of one reproduced table/figure."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self._buffer = io.StringIO()
        self.line("=" * 72)
        self.line(title)
        self.line("=" * 72)

    def line(self, text: str = "") -> None:
        self._buffer.write(text + "\n")

    def table(self, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
        rows = [[str(c) for c in row] for row in rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]
        self.line("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
        self.line("  ".join("-" * w for w in widths))
        for row in rows:
            self.line("  ".join(c.ljust(w) for c, w in zip(row, widths)))

    def expect(self, what: str, paper: str, measured: str, ok: bool) -> None:
        verdict = "REPRODUCED" if ok else "DIVERGED"
        self.line(f"[{verdict}] {what}: paper={paper} measured={measured}")

    def emit(self) -> str:
        text = self._buffer.getvalue()
        ensure_results_dir()
        with open(os.path.join(RESULTS_DIR, f"{self.name}.txt"), "w") as f:
            f.write(text)
        print("\n" + text)
        return text


def series_constant(values: Sequence[int]) -> bool:
    return len(set(values)) == 1


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def ascii_plot(
    series: "dict[str, Sequence[float]]",
    width: int = 64,
    height: int = 12,
) -> str:
    """A monochrome ASCII rendering of one or more y-series.

    Each series gets a marker character; x positions are the sample
    indices scaled to ``width``.  Good enough to eyeball the *shape* the
    paper's figures show (separated bands, coinciding flat lines,
    staircases vs linear growth).
    """
    markers = "ox+*#@%&"
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return "(empty plot)"
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1
    grid = [[" "] * width for _ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        n = len(values)
        for i, value in enumerate(values):
            x = int(i * (width - 1) / max(n - 1, 1))
            y = int((value - lo) * (height - 1) / span)
            row = height - 1 - y
            grid[row][x] = marker
    lines = [
        f"{hi:>10.0f} |" + "".join(grid[0]),
    ]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:>10.0f} |" + "".join(grid[-1]))
    legend = "   ".join(
        f"{marker} {name}"
        for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
