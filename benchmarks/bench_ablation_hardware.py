"""Ablation: every registered hardware design on one workload.

DESIGN.md calls out the hardware choice as the central design axis.  This
bench used to hard-code the four classic designs (``null``, ``nopar``,
``nofill``, ``partitioned``); it now iterates the
:data:`repro.hardware.REGISTRY`, so new zoo entries (shared bus, write-back
cache, speculative front-end, ...) show up here automatically.  For each
model it reports:

* contract compliance (which of Properties 2/5/6/7 hold) against the
  spec's declared verdict -- secure designs must be clean, adversarial
  designs must be flagged with a property their spec claims to break;
* performance (average login time), showing the paper's ordering: the
  partitioned design buys security back at modest cost over no-fill's
  heavier penalty on high-context code.
"""

from repro.apps.login import CredentialTable, LoginSystem, login_attempt_times
from repro.hardware import REGISTRY, run_contract_suite, tiny_machine
from repro.lang import DEFAULT_LATTICE

from _report import Report, mean

LAT = DEFAULT_LATTICE
MODELS = REGISTRY.names()
TABLE = 60


def _contract(spec):
    # 40 trials: enough for the rare leaks (the speculative model needs a
    # probe branch to alias a trained site with a prediction flip).
    report = run_contract_suite(
        lambda: spec.make(LAT, tiny_machine()),
        LAT,
        trials=40,
        seed=7,
    )
    return report.failing_properties()


def _performance():
    creds = CredentialTable.generate(size=TABLE, valid=TABLE // 2, seed=3)
    system = LoginSystem(table_size=TABLE, mitigated=False)
    return {
        name: mean(login_attempt_times(system, creds, hardware=name))
        for name in MODELS
    }


def _as_declared(spec, failing):
    """Does the contract verdict match the registry's claim?"""
    if spec.expected_secure:
        return not failing
    return bool(failing) and set(failing) <= set(spec.violates)


def _build_report():
    report = Report("ablation_hardware",
                    "Ablation: hardware designs (security x cost)")
    failures = {spec.name: _contract(spec) for spec in REGISTRY}
    perf = _performance()
    base = perf["standard"]
    report.table(
        ("design", "expected", "contract violations", "avg login time",
         "vs nopar"),
        [
            (spec.name, spec.verdict_word(),
             ", ".join(failures[spec.name]) or "none",
             f"{perf[spec.name]:.0f}",
             f"{perf[spec.name] / base:.2f}x")
            for spec in REGISTRY
        ],
    )
    verdicts_ok = all(
        _as_declared(spec, failures[spec.name]) for spec in REGISTRY
    )
    nopar_flagged = "P5-write-label" in failures["standard"]
    cost_ordering = (
        perf["standard"] <= perf["partitioned"] <= perf["nofill"]
    )
    report.expect("every design matches its registry verdict",
                  "secure clean; adversarial flagged as declared",
                  f"{failures}", verdicts_ok)
    report.expect("commodity hardware violates the write-label property",
                  "high contexts imprint on shared cache",
                  f"{failures['standard']}", nopar_flagged)
    report.expect(
        "partitioned cheaper than no-fill (the Sec. 4.3 motivation)",
        "nopar <= partitioned <= nofill",
        {k: round(v) for k, v in perf.items()},
        cost_ordering,
    )
    report.emit()
    return verdicts_ok and nopar_flagged and cost_ordering


def test_ablation_hardware_designs(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
