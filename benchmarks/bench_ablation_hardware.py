"""Ablation: the four hardware designs on one workload (security x cost).

DESIGN.md calls out the hardware choice as the central design axis:
``null`` (fixed-cost abstract machine), ``nopar`` (commodity shared caches),
``nofill`` (Sec. 4.2) and ``partitioned`` (Sec. 4.3).  This bench runs the
login workload on each and reports:

* contract compliance (which of Properties 2/5/6/7 hold);
* the cache-probe verdict (can a coresident adversary read the secret out
  of the environment after a run?);
* performance (average login time), showing the paper's ordering: the
  partitioned design buys security back at modest cost over no-fill's
  heavier penalty on high-context code.
"""

from repro.apps.login import CredentialTable, LoginSystem, login_attempt_times
from repro.hardware import make_hardware, run_contract_suite, tiny_machine
from repro.lang import DEFAULT_LATTICE

from _report import Report, mean

LAT = DEFAULT_LATTICE
MODELS = ("null", "nopar", "nofill", "partitioned")
TABLE = 60


def _contract(name):
    report = run_contract_suite(
        lambda: make_hardware(name, LAT,
                              None if name == "null" else tiny_machine()),
        LAT,
        trials=10,
    )
    return report.failing_properties()


def _performance():
    creds = CredentialTable.generate(size=TABLE, valid=TABLE // 2, seed=3)
    system = LoginSystem(table_size=TABLE, mitigated=False)
    return {
        name: mean(login_attempt_times(system, creds, hardware=name))
        for name in MODELS
    }


def _build_report():
    report = Report("ablation_hardware",
                    "Ablation: hardware designs (security x cost)")
    failures = {name: _contract(name) for name in MODELS}
    perf = _performance()
    base = perf["nopar"]
    report.table(
        ("design", "contract violations", "avg login time",
         "vs nopar"),
        [
            (name, ", ".join(failures[name]) or "none",
             f"{perf[name]:.0f}", f"{perf[name] / base:.2f}x")
            for name in MODELS
        ],
    )
    secure_ok = all(not failures[n] for n in ("null", "nofill",
                                              "partitioned"))
    nopar_flagged = "P5-write-label" in failures["nopar"]
    cost_ordering = perf["nopar"] <= perf["partitioned"] <= perf["nofill"]
    report.expect("secure designs satisfy the whole contract",
                  "Properties 2,5-7 hold", f"{failures}", secure_ok)
    report.expect("commodity hardware violates the write-label property",
                  "high contexts imprint on shared cache",
                  f"{failures['nopar']}", nopar_flagged)
    report.expect(
        "partitioned cheaper than no-fill (the Sec. 4.3 motivation)",
        "nopar <= partitioned <= nofill",
        {k: round(v) for k, v in perf.items()},
        cost_ordering,
    )
    report.emit()
    return secure_ok and nopar_flagged and cost_ordering


def test_ablation_hardware_designs(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
