"""Figure 8: RSA decryption time for two private keys.

Paper setup: 100 encrypted messages decrypted under two different private
keys.  Upper plot (unmitigated): the two keys' decryption-time series are
clearly separated -- decryption time leaks the private key.  Lower plot
(mitigated, per-block language-level mitigation): the time is *exactly* the
same constant (the paper measures exactly 32,001,922 cycles) regardless of
key and message.

Shape asserted here:

* unmitigated: the per-key series are disjoint (every time under the
  heavier key exceeds every time under the lighter key, as in the plot);
* mitigated: one single value across all 2 x 100 runs.
"""

import random

from repro.apps.rsa import RsaSystem, decryption_times
from repro.apps.rsa_math import generate_keypair
from repro.telemetry import (
    DynamicLeakageMeter,
    RecordingTraceRecorder,
    SpanRecorder,
    TeeRecorder,
)

from _report import Report, ascii_plot, write_metrics, write_trace

KEY_BITS = 48
BLOCKS = 4
MESSAGES = 100
HARDWARE = "partitioned"


def _two_keys_with_distinct_weights(spread=5):
    keys = []
    for seed in range(500):
        key = generate_keypair(KEY_BITS, seed=seed)
        if all(abs(key.hamming_weight() - k.hamming_weight()) >= spread
               for k in keys):
            keys.append(key)
        if len(keys) == 2:
            return sorted(keys, key=lambda k: k.hamming_weight())
    raise AssertionError("no spread keys found")


def _run_experiment():
    light, heavy = _two_keys_with_distinct_weights()
    rng = random.Random(20120611)
    n_min = min(light.n, heavy.n)
    messages = [
        [rng.randrange(1, n_min) for _ in range(BLOCKS)]
        for _ in range(MESSAGES)
    ]

    unmitigated = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                            mitigation_mode="none")
    upper = decryption_times(unmitigated, [light, heavy], messages,
                             hardware=HARDWARE)

    mitigated = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                          mitigation_mode="language")
    budget = mitigated.calibrate_budget(samples=8, hardware=HARDWARE)
    # Telemetry over the mitigated stream: each of the 2 x 100 decryptions
    # is one run; the meter's observed deadline sequences must stay within
    # the static Theorem 2 bound.
    meter = DynamicLeakageMeter(mitigated.lattice)
    metrics_recorder = RecordingTraceRecorder(meter=meter)
    # Epoch-granularity spans: one Perfetto track per decryption, one
    # child span per per-block mitigate epoch.
    span_recorder = SpanRecorder(detail="epochs")
    recorder = TeeRecorder(metrics_recorder, span_recorder)
    lower = decryption_times(mitigated, [light, heavy], messages,
                             hardware=HARDWARE, recorder=recorder)
    return (light, heavy, upper, lower, budget, metrics_recorder, meter,
            span_recorder)


def _build_report():
    (light, heavy, upper, lower, budget, recorder, meter,
     span_recorder) = _run_experiment()
    report = Report("fig8", "Figure 8: RSA decryption time, two private keys")
    report.line(
        f"{MESSAGES} messages of {BLOCKS} blocks; {KEY_BITS}-bit keys; "
        f"hardware={HARDWARE}; per-block initial prediction={budget}"
    )
    report.line(
        f"key A weight(d)={light.hamming_weight()}  "
        f"key B weight(d)={heavy.hamming_weight()}"
    )
    report.line()
    report.table(
        ("series", "min", "max", "mean"),
        [
            ("unmitigated, key A", min(upper[0]), max(upper[0]),
             f"{sum(upper[0]) / MESSAGES:.0f}"),
            ("unmitigated, key B", min(upper[1]), max(upper[1]),
             f"{sum(upper[1]) / MESSAGES:.0f}"),
            ("mitigated, key A", min(lower[0]), max(lower[0]),
             f"{sum(lower[0]) / MESSAGES:.0f}"),
            ("mitigated, key B", min(lower[1]), max(lower[1]),
             f"{sum(lower[1]) / MESSAGES:.0f}"),
        ],
    )

    report.line()
    report.line("Upper plot (unmitigated, per message):")
    report.line(ascii_plot({"key A": upper[0], "key B": upper[1]}))
    report.line()
    report.line("Lower plot (mitigated -- one constant):")
    report.line(ascii_plot({"key A": lower[0], "key B": lower[1]}))
    keys_separated = max(upper[0]) < min(upper[1])
    mitigated_constant = len(set(lower[0]) | set(lower[1])) == 1
    report.expect(
        "upper: the two keys' series are separated",
        "different decryption times per key",
        f"A in [{min(upper[0])},{max(upper[0])}], "
        f"B in [{min(upper[1])},{max(upper[1])}]",
        keys_separated,
    )
    report.expect(
        "lower: mitigated time is one exact constant",
        "exactly 32,001,922 cycles for both keys",
        f"exactly {lower[0][0]} cycles for both keys"
        if mitigated_constant else "NOT constant",
        mitigated_constant,
    )

    registry = recorder.registry
    metrics_path = write_metrics(
        "fig8", registry.as_dict(leakage=meter.as_dict())
    )
    trace_path = write_trace("fig8", span_recorder.spans)
    report.line()
    report.line(f"Execution timeline (Perfetto-loadable): {trace_path} "
                f"({len(span_recorder.spans)} spans)")
    report.line(f"Telemetry over the mitigated stream ({metrics_path}):")
    for line in registry.summary_lines():
        report.line(f"  {line}")
    leakage_ok = meter.holds()
    report.expect(
        "dynamic leakage accounting within the static Theorem 2 bound",
        f"<= {meter.static_bound_bits():.1f} bits",
        f"{meter.observed_variations} observed deadline sequence(s) "
        f"({meter.observed_bits:.3f} bits)",
        leakage_ok,
    )
    report.emit()
    return keys_separated and mitigated_constant and leakage_ok


def test_fig8_rsa_timing(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
