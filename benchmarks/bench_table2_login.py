"""Table 2: login time with various usernames and options.

Paper (cycles):

                      nopar    moff     mon
    ave. time (valid)   70618    78610   86132
    ave. time (invalid) 39593    43756   86147
    overhead (valid)    1        1.11    1.22

Shape to reproduce (absolute numbers are simulator-specific):

* under ``nopar`` and ``moff``, valid logins are clearly slower than
  invalid ones (the channel);
* under ``mon``, valid and invalid average times are essentially equal
  (the tiny residual difference must be secret-independent; ours is zero);
* partitioned hardware costs a modest factor over ``nopar``, and
  mitigation a further modest factor -- overheads land in the paper's
  "modest slowdown" band (roughly 1.0-1.6x rather than orders of
  magnitude).
"""

from repro.apps.login import (
    CredentialTable,
    LoginSystem,
    login_attempt_times,
    summarize_valid_invalid,
)

from _report import Report

TABLE = 100
VALID = 50  # half valid gives balanced averages, like the paper's mix
PAPER = {
    "nopar": {"valid": 70618, "invalid": 39593, "overhead": 1.00},
    "moff": {"valid": 78610, "invalid": 43756, "overhead": 1.11},
    "mon": {"valid": 86132, "invalid": 86147, "overhead": 1.22},
}


def _run_experiment():
    creds = CredentialTable.generate(size=TABLE, valid=VALID, seed=7)
    unmitigated = LoginSystem(table_size=TABLE, mitigated=False)
    mitigated = LoginSystem(table_size=TABLE, mitigated=True)
    mitigated.calibrate_budget(attempts=10, hardware="partitioned")

    configs = {
        "nopar": (unmitigated, "nopar"),
        "moff": (unmitigated, "partitioned"),
        "mon": (mitigated, "partitioned"),
    }
    measured = {}
    for name, (system, hardware) in configs.items():
        times = login_attempt_times(system, creds, hardware=hardware)
        measured[name] = summarize_valid_invalid(times, creds)
    return measured


def _build_report():
    measured = _run_experiment()
    base = measured["nopar"]["valid"]
    report = Report(
        "table2", "Table 2: Login time with various usernames and options"
    )
    rows = []
    for name in ("nopar", "moff", "mon"):
        m = measured[name]
        rows.append((
            name,
            f"{m['valid']:.0f}",
            f"{m['invalid']:.0f}",
            f"{m['valid'] / base:.2f}",
            f"{PAPER[name]['valid']}",
            f"{PAPER[name]['invalid']}",
            f"{PAPER[name]['overhead']:.2f}",
        ))
    report.table(
        ("config", "valid (meas)", "invalid (meas)", "overhead (meas)",
         "valid (paper)", "invalid (paper)", "overhead (paper)"),
        rows,
    )

    channel_nopar = measured["nopar"]["valid"] > measured["nopar"]["invalid"]
    channel_moff = measured["moff"]["valid"] > measured["moff"]["invalid"]
    mon_equal = (
        abs(measured["mon"]["valid"] - measured["mon"]["invalid"])
        <= 0.001 * measured["mon"]["valid"]
    )
    moff_overhead = measured["moff"]["valid"] / base
    mon_overhead = measured["mon"]["valid"] / base
    overheads_modest = 1.0 <= moff_overhead <= 1.8 and \
        moff_overhead <= mon_overhead <= 2.5

    report.expect("nopar: valid slower than invalid",
                  "70618 > 39593", f"{measured['nopar']}", channel_nopar)
    report.expect("moff: channel persists on secure hardware alone",
                  "78610 > 43756", f"{measured['moff']}", channel_moff)
    report.expect("mon: valid ~= invalid (channel closed)",
                  "86132 ~= 86147", f"{measured['mon']}", mon_equal)
    report.expect("overheads modest and ordered",
                  "1 < 1.11 < 1.22",
                  f"1 < {moff_overhead:.2f} <= {mon_overhead:.2f}",
                  overheads_modest)
    report.emit()
    return channel_nopar and channel_moff and mon_equal and overheads_modest


def test_table2_login_overhead(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
