"""Ablation: Agat-style branch balancing vs language-level mitigation.

Sec. 1 and Sec. 9 of the paper position code transformation (Agat's
cross-copying / branch balancing) as the prior language-based approach, and
argue it (a) restricts expressiveness and (b) "does not handle all indirect
timing dependencies".  This bench makes the comparison concrete on the RSA
workload:

* ``none``      -- square-and-multiply as written: the Kocher channel
  (decryption time tracks the key's Hamming weight);
* ``balanced``  -- a dummy multiply on the zero path equalizes the
  *instruction counts* of both branches;
* ``language``  -- the paper's per-block mitigate.

Measured questions:

1. does balancing close the weight channel on the abstract (null) machine?
   (yes -- instruction counts are all that exist there);
2. does it survive contact with cache-based hardware? (the balanced
   branches are different instructions writing different locations, so
   residual indirect differences can remain -- measured, not assumed);
3. does the type system accept it? (no: Fig. 4 reasons about labels, not
   instruction counts -- a transformation gives no *certificate*);
4. what does each option cost?
"""

import random

from repro.apps.rsa import RsaSystem
from repro.apps.rsa_math import encrypt_blocks, generate_keypair
from repro.attacks import fit_weight_model
from repro.typesystem import TypingError, typecheck

from _report import Report, mean

KEY_BITS = 48
BLOCKS = 2
MODES = ("none", "balanced", "language")
HARDWARE = ("null", "partitioned")


def _measure(mode, hardware, keys, message, budget):
    from repro.semantics import MitigationState

    system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                       mitigation_mode=mode, budget=budget)
    # One predictor state across the key series (the long-running-service
    # setting of Figs. 7/8), measured at steady state: the first pass over
    # the series absorbs the (bounded, <= 1 doubling) warm-up transient,
    # the second pass is what a persistent service exhibits.
    state = MitigationState()
    for key in keys:
        system.run(key, encrypt_blocks(message, key), hardware=hardware,
                   mitigation=state)
    times = []
    for key in keys:
        cipher = encrypt_blocks(message, key)
        times.append(
            system.run(key, cipher, hardware=hardware,
                       mitigation=state).time
        )
    return system, times


def _build_report():
    rng = random.Random(20120614)
    keys = [generate_keypair(KEY_BITS, seed=s) for s in range(10)]
    weights = [k.hamming_weight() for k in keys]
    n_min = min(k.n for k in keys)
    message = [rng.randrange(1, n_min) for _ in range(BLOCKS)]

    lang_probe = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode="language")
    budget = lang_probe.calibrate_budget(samples=6, hardware="partitioned")

    report = Report("ablation_balancing",
                    "Ablation: branch balancing (Agat) vs mitigate")
    report.line(f"{len(keys)} keys, weights {sorted(weights)}; "
                f"{BLOCKS}-block message; per-block budget {budget}")
    report.line()
    rows = []
    correlations = {}
    avg_times = {}
    typechecks = {}
    for mode in MODES:
        for hardware in HARDWARE:
            system, times = _measure(mode, hardware, keys, message, budget)
            model = fit_weight_model(weights, times)
            correlations[(mode, hardware)] = abs(model.correlation)
            avg_times[(mode, hardware)] = mean(times)
            if hardware == HARDWARE[0]:
                try:
                    typecheck(system.program, system.gamma)
                    typechecks[mode] = True
                except TypingError:
                    typechecks[mode] = False
            rows.append((
                mode, hardware,
                f"{abs(model.correlation):.3f}",
                len(set(times)),
                f"{mean(times):.0f}",
                "yes" if typechecks[mode] else "NO",
            ))
    report.table(
        ("mode", "hardware", "|corr(time, weight)|", "distinct times",
         "avg time", "typechecks"),
        rows,
    )

    channel_exists = correlations[("none", "null")] > 0.9
    balanced_closes_direct = len({
        t for t in [correlations[("balanced", "null")]]
    }) == 1 and correlations[("balanced", "null")] < 0.1
    balanced_uncertified = not typechecks["balanced"]
    mitigated_flat = correlations[("language", "partitioned")] < 0.1
    report.expect(
        "unbalanced square-and-multiply leaks the key weight",
        "Kocher channel", f"corr={correlations[('none', 'null')]:.3f}",
        channel_exists,
    )
    report.expect(
        "balancing equalizes the direct channel on the abstract machine",
        "Agat-style transformation works there",
        f"corr={correlations[('balanced', 'null')]:.3f}",
        balanced_closes_direct,
    )
    report.expect(
        "but the transformation carries no certificate",
        "type system reasons about labels, not instruction counts",
        f"balanced typechecks: {typechecks['balanced']}",
        balanced_uncertified,
    )
    report.expect(
        "mitigate both closes the channel and certifies it",
        "well-typed, flat timing",
        f"corr={correlations[('language', 'partitioned')]:.3f}, "
        f"typechecks: {typechecks['language']}",
        mitigated_flat and typechecks["language"],
    )
    report.line()
    report.line(
        "residual indirect channel of balancing on cache hardware: "
        f"|corr| = {correlations[('balanced', 'partitioned')]:.3f} "
        "(see the 'distinct times' column; on this workload the balanced "
        "branches' cache footprints happen to coincide, but nothing "
        "certifies that -- which is claim 3)"
    )
    report.emit()
    return (channel_exists and balanced_closes_direct
            and balanced_uncertified and mitigated_flat
            and typechecks["language"])


def test_ablation_branch_balancing(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
