"""Section 2's in-text examples: each timing channel demonstrated and closed.

Three code fragments from Sec. 2.1-2.3 of the paper:

1. direct dependency -- ``if h then sleep(1) else sleep(10); sleep(h)``:
   control flow and argument values affect timing on *any* hardware;
2. indirect dependency -- the data-cache example (``if h1 then h2:=l1 else
   h2:=l2; l3:=l1``): the branch's cache footprint affects the later public
   access; the adversary can also probe the shared cache directly;
3. the mitigate example -- ``mitigate (1, H) { sleep(h) }``: possible
   execution times collapse onto the doubling schedule.

For each we measure: does the channel exist on ``nopar``?  Is it closed on
the secure designs (for the well-typed variants) or caught by the type
system (for the ill-typed ones)?
"""

from repro import api
from repro.attacks import probe_distinguishes
from repro.lang import DEFAULT_LATTICE
from repro.machine import Memory
from repro.machine.layout import Layout
from repro.typesystem import TypingError, typecheck

from _report import Report

LAT = DEFAULT_LATTICE


def _direct_channel():
    src = "if h then { sleep(1) } else { sleep(10) }; sleep(h); l := 1"
    cp = api.compile_program(src, gamma={"h": "H", "l": "L"}, check=False)
    times = {}
    for hw in ("null", "nopar", "partitioned"):
        times[hw] = [
            cp.run({"h": h, "l": 0}, hardware=hw).events[-1].time
            for h in (0, 1)
        ]
    try:
        typecheck(cp.program, cp.gamma)
        rejected = False
    except TypingError:
        rejected = True
    return times, rejected


def _indirect_channel():
    # Arrays so l1/l2 occupy distinct cache blocks (the paper's implicit
    # assumption about memory layout).
    src = "if h1 then { h2 := l1[0] } else { h2 := l2[0] }; l3 := l1[0]"
    gamma = {"h1": "H", "h2": "H", "l1": "L", "l2": "L", "l3": "L"}
    cp = api.compile_program(src, gamma=gamma, lattice=LAT, check=False)
    mem = {"h1": 0, "h2": 0, "l1": [5] * 8, "l2": [6] * 8, "l3": 0}
    layout = Layout.build(cp.program, Memory(mem))
    probes = [layout.array_addr["l1"], layout.array_addr["l2"]]
    outcomes = {}
    for hw in ("nopar", "nofill", "partitioned"):
        runs = {}
        for h1 in (0, 1):
            m = dict(mem)
            m["h1"] = h1
            runs[h1] = cp.run(m, hardware=hw)
        outcomes[hw] = probe_distinguishes(
            runs[0].environment, runs[1].environment, probes
        )
    try:
        typecheck(cp.program, cp.gamma)
        rejected = False
    except TypingError:
        rejected = True
    return outcomes, rejected


def _mitigated_sleep():
    src = "mitigate(1, H) { sleep(h) }; l := 1"
    cp = api.compile_program(src, gamma={"h": "H", "l": "L"})
    observed = set()
    for h in range(0, 33):
        r = cp.run({"h": h, "l": 0}, hardware="null")
        observed.add(r.mitigations[0].duration)
    powers = {2 ** k for k in range(12)}
    return sorted(observed), observed <= powers


def _build_report():
    report = Report("sec2", "Section 2 examples: channels shown and closed")

    times, rejected = _direct_channel()
    report.line("1. Direct dependencies (control flow + sleep argument):")
    report.table(("hardware", "time h=0", "time h=1", "leaks?"),
                 [(hw, t[0], t[1], "yes" if t[0] != t[1] else "no")
                  for hw, t in times.items()])
    direct_ok = all(t[0] != t[1] for t in times.values()) and rejected
    report.expect("direct channel exists on all hardware; type system "
                  "rejects the program",
                  "leak everywhere, ill-typed",
                  f"rejected={rejected}", direct_ok)
    report.line()

    outcomes, rejected2 = _indirect_channel()
    report.line("2. Indirect dependency (data cache), coresident probe:")
    report.table(("hardware", "probe distinguishes secret?"),
                 [(hw, "yes" if x else "no") for hw, x in outcomes.items()])
    indirect_ok = (outcomes["nopar"] and not outcomes["nofill"]
                   and not outcomes["partitioned"] and rejected2)
    report.expect("cache probe works on nopar only; secure designs blind "
                  "it; program is ill-typed (final public assign)",
                  "nopar leaks, nofill/partitioned do not",
                  f"{outcomes}, rejected={rejected2}", indirect_ok)
    report.line()

    durations, all_powers = _mitigated_sleep()
    report.line("3. mitigate (1, H) { sleep(h) } for h in 0..32:")
    report.line(f"   observed padded durations: {durations}")
    report.expect("possible execution times are powers of 2 (Sec. 2.3)",
                  "forced to powers of 2", f"{durations}", all_powers)
    report.emit()
    return direct_ok and indirect_ok and all_powers


def test_sec2_channel_examples(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
