"""Extension experiment: the AES-class cache attack across hardware designs.

Not a numbered figure in the paper, but its central motivation: Sec. 1-2
cite the data-cache attacks on AES (Osvik et al., Gullasch et al.) as the
channels that "some timing attacks exploit... to infer AES encryption
keys", and the partitioned design exists to stop exactly them.  This bench
runs the one-round prime-and-probe key-byte recovery from
:mod:`repro.attacks.sbox_attack` against all hardware designs and reports
bits of key learned, plus the encryption-latency overhead each secure
design costs.

Shape asserted: ~5+ bits/byte recovered on nopar (line granularity is the
textbook limit), exactly 0 bits on no-fill and partitioned; partitioned
costs less than no-fill.
"""

import random

from repro.apps.sbox_cipher import SboxCipher, random_key
from repro.attacks.sbox_attack import recover_key_byte

from _report import Report, mean

MODELS = ("nopar", "nofill", "partitioned")
BYTES_TO_ATTACK = 4


def _attack_bits(hardware, key, plaintexts):
    bits = []
    for index in range(BYTES_TO_ATTACK):
        cipher = SboxCipher(length=index + 1, mitigated=True)
        result = recover_key_byte(
            cipher, key, plaintexts, byte_index=index, hardware=hardware
        )
        bits.append(result.bits_learned())
    return bits


def _latency(hardware, key):
    cipher = SboxCipher(length=16, mitigated=False)
    times = [
        cipher.run(key, [p] * 16, hardware=hardware).time
        for p in range(0, 64, 8)
    ]
    return mean(times)


def _build_report():
    rng = random.Random(20120613)
    key = random_key(rng)
    plaintexts = [rng.randrange(256) for _ in range(10)]

    report = Report(
        "sbox_attack",
        "Extension: one-round cache attack on an S-box cipher",
    )
    rows = []
    bits = {}
    latency = {}
    for hw in MODELS:
        bits[hw] = _attack_bits(hw, key, plaintexts)
        latency[hw] = _latency(hw, key)
        rows.append((
            hw,
            " ".join(f"{b:.1f}" for b in bits[hw]),
            f"{mean(bits[hw]):.1f}",
            f"{latency[hw]:.0f}",
            f"{latency[hw] / latency['nopar']:.2f}x",
        ))
    report.table(
        ("design", "bits/byte (4 bytes)", "avg bits", "enc latency",
         "vs nopar"),
        rows,
    )
    nopar_leaks = mean(bits["nopar"]) >= 4.0
    secure_blind = all(
        b == 0.0 for hw in ("nofill", "partitioned") for b in bits[hw]
    )
    cost_order = latency["partitioned"] <= latency["nofill"]
    report.expect(
        "prime-and-probe recovers key bits on commodity hardware",
        "AES-class attack works (top-of-line-granularity bits)",
        f"avg {mean(bits['nopar']):.1f} bits/byte", nopar_leaks,
    )
    report.expect(
        "secure designs leak zero bits to the probe",
        "0 bits", f"{ {hw: mean(bits[hw]) for hw in MODELS} }",
        secure_blind,
    )
    report.expect(
        "partitioned cheaper than no-fill on the secret-heavy loop",
        "partitioned <= nofill",
        {hw: round(latency[hw]) for hw in MODELS},
        cost_order,
    )
    report.emit()
    return nopar_leaks and secure_blind and cost_order


def test_sbox_cache_attack(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
