"""Section 7's quantitative results: measured leakage vs the proved bounds.

The paper proves (Theorem 2 + the Sec. 7 analysis) that for well-typed
programs leakage from ``L`` to ``lA`` is at most::

    log |V|  <=  |L^_{lA}| * log2(K+1) * (1 + log2 T)

and zero when no mitigate command executes.  This bench measures Definition
1 leakage *exhaustively* over enumerable secret spaces for a family of
programs and lattices, and checks every inequality in the chain
``Q <= log|V| <= closed-form bound``, printing the margins.
"""

from repro import api
from repro.lang import DEFAULT_LATTICE
from repro.lattice import chain
from repro.machine import Memory
from repro.hardware import PartitionedHardware, tiny_machine
from repro.quantitative import (
    leakage_bound,
    secret_variants,
    verify_theorem2,
)

from _report import Report

LAT = DEFAULT_LATTICE


def _cases():
    lat3 = chain(("L", "M", "H"))
    return [
        # (name, source, gamma, lattice, secret var, space, K)
        ("mitigated sleep", "mitigate(4, H) { sleep(h) }; l := 1",
         {"h": "H", "l": "L"}, LAT, "h", range(64), 1),
        ("mitigated loop",
         "mitigate(16, H) { while h > 0 do { h := h - 1 } }; l := 1",
         {"h": "H", "l": "L"}, LAT, "h", range(32), 1),
        ("two mitigates",
         "mitigate(4, H) { sleep(h) }; l := 1;"
         "mitigate(4, H) { sleep(h * 3) }; l := 2",
         {"h": "H", "l": "L"}, LAT, "h", range(32), 2),
        ("no mitigate (zero-leakage corollary)",
         "g := h + 1; g := g * h",
         {"h": "H", "g": "H", "l": "L"}, LAT, "h", range(32), 0),
        ("three-level, M secret to L adversary",
         "mitigate(4, H) { sleep(m) }; l := 1",
         {"m": "M", "l": "L", "h": "H"}, lat3, "m", range(32), 1),
    ]


def _run_case(name, src, gamma, lattice, secret, space, k):
    cp = api.compile_program(src, gamma=gamma, lattice=lattice)
    base = Memory({v: 0 for v in gamma})
    variants = secret_variants(base, ({secret: v} for v in space))
    levels = [cp.gamma[secret]]
    adversary = lattice.bottom
    env = PartitionedHardware(lattice, tiny_machine())
    result = verify_theorem2(
        cp.program, cp.gamma, lattice, levels, adversary, base, env,
        variants, mitigate_pc=cp.typing.mitigate_pc,
    )
    # T: the worst-case elapsed time over the family.
    worst_t = 1
    for key in result.leakage.observations:
        if key:
            worst_t = max(worst_t, key[-1][3])
    bound = leakage_bound(lattice, levels, adversary, worst_t, k)
    return result, bound, worst_t


def _build_report():
    report = Report(
        "bounds", "Sec. 7: measured leakage vs proved bounds"
    )
    rows = []
    all_ok = True
    for name, src, gamma, lattice, secret, space, k in _cases():
        result, bound, worst_t = _run_case(
            name, src, gamma, lattice, secret, space, k
        )
        q = result.leakage.bits
        log_v = result.variations.bits
        ok = result.holds and (k == 0 or log_v <= bound + 1e-9)
        if k == 0:
            ok = ok and q == 0.0 and log_v == 0.0
        all_ok &= ok
        rows.append((name, len(list(space)), f"{q:.2f}", f"{log_v:.2f}",
                     f"{bound:.2f}", worst_t, "ok" if ok else "VIOLATED"))
    report.table(
        ("program", "|secrets|", "Q (bits)", "log|V|", "bound", "T",
         "Q<=log|V|<=bound"),
        rows,
    )
    report.expect(
        "Theorem 2 + Sec. 7 bound chain on every case",
        "Q <= log|V| <= |L^| log(K+1)(1+log T); Q=0 when K=0",
        "see table", all_ok,
    )
    report.emit()
    return all_ok


def test_bounds_vs_measured_leakage(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
