"""Figure 9: language-level vs system-level mitigation.

Paper setup: 10 encrypted messages whose size ranges from 1 to 10 blocks
(size public).  Language-level mitigation (one mitigate per block) is faster
than system-level mitigation (the whole decryption wrapped in a single
mitigate, simulating black-box predictive mitigation) because it does not
try to mitigate the timing variation due to the *public* number of blocks.

Methodology notes (both matter for the shape):

* system-level mitigation is a black box -- it gets ONE initial prediction
  calibrated on the mixed-size workload and one persistent misprediction
  schedule, exactly like the CCS'10 service it simulates.  It may not be
  re-calibrated per message size (the block count is precisely what it
  cannot see);
* the per-block budget for language-level mitigation is calibrated once
  (it is size-independent);
* keys are 256-bit so the relative variance of per-block time across keys
  (~sigma/mu = 1/sqrt(bits)) sits inside the paper's 10% calibration
  headroom, as it does for real 1024-bit RSA.

Shape asserted: language-level grows linearly with the public size, is
never slower than system-level, and wins big on small messages.
"""

import random

from repro.apps.rsa import RsaSystem
from repro.apps.rsa_math import encrypt_blocks, generate_keypair
from repro.semantics import MitigationState

from _report import Report, ascii_plot

KEY_BITS = 256
SIZES = range(1, 11)
HARDWARE = "partitioned"


def _calibrate_system_level(rng):
    """One whole-run initial prediction from the mixed-size workload:
    110% of the average unmitigated decryption time over sizes 1..10."""
    totals = []
    for blocks in SIZES:
        probe = RsaSystem(key_bits=KEY_BITS, blocks=blocks,
                          mitigation_mode="none")
        key = generate_keypair(KEY_BITS, seed=rng.randrange(1 << 30))
        message = [rng.randrange(1, key.n) for _ in range(blocks)]
        result = probe.run(key, encrypt_blocks(message, key),
                           hardware=HARDWARE)
        totals.append(result.time)
    return int(1.10 * sum(totals) / len(totals))


def _run_experiment():
    rng = random.Random(99)
    key = generate_keypair(KEY_BITS, seed=9)

    lang_cal = RsaSystem(key_bits=KEY_BITS, blocks=2,
                         mitigation_mode="language")
    lang_budget = lang_cal.calibrate_budget(samples=6, hardware=HARDWARE)
    sys_budget = _calibrate_system_level(rng)

    times = {"language": [], "system": []}
    unmit = []
    states = {"language": MitigationState(), "system": MitigationState()}
    for blocks in SIZES:
        message = [rng.randrange(1, key.n) for _ in range(blocks)]
        cipher = encrypt_blocks(message, key)
        baseline = RsaSystem(key_bits=KEY_BITS, blocks=blocks,
                             mitigation_mode="none")
        unmit.append(baseline.run(key, cipher, hardware=HARDWARE).time)
        for mode, budget in (("language", lang_budget),
                             ("system", sys_budget)):
            system = RsaSystem(key_bits=KEY_BITS, blocks=blocks,
                               mitigation_mode=mode, budget=budget)
            result = system.run(key, cipher, hardware=HARDWARE,
                                mitigation=states[mode])
            times[mode].append(result.time)
    return times, unmit, lang_budget, sys_budget


def _build_report():
    times, unmit, lang_budget, sys_budget = _run_experiment()
    lang = times["language"]
    syst = times["system"]
    report = Report(
        "fig9", "Figure 9: Language-level vs system-level mitigation"
    )
    report.line(f"message sizes 1..10 blocks; {KEY_BITS}-bit key; "
                f"hardware={HARDWARE}")
    report.line(f"per-block budget={lang_budget}; "
                f"whole-run (system-level) budget={sys_budget}")
    report.line()
    report.table(
        ("blocks", "unmitigated", "language-level", "system-level",
         "system/language"),
        [
            (b, u, l, s, f"{s / l:.2f}x")
            for b, u, l, s in zip(SIZES, unmit, lang, syst)
        ],
    )

    report.line()
    report.line("Decryption time vs message size:")
    report.line(ascii_plot({"language-level": lang, "system-level": syst,
                            "unmitigated": unmit}))
    lang_monotone = all(a < b for a, b in zip(lang, lang[1:]))
    wins = sum(1 for l, s in zip(lang, syst) if l <= s)
    aggregate_win = sum(syst) / sum(lang)
    small_win = syst[0] / lang[0]
    report.expect(
        "language-level grows with the public block count",
        "roughly linear series", f"monotone={lang_monotone}", lang_monotone,
    )
    # System-level is a staircase of whole-run predictions; a message size
    # that happens to sit just under a prediction step gets padded almost
    # for free, so the staircase may graze the linear curve there.  The
    # paper's claim is the overall win, largest at small sizes.
    overall = wins >= len(lang) - 1 and aggregate_win > 1.0 and small_win > 2.0
    report.expect(
        "language-level is faster (does not mitigate public variation)",
        "language-level wins overall, most at small messages",
        f"wins at {wins}/{len(lang)} sizes, aggregate "
        f"{aggregate_win:.2f}x, {small_win:.2f}x at 1 block",
        overall,
    )
    report.emit()
    return lang_monotone and overall


def test_fig9_language_vs_system(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
