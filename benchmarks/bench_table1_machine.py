"""Table 1: machine environment parameters.

Prints the configured cache/TLB hierarchy (which must equal Table 1 of the
paper) and *measures* the latencies the simulator actually produces for the
canonical access patterns (cold miss, L2 hit, L1 hit, TLB-only miss), so the
table is regenerated from behaviour rather than echoed from the config.
"""

from repro.hardware import Hierarchy, paper_machine

from _report import Report


def _measure_latencies():
    p = paper_machine()
    h = Hierarchy(p)
    addr = 0x1000_0000
    cold = h.data_access(addr)
    l1_hit = h.data_access(addr)
    # L1-evict to measure the L2 hit path.
    stride = p.l1_data.sets * p.l1_data.block_bytes
    for i in range(1, p.l1_data.ways + 1):
        h.l1_data.touch(addr + i * stride)
    l2_hit = h.data_access(addr)
    h.data_tlb.flush()
    tlb_miss = h.data_access(addr)

    hi = Hierarchy(p)
    icold = hi.inst_fetch(0x40_0000)
    il1 = hi.inst_fetch(0x40_0000)
    return p, cold, l1_hit, l2_hit, tlb_miss, icold, il1


def _build_report():
    p, cold, l1_hit, l2_hit, tlb_miss, icold, il1 = _measure_latencies()
    report = Report("table1", "Table 1: Machine environment parameters")
    rows = []
    for c in (p.l1_data, p.l2_data, p.l1_inst, p.l2_inst):
        rows.append((c.name, c.sets, f"{c.ways}-way", f"{c.block_bytes} byte",
                     f"{c.latency} cycle{'s' if c.latency > 1 else ''}"))
    for t in (p.data_tlb, p.inst_tlb):
        rows.append((t.name, t.sets, f"{t.ways}-way",
                     f"{t.page_bytes // 1024}KB", f"{t.miss_penalty} cycles"))
    report.table(("Name", "# of sets", "issue", "block size", "latency"),
                 rows)
    report.line()
    report.line("Measured simulator latencies (data side):")
    report.table(
        ("access pattern", "measured cycles", "expected"),
        [
            ("L1 hit", l1_hit, p.l1_data.latency),
            ("L2 hit (L1 miss)", l2_hit,
             p.l1_data.latency + p.l2_data.latency),
            ("full miss (TLB+L1+L2+mem)", cold,
             p.data_tlb.miss_penalty + p.l1_data.latency
             + p.l2_data.latency + p.memory_latency),
            ("TLB walk on warm cache", tlb_miss,
             p.data_tlb.miss_penalty + p.l1_data.latency),
            ("I-fetch full miss", icold,
             p.inst_tlb.miss_penalty + p.l1_inst.latency
             + p.l2_inst.latency + p.memory_latency),
            ("I-fetch L1 hit", il1, p.l1_inst.latency),
        ],
    )
    ok = (
        l1_hit == p.l1_data.latency
        and l2_hit == p.l1_data.latency + p.l2_data.latency
        and il1 == p.l1_inst.latency
    )
    report.expect("hit/miss latency structure", "Table 1 values",
                  "as measured above", ok)
    report.emit()
    return ok


def test_table1_machine_parameters(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
