"""Figure 7: login time with various secrets.

Paper setup: 100 login attempts against credential tables holding 10, 50, or
100 valid usernames.  Upper plot (no mitigation): the three curves separate
and valid/invalid usernames are distinguishable by time.  Lower plot
(mitigation on): execution time does not depend on secrets, so all three
curves coincide.

This bench regenerates both curve families (printed as per-attempt series
summaries plus the full series in the results file) and asserts the shape:

* unmitigated: the Bortz-Boneh username probe achieves 100% accuracy and
  the three secret configurations give different series;
* mitigated: every attempt of every configuration takes exactly the same
  time (the paper's "all three curves coincide").
"""

from repro.apps.login import (
    CredentialTable,
    LoginSystem,
    login_attempt_times,
    summarize_valid_invalid,
)
from repro.attacks import username_probe
from repro.telemetry import (
    DynamicLeakageMeter,
    RecordingTraceRecorder,
    SpanRecorder,
    TeeRecorder,
)

from _report import (
    Report,
    ascii_plot,
    series_constant,
    write_metrics,
    write_trace,
)

ATTEMPTS = 100
VALID_COUNTS = (10, 50, 100)
HARDWARE = "partitioned"


def _series(system, tables, recorder=None):
    return {
        valid: login_attempt_times(
            system, table, hardware=HARDWARE, recorder=recorder
        )
        for valid, table in tables.items()
    }


def _run_experiment():
    tables = {
        v: CredentialTable.generate(size=ATTEMPTS, valid=v, seed=2012)
        for v in VALID_COUNTS
    }

    unmitigated = LoginSystem(table_size=ATTEMPTS, mitigated=False)
    mitigated = LoginSystem(table_size=ATTEMPTS, mitigated=True)
    budget = mitigated.calibrate_budget(attempts=10, hardware=HARDWARE)

    upper = _series(unmitigated, tables)
    # Telemetry over the whole mitigated stream: every attempt is one run;
    # the meter counts distinct mitigation-deadline sequences across all
    # 3 x 100 attempts and checks them against the static Theorem 2 bound.
    meter = DynamicLeakageMeter(mitigated.lattice)
    metrics_recorder = RecordingTraceRecorder(meter=meter)
    # Epoch-granularity spans keep the 3 x 100-attempt timeline compact:
    # one Perfetto track per attempt, one child span per mitigate epoch.
    span_recorder = SpanRecorder(detail="epochs")
    recorder = TeeRecorder(metrics_recorder, span_recorder)
    lower = _series(mitigated, tables, recorder=recorder)
    return (tables, upper, lower, budget, metrics_recorder, meter,
            span_recorder)


def _build_report():
    (tables, upper, lower, budget, recorder, meter,
     span_recorder) = _run_experiment()
    report = Report("fig7", "Figure 7: Login time with various secrets")
    report.line(f"100 attempts; valid usernames in {VALID_COUNTS}; "
                f"hardware={HARDWARE}; calibrated initial prediction="
                f"{budget} cycles")
    report.line()
    report.line("Upper plot (unmitigated): per-configuration summary")
    rows = []
    probes = {}
    for v in VALID_COUNTS:
        s = summarize_valid_invalid(upper[v], tables[v])
        validity = [tables[v].is_valid(i) for i in range(ATTEMPTS)]
        if v < ATTEMPTS:
            probes[v] = username_probe(upper[v], validity).accuracy
        rows.append((f"{v} valid", f"{s['valid']:.0f}",
                     f"{s['invalid']:.0f}" if v < ATTEMPTS else "n/a",
                     f"{probes.get(v, float('nan')):.2f}"
                     if v in probes else "n/a"))
    report.table(("config", "avg time (valid)", "avg time (invalid)",
                  "probe accuracy"), rows)
    report.line()
    report.line("Lower plot (mitigated): per-configuration summary")
    rows = []
    for v in VALID_COUNTS:
        times = lower[v]
        rows.append((f"{v} valid", min(times), max(times),
                     "yes" if series_constant(times) else "NO"))
    report.table(("config", "min time", "max time", "constant?"), rows)

    distinct_mitigated = {tuple(lower[v]) for v in VALID_COUNTS}
    unmit_separable = all(acc == 1.0 for acc in probes.values())
    curves_coincide = len(distinct_mitigated) == 1 and all(
        series_constant(lower[v]) for v in VALID_COUNTS
    )
    report.expect(
        "upper plot: valid/invalid distinguishable by timing",
        "adversary separates them", f"probe accuracy {probes}",
        unmit_separable,
    )
    report.expect(
        "lower plot: all three curves coincide",
        "single flat line", f"{len(distinct_mitigated)} distinct series",
        curves_coincide,
    )
    report.line()
    report.line("Upper plot (unmitigated login times per attempt):")
    report.line(ascii_plot({f"{v} valid": upper[v] for v in VALID_COUNTS}))
    report.line()
    report.line("Lower plot (mitigated -- the curves coincide):")
    report.line(ascii_plot({f"{v} valid": lower[v] for v in VALID_COUNTS}))
    report.line()
    report.line("Full series (attempt -> cycles):")
    for v in VALID_COUNTS:
        report.line(f"unmitigated valid={v}: {upper[v]}")
    for v in VALID_COUNTS:
        report.line(f"mitigated   valid={v}: {lower[v][:5]} ... (constant)")

    registry = recorder.registry
    metrics_path = write_metrics(
        "fig7", registry.as_dict(leakage=meter.as_dict())
    )
    trace_path = write_trace("fig7", span_recorder.spans)
    report.line()
    report.line(f"Execution timeline (Perfetto-loadable): {trace_path} "
                f"({len(span_recorder.spans)} spans)")
    report.line(f"Telemetry over the mitigated stream ({metrics_path}):")
    for line in registry.summary_lines():
        report.line(f"  {line}")
    leakage_ok = meter.holds()
    report.expect(
        "dynamic leakage accounting within the static Theorem 2 bound",
        f"<= {meter.static_bound_bits():.1f} bits",
        f"{meter.observed_variations} observed deadline sequence(s) "
        f"({meter.observed_bits:.3f} bits)",
        leakage_ok,
    )
    report.emit()
    return unmit_separable and curves_coincide and leakage_ok


def test_fig7_login_timing(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
