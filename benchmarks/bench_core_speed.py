"""Core simulation speed: cycles-simulated-per-wall-second trajectory.

The observability counterpart to the paper's Sec. 8 overhead tables:
instead of asking how much *simulated* time mitigation costs, this
benchmark asks how fast the simulator itself runs, per subsystem, so a
slow interpreter or hardware model shows up as a perf regression in CI
rather than as a mysteriously slow review build.

The grid comes from :func:`repro.telemetry.bench.run_core_bench` (shared
with ``repro bench --suite core``):

* ``program/*``   -- the representative apps (password mitigated and
  unmitigated, sbox mitigated and unmitigated, RSA under language-level
  mitigation) on the partitioned reference hardware;
* ``hardware/*``  -- one unmitigated password probe per registered
  hardware model, so every access path in the zoo is on the trajectory;
* ``subsystem/*`` -- profiler-attributed splits (hardware access,
  interpreter dispatch, mitigation scheduling/padding) from a profiled
  mitigated run;
* ``gateway/*``   -- the serving layer's event loop and handler runs.

Every entry reports simulated cycles over the *minimum* wall time across
repeats (minimum filters scheduler noise).  The document lands at the
repo root as ``BENCH_core.json`` -- the committed baseline that
``repro bench --compare BENCH_core.json`` gates against (see
docs/PROFILING.md for the refresh policy).

The benchmark also asserts the tentpole's zero-overhead claim: with
profiling off, the ``profiler is None`` seam in the interpreter hot loop
must cost <= 5% versus an interpreter build with the seam compiled out
(:class:`repro.telemetry.bench.SeamlessInterpreter`).
"""

from repro.telemetry.bench import OVERHEAD_TOLERANCE_PCT, run_core_bench

from _report import Report, write_bench

REPEATS = 3


def _build_report():
    doc = run_core_bench(repeats=REPEATS)
    bench_path = write_bench(doc)

    report = Report(
        "core_speed",
        "Core simulation speed: cycles simulated per wall second",
    )
    report.line(f"minimum wall over {REPEATS} repeats per entry; "
                "full grid in repro.telemetry.bench.run_core_bench")
    report.line()

    rows = []
    for key, entry in sorted(doc["entries"].items()):
        rate = entry.get("cycles_per_sec")
        rows.append((
            key,
            entry["cycles"],
            f"{entry['wall_s'] * 1e3:.3f}",
            f"{rate / 1e6:.3f}" if rate else "-",
        ))
    report.table(("entry", "cycles", "wall ms", "Mcyc/s"), rows)
    report.line()

    overhead = doc["overhead"]
    report.expect(
        "profiler-off seam overhead",
        f"<= {OVERHEAD_TOLERANCE_PCT}% vs seam-free interpreter",
        f"{overhead['overhead_pct']:+.2f}% "
        f"(with-seam {overhead['with_seam_s'] * 1e3:.3f} ms, "
        f"seamless {overhead['seamless_s'] * 1e3:.3f} ms)",
        overhead["ok"],
    )
    secure_probes = [
        key for key, entry in doc["entries"].items()
        if entry.get("meta", {}).get("expected_secure") is not None
    ]
    report.expect(
        "hardware zoo coverage",
        "every registered model on the trajectory",
        f"{len(secure_probes)} models probed",
        len(secure_probes) >= 9,
    )
    report.line()
    report.line(f"Perf trajectory: {bench_path}")
    report.line("Gate: PYTHONPATH=src python -m repro bench "
                "--compare BENCH_core.json")
    report.emit()
    return overhead["ok"]


def test_core_speed(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
