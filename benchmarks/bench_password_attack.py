"""Extension experiment: the adaptive prefix attack and the division of labor.

The paper's architecture splits responsibilities: hardware discharges the
machine-environment properties (5-7), while *direct* dependencies -- timing
that flows through control, like the early-exit comparison's loop trip
count -- are the language level's job.  This bench quantifies that split:

* the adaptive prefix-recovery attack extracts a password in
  ``length x alphabet`` guesses on **every** hardware design, secure ones
  included (hardware cannot see a direct channel);
* a single ``mitigate`` around the comparison defeats it on all of them;
* the attack's cost collapse (linear vs exponential guessing) is reported,
  which is why the channel matters at all.
"""

import random

from repro.apps.password import PasswordChecker
from repro.attacks.prefix_attack import recover_password

from _report import Report

LENGTH = 6
ALPHABET = 16
DESIGNS = ("nopar", "nofill", "partitioned")


def _build_report():
    rng = random.Random(20120615)
    secret = [rng.randrange(ALPHABET) for _ in range(LENGTH)]
    unmitigated = PasswordChecker(length=LENGTH, mitigated=False)
    mitigated = PasswordChecker(length=LENGTH, mitigated=True, budget=600)

    report = Report("password_attack",
                    "Extension: adaptive prefix recovery vs hardware")
    report.line(f"secret: {LENGTH} symbols over alphabet {ALPHABET} "
                f"({ALPHABET ** LENGTH:,} brute-force guesses)")
    report.line()
    rows = []
    unmit_ok = {}
    mit_ok = {}
    for hw in DESIGNS:
        u = recover_password(unmitigated, secret, alphabet=ALPHABET,
                             hardware=hw)
        m = recover_password(mitigated, secret, alphabet=ALPHABET,
                             hardware=hw)
        unmit_ok[hw] = u.succeeded
        mit_ok[hw] = m.succeeded
        rows.append((
            hw,
            f"recovered in {u.guesses_used} guesses" if u.succeeded
            else "failed",
            f"{m.correct_prefix}/{LENGTH} positions"
            + (" (defeated)" if not m.succeeded else ""),
        ))
    report.table(("hardware", "unmitigated checker", "mitigated checker"),
                 rows)

    attack_universal = all(unmit_ok.values())
    defense_universal = not any(mit_ok.values())
    report.expect(
        "the direct channel defeats every hardware design",
        "secure hardware cannot fix control-flow timing (Sec. 2.1)",
        f"{unmit_ok}", attack_universal,
    )
    report.expect(
        "language-level mitigation defeats the adaptive attack",
        "mitigate collapses prefix timings",
        f"{mit_ok}", defense_universal,
    )
    report.line()
    report.line(
        f"attack economics: {LENGTH * ALPHABET} timed guesses vs "
        f"{ALPHABET ** LENGTH:,} blind ones -- the exponential-to-linear "
        "collapse timing channels buy an attacker."
    )
    report.emit()
    return attack_universal and defense_universal


def test_password_prefix_attack(benchmark):
    ok = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    assert ok
