"""The full (timed) semantics: configurations ``(c, m, E, G)``.

This interpreter executes programs over a concrete
:class:`~repro.hardware.interface.MachineEnvironment`, producing final
memory, final environment, elapsed global time, the observable assignment
events, and the mitigate vector.  It is one particular "full semantics" in
the paper's sense -- the paper deliberately axiomatizes the class of
acceptable full semantics (Properties 1-7) rather than fixing one; the
checkers in :mod:`repro.semantics.faithfulness` and
:mod:`repro.hardware.contract` validate that this interpreter over each
secure hardware model inhabits that class.

How a step is charged
---------------------

Every labeled command executes in one evaluation step (matching Fig. 2's
granularity).  The interpreter resolves the step's
:class:`~repro.machine.layout.AccessTrace` -- the command's instruction
address plus the data addresses of exactly the ``vars1`` reads and the
written location -- and hands it to the hardware together with the command's
read/write labels.  The hardware returns the step's cost and updates itself.

Two constructs bypass the hardware:

* ``sleep e`` takes exactly ``max(e, 0)`` cycles (Property 4 demands
  equality, so no fetch or data cost may be added);
* mitigation bookkeeping (the Fig. 6 auxiliary commands, labeled [bot, top]
  in the paper) is charged as pure padding: the exit step costs exactly the
  padding needed to stretch the block to its prediction.

Sequential composition adds no cost of its own (Property 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Tuple

from ..lang import ast
from ..lattice import Label
from ..machine.layout import AccessTrace, DataAccess, Layout
from ..machine.memory import Memory
from ..hardware.interface import MachineEnvironment, StepKind
from ..telemetry.profiling import Profiler, hardware_subsystem
from ..telemetry.recorder import NULL_RECORDER, TraceRecorder
from .core import EvaluationError, eval_expr_traced
from .events import Event, MitigationRecord
from .mitigation import MitigationState


class SemanticsError(RuntimeError):
    """Raised when a program cannot be executed under the full semantics
    (e.g. a command is missing its timing labels)."""


@dataclass
class _MitFrame:
    """Runtime record of an in-progress mitigate command."""

    mit_id: str
    level: Label
    estimate: int
    start_time: int
    pc_label: Optional[Label]


@dataclass(eq=False)
class _MitExit(ast.Command):
    """Internal continuation marker closing a mitigate block (Fig. 6's
    ``update``/padding-``sleep`` sequence, fused into one step)."""

    frame: _MitFrame = None  # type: ignore[assignment]

    def labeled(self) -> bool:
        """Internal marker; not a paper-level labeled command."""
        return False


@dataclass
class ExecutionResult:
    """Everything one run produces."""

    memory: Memory
    environment: MachineEnvironment
    time: int
    events: Tuple[Event, ...]
    mitigations: Tuple[MitigationRecord, ...]
    steps: int

    def final_time(self) -> int:
        """The final global clock ``G`` (alias of ``time``)."""
        return self.time


@dataclass
class Interpreter:
    """Executes one program under the full semantics.

    Parameters
    ----------
    program:
        A fully label-annotated command (run label inference first if the
        source used ``_`` placeholders).
    memory, environment:
        The initial ``m`` and ``E``; both are mutated in place.
    layout:
        Address layout; built automatically from the program and memory
        when omitted.
    mitigation:
        Predictor state (scheme + penalty policy); fresh fast-doubling/local
        state when omitted.
    mitigate_pc:
        Optional map from mitigate id to its static ``pc`` label, as
        computed by the type checker; attached to mitigation records so the
        Sec. 6.3 projections can run.
    """

    program: ast.Command
    memory: Memory
    environment: MachineEnvironment
    layout: Optional[Layout] = None
    mitigation: Optional[MitigationState] = None
    mitigate_pc: Mapping[str, Label] = field(default_factory=dict)
    max_steps: int = 10_000_000
    recorder: Optional[TraceRecorder] = None
    profiler: Optional[Profiler] = None

    def __post_init__(self) -> None:
        if self.layout is None:
            self.layout = Layout.build(self.program, self.memory)
        if self.mitigation is None:
            self.mitigation = MitigationState()
        if self.recorder is None:
            self.recorder = NULL_RECORDER
        if self.recorder.active:
            # Thread the recorder through every layer that advances or
            # explains the clock: hardware (hit/miss classification) and
            # the mitigation runtime (Miss[l] transitions).
            self.environment.attach_recorder(self.recorder)
            self.mitigation.recorder = self.recorder
        # The profiling seam resolves to None when off, so the per-step
        # hot path pays one identity check and nothing else.
        if self.profiler is not None and not self.profiler.active:
            self.profiler = None
        if self.profiler is not None:
            self._hw_subsystem = hardware_subsystem(self.environment)
        self.time = 0
        self.steps = 0
        self.events: List[Event] = []
        self.records: List[MitigationRecord] = []

    # -- plumbing ------------------------------------------------------------

    def _labels(self, cmd: ast.LabeledCommand) -> Tuple[Label, Label]:
        if cmd.read_label is None or cmd.write_label is None:
            raise SemanticsError(
                f"command {type(cmd).__name__} (node {cmd.node_id}) has no "
                "timing labels; annotate it or run label inference first"
            )
        return cmd.read_label, cmd.write_label

    def _trace(
        self,
        cmd: ast.LabeledCommand,
        reads: Tuple[DataAccess, ...] = (),
        writes: Tuple[DataAccess, ...] = (),
        taken: Optional[bool] = None,
    ) -> AccessTrace:
        return AccessTrace(
            instruction=self.layout.instruction_address(cmd.node_id),
            reads=tuple(self.layout.data_address(a) for a in reads),
            writes=tuple(self.layout.data_address(a) for a in writes),
            taken=taken,
        )

    def _charge(
        self,
        kind: StepKind,
        cmd: ast.LabeledCommand,
        reads: Tuple[DataAccess, ...] = (),
        writes: Tuple[DataAccess, ...] = (),
        taken: Optional[bool] = None,
    ) -> None:
        read_label, write_label = self._labels(cmd)
        trace = self._trace(cmd, reads, writes, taken=taken)
        profiler = self.profiler
        if profiler is None:
            cost = self.environment.step(kind, trace, read_label, write_label)
        else:
            started = profiler.clock()
            cost = self.environment.step(kind, trace, read_label, write_label)
            profiler.add_wall(self._hw_subsystem, profiler.clock() - started)
            profiler.add_cycles(self._hw_subsystem, cost, calls=1)
        self.time += cost
        if self.recorder.active:
            self.recorder.on_step(kind, cost, self.time)

    # -- stepping ---------------------------------------------------------------

    def _step(self, cmd: ast.Command) -> Optional[ast.Command]:
        """One full-semantics transition; returns the continuation."""
        if isinstance(cmd, ast.Seq):
            continuation = self._step(cmd.first)
            if continuation is None:
                return cmd.second
            return ast.Seq(first=continuation, second=cmd.second)

        if isinstance(cmd, _MitExit):
            return self._finish_mitigation(cmd.frame)

        if isinstance(cmd, ast.Skip):
            self._charge(StepKind.SKIP, cmd)
            return None

        if isinstance(cmd, ast.Sleep):
            # Property 4: exactly max(n, 0) cycles, nothing else.
            duration, _ = eval_expr_traced(cmd.duration, self.memory)
            self._labels(cmd)  # still insist the program is annotated
            self.time += max(duration, 0)
            if self.profiler is not None:
                self.profiler.add_cycles(
                    "interpreter.sleep", max(duration, 0), calls=1
                )
            if self.recorder.active:
                self.recorder.on_sleep(max(duration, 0), self.time)
            return None

        if isinstance(cmd, ast.Assign):
            value, accesses = eval_expr_traced(cmd.expr, self.memory)
            self._charge(
                StepKind.ASSIGN,
                cmd,
                reads=accesses,
                writes=(DataAccess(cmd.target),),
            )
            self.memory.write(cmd.target, value)
            self.events.append(Event(cmd.target, value, self.time))
            return None

        if isinstance(cmd, ast.ArrayAssign):
            index, index_accesses = eval_expr_traced(cmd.index, self.memory)
            value, value_accesses = eval_expr_traced(cmd.expr, self.memory)
            if not 0 <= index < self.memory.array_length(cmd.array):
                raise EvaluationError(
                    f"array write {cmd.array}[{index}] out of bounds "
                    f"(length {self.memory.array_length(cmd.array)})"
                )
            self._charge(
                StepKind.ASSIGN,
                cmd,
                reads=index_accesses + value_accesses,
                writes=(DataAccess(cmd.array, index),),
            )
            self.memory.write_elem(cmd.array, index, value)
            self.events.append(Event(cmd.array, value, self.time, index=index))
            return None

        if isinstance(cmd, ast.If):
            guard, accesses = eval_expr_traced(cmd.cond, self.memory)
            self._charge(StepKind.BRANCH, cmd, reads=accesses,
                         taken=guard != 0)
            return cmd.then_branch if guard != 0 else cmd.else_branch

        if isinstance(cmd, ast.While):
            guard, accesses = eval_expr_traced(cmd.cond, self.memory)
            self._charge(StepKind.BRANCH, cmd, reads=accesses,
                         taken=guard != 0)
            if guard != 0:
                return ast.Seq(first=cmd.body, second=cmd)
            return None

        if isinstance(cmd, ast.Mitigate):
            estimate, accesses = eval_expr_traced(cmd.budget, self.memory)
            self._charge(StepKind.MITIGATE, cmd, reads=accesses)
            if self.recorder.active:
                # Span boundary: the epoch opens once the head is charged,
                # carrying the runtime's current prediction for it.
                self.recorder.on_mitigate_enter(
                    cmd.mit_id,
                    cmd.level,
                    estimate,
                    self.mitigation.predict(estimate, cmd.level),
                    self.time,
                )
            frame = _MitFrame(
                mit_id=cmd.mit_id,
                level=cmd.level,
                estimate=estimate,
                start_time=self.time,
                pc_label=self.mitigate_pc.get(cmd.mit_id),
            )
            return ast.Seq(first=cmd.body, second=_MitExit(frame=frame))

        raise TypeError(f"not a command: {cmd!r}")

    def _finish_mitigation(self, frame: _MitFrame) -> None:
        elapsed = self.time - frame.start_time
        profiler = self.profiler
        if profiler is None:
            total = self.mitigation.settle(frame.estimate, frame.level,
                                           elapsed)
        else:
            started = profiler.clock()
            total = self.mitigation.settle(frame.estimate, frame.level,
                                           elapsed)
            profiler.add_wall("mitigation.schedule",
                              profiler.clock() - started, calls=1)
            profiler.add_cycles("mitigation.padding", total - elapsed,
                                calls=1)
        # Pad the block to exactly its (possibly just-inflated) prediction.
        self.time = frame.start_time + total
        self.records.append(
            MitigationRecord(
                mit_id=frame.mit_id,
                level=frame.level,
                start_time=frame.start_time,
                end_time=self.time,
                pc_label=frame.pc_label,
            )
        )
        if self.recorder.active:
            self.recorder.on_mitigation(
                mit_id=frame.mit_id,
                level=frame.level,
                estimate=frame.estimate,
                elapsed=elapsed,
                padded=total,
                misses=self.mitigation.misses(frame.level),
                pc_label=frame.pc_label,
                end_time=self.time,
            )
        return None

    # -- driving --------------------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Run to completion (or raise ``TimeoutError`` after ``max_steps``)."""
        if self.recorder.active:
            # Span boundary: the run timeline opens at global clock 0.
            self.recorder.on_run_start({
                "hardware": type(self.environment).__name__,
                "mitigation": self.mitigation.describe(),
            })
        profiler = self.profiler
        if profiler is not None:
            nested_before = (
                profiler.wall_ns.get(self._hw_subsystem, 0)
                + profiler.wall_ns.get("mitigation.schedule", 0)
            )
            run_started = profiler.clock()
        current: Optional[ast.Command] = self.program
        while current is not None:
            if self.steps >= self.max_steps:
                raise TimeoutError(
                    f"program did not terminate within {self.max_steps} steps"
                )
            current = self._step(current)
            self.steps += 1
        if profiler is not None:
            # Dispatch = the run loop's own wall-time, i.e. everything
            # that is not the nested hardware/mitigation sections.  It
            # gets zero cycles: dispatch never advances the clock, so
            # the cycle counters still partition the final time.
            run_wall = profiler.clock() - run_started
            nested = (
                profiler.wall_ns.get(self._hw_subsystem, 0)
                + profiler.wall_ns.get("mitigation.schedule", 0)
                - nested_before
            )
            profiler.add_wall("interpreter.dispatch",
                              max(run_wall - nested, 0), calls=self.steps)
        # Mitigate vectors are ordered by completion time; records are
        # appended at completion so they already are, but make it explicit.
        self.records.sort(key=lambda r: r.end_time)
        result = ExecutionResult(
            memory=self.memory,
            environment=self.environment,
            time=self.time,
            events=tuple(self.events),
            mitigations=tuple(self.records),
            steps=self.steps,
        )
        if self.recorder.active:
            self.recorder.on_finish(result)
        return result


def execute(
    program: ast.Command,
    memory: Memory,
    environment: MachineEnvironment,
    layout: Optional[Layout] = None,
    mitigation: Optional[MitigationState] = None,
    mitigate_pc: Mapping[str, Label] = None,
    max_steps: int = 10_000_000,
    recorder: Optional[TraceRecorder] = None,
    profiler: Optional[Profiler] = None,
) -> ExecutionResult:
    """Run ``program`` from ``(memory, environment, G=0)`` to completion.

    ``memory`` and ``environment`` are mutated; pass copies to keep the
    originals.  ``recorder`` observes the run (see
    :mod:`repro.telemetry`); the default null recorder records nothing and
    costs nothing.  ``profiler`` attributes cycles and wall-time to
    subsystems (see :mod:`repro.telemetry.profiling`); inactive or absent
    profilers cost one pointer check per step.  See :class:`Interpreter`
    for the other parameters.
    """
    interp = Interpreter(
        program=program,
        memory=memory,
        environment=environment,
        layout=layout,
        mitigation=mitigation,
        mitigate_pc=dict(mitigate_pc or {}),
        max_steps=max_steps,
        recorder=recorder,
        profiler=profiler,
    )
    return interp.run()
