"""Executable checkers for the faithfulness requirements (Properties 1, 3, 4).

These are the language-side half of the software/hardware contract; the
hardware-side half (Properties 2, 5-7) lives in
:mod:`repro.hardware.contract`.

* Property 1 (adequacy): the full semantics computes exactly the executions
  of the core semantics -- same final memory, same assignment sequence.
* Property 3 (sequential composition): executing ``c1; c2`` is executing
  ``c1`` and then ``c2`` from where it left off, with time accumulating.
* Property 4 (accurate sleep): ``sleep n`` takes exactly ``max(n, 0)``.

Each checker raises no exceptions on failure; it returns a list of violation
strings so test suites and the verification harness can aggregate them.
"""

from __future__ import annotations

from typing import List, Optional

from ..lang import ast
from ..machine.layout import Layout
from ..machine.memory import Memory
from ..hardware.interface import MachineEnvironment
from .core import run_core
from .full import execute
from .mitigation import MitigationState


def check_adequacy(
    program: ast.Command,
    memory: Memory,
    environment: MachineEnvironment,
    max_steps: int = 1_000_000,
) -> List[str]:
    """Property 1: core and full semantics agree on what is computed."""
    violations = []
    core_memory = run_core(program, memory.copy(), max_steps=max_steps)
    result = execute(
        program, memory.copy(), environment.clone(), max_steps=max_steps
    )
    if core_memory != result.memory:
        violations.append(
            "P1-adequacy: core and full semantics reached different final "
            f"memories: {core_memory!r} vs {result.memory!r}"
        )
    return violations


def check_sequential_composition(
    c1: ast.Command,
    c2: ast.Command,
    memory: Memory,
    environment: MachineEnvironment,
    max_steps: int = 1_000_000,
) -> List[str]:
    """Property 3: ``c1; c2`` = ``c1`` then ``c2``, accumulating time.

    All three runs share one address layout (built for the composed
    program), one mitigation state, and continue from each other's memory
    and environment -- the composed run must match step for step.
    """
    violations = []
    composed = ast.Seq(first=c1, second=c2)
    layout = Layout.build(composed, memory)

    # Split run: c1, then c2 from c1's final state.
    split_memory = memory.copy()
    split_env = environment.clone()
    mitigation = MitigationState()
    r1 = execute(
        c1, split_memory, split_env,
        layout=layout, mitigation=mitigation, max_steps=max_steps,
    )
    r2 = execute(
        c2, split_memory, split_env,
        layout=layout, mitigation=mitigation, max_steps=max_steps,
    )

    whole = execute(
        composed, memory.copy(), environment.clone(),
        layout=layout, mitigation=MitigationState(), max_steps=max_steps,
    )

    if whole.time != r1.time + r2.time:
        violations.append(
            "P3-seq: composed time "
            f"{whole.time} != {r1.time} + {r2.time}"
        )
    if whole.memory != split_memory:
        violations.append("P3-seq: composed and split final memories differ")
    if whole.environment.full_state() != split_env.full_state():
        violations.append(
            "P3-seq: composed and split final environments differ"
        )
    split_events = list(r1.events) + [
        type(e)(e.name, e.value, e.time + r1.time, e.index) for e in r2.events
    ]
    if list(whole.events) != split_events:
        violations.append("P3-seq: composed and split event traces differ")
    return violations


def check_sleep_accuracy(
    durations,
    environment: MachineEnvironment,
    read_label=None,
    write_label=None,
) -> List[str]:
    """Property 4: ``sleep n`` takes exactly ``max(n, 0)`` cycles."""
    violations = []
    lattice = environment.lattice
    read_label = read_label if read_label is not None else lattice.bottom
    write_label = write_label if write_label is not None else lattice.top
    for n in durations:
        program = ast.Sleep(
            duration=ast.IntLit(n),
            read_label=read_label,
            write_label=write_label,
        )
        memory = Memory({})
        result = execute(program, memory, environment.clone())
        expected = max(n, 0)
        if result.time != expected:
            violations.append(
                f"P4-sleep: sleep({n}) took {result.time} cycles, "
                f"expected exactly {expected}"
            )
    return violations
