"""Observable events and mitigate-vector traces (Sec. 6.1, 6.3).

The paper's adversary at level ``lA`` observes memory locations at or below
``lA`` *and the times at which they change* (the coresident-adversary threat
model of Sec. 3.4).  Executions therefore produce a sequence of *assignment
events* ``(x, v, t)``; the ``lA``-observation of a run is the subsequence of
events on variables the adversary can read.

Executions also produce a *mitigate vector* ``(M, t)``: one record per
completed ``mitigate`` command, ordered by completion time (Sec. 6.3), with
the command's static program-counter label ``pc(M)`` and mitigation level
``lev(M)`` attached so the Definition 2 projections can be computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional, Tuple

from ..lattice import Label


@dataclass(frozen=True)
class Event:
    """An observable assignment event ``(x, v, t)``.

    ``index`` is None for scalar assignments; for array stores the event
    carries the written element's index (the adversary sees the memory word
    change).  ``time`` is the global clock when the update lands.
    """

    name: str
    value: int
    time: int
    index: Optional[int] = None

    def location(self) -> str:
        """``x`` for scalars, ``a[i]`` for array stores."""
        return self.name if self.index is None else f"{self.name}[{self.index}]"

    def __str__(self) -> str:
        return f"({self.location()}, {self.value}, {self.time})"


@dataclass(frozen=True)
class MitigationRecord:
    """One completed ``mitigate`` command ``(M_eta, t)``.

    ``duration`` is the full padded execution time of the mitigated block
    (the ``t`` component of the paper's vectors); ``end_time`` orders the
    vector by completion, as Sec. 6.3 prescribes.  ``pc_label`` is the static
    program-counter label at the command (``pc(M_eta)``), supplied by the
    type checker; ``level`` is the mitigation level (``lev(M_eta)``).
    """

    mit_id: str
    level: Label
    start_time: int
    end_time: int
    pc_label: Optional[Label] = None

    @property
    def duration(self) -> int:
        """The padded execution time of the mitigated block."""
        return self.end_time - self.start_time


def observable_events(
    events: Tuple[Event, ...],
    gamma: Mapping[str, Label],
    adversary: Label,
) -> Tuple[Event, ...]:
    """The ``lA``-observation: events on locations at or below ``adversary``."""
    out = []
    for event in events:
        label = gamma.get(event.name)
        if label is None:
            raise KeyError(f"no security label for {event.name!r}")
        if label.flows_to(adversary):
            out.append(event)
    return tuple(out)


def observation_key(events: Tuple[Event, ...]) -> Tuple:
    """A hashable fingerprint of an observation, for distinguishability
    counting in Definition 1."""
    return tuple((e.name, e.index, e.value, e.time) for e in events)


def project_mitigations(
    records: Tuple[MitigationRecord, ...],
    pc_in: Optional[FrozenSet[Label]] = None,
    pc_not_in: Optional[FrozenSet[Label]] = None,
    level_in: Optional[FrozenSet[Label]] = None,
) -> Tuple[MitigationRecord, ...]:
    """The paper's mitigate-vector projections ``(M, t)|_phi``.

    Definition 2 keeps records whose pc label is *outside* ``L^`` (the
    command occurs in a low context) while the mitigation level is *inside*
    ``L^``; Lemma 1 filters on the pc label only.  Passing the corresponding
    keyword arguments composes the needed predicates.
    """
    out = []
    for record in records:
        if pc_in is not None and record.pc_label not in pc_in:
            continue
        if pc_not_in is not None and record.pc_label in pc_not_in:
            continue
        if level_in is not None and record.level not in level_in:
            continue
        out.append(record)
    return tuple(out)


def mitigation_ids(records: Tuple[MitigationRecord, ...]) -> Tuple[str, ...]:
    """The ``M`` component of a vector (ids in completion order)."""
    return tuple(r.mit_id for r in records)


def mitigation_times(records: Tuple[MitigationRecord, ...]) -> Tuple[int, ...]:
    """The ``t`` component of a vector (durations in completion order)."""
    return tuple(r.duration for r in records)
