"""Predictive mitigation runtime (Sec. 7, Fig. 6).

``mitigate_eta (e, l) c`` promises that observing the execution time of the
block leaks only a bounded amount of information about levels above ``l``'s
observers.  The runtime keeps, per mitigation level, a misprediction counter
``Miss[l]``, and enforces::

    predict(n, l) = max(n, 1) * 2^Miss[l]          (fast doubling)

The block is padded so its total time is exactly the current prediction; if
the body overruns the prediction, ``Miss[l]`` is incremented until the
prediction exceeds the elapsed time (rule S-UPDATE), and the block is padded
to the *new* prediction.  Because each level's prediction can only take
``Miss`` values that grow monotonically, the number of distinct observable
durations after time ``T`` is ``O(log T)`` -- the source of the paper's
``|L^| * log(K+1) * (1 + log T)`` leakage bound.

Two penalty policies from the predictive-mitigation line of work are
provided (Fig. 6 uses the *local* policy):

* local: one ``Miss`` counter per mitigation level -- a misprediction at H
  does not inflate predictions for blocks mitigated at an incomparable
  level;
* global: a single shared counter -- simpler, leaks less across levels, but
  penalizes everyone for anyone's misprediction.

Prediction *schemes* are pluggable; besides fast doubling the polynomial
scheme ``max(n,1) * (Miss+1)^q`` from the earlier predictive-mitigation
papers is included for the ablation benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

from ..lattice import Label
from ..telemetry.recorder import NULL_RECORDER


class PredictionScheme(ABC):
    """Maps (initial estimate, misprediction count) to a prediction."""

    @abstractmethod
    def predict(self, estimate: int, misses: int) -> int:
        """The prediction for a block with initial estimate ``estimate``
        after ``misses`` recorded mispredictions."""

    def name(self) -> str:
        """Human-readable scheme name for reports."""
        return type(self).__name__


class DoublingScheme(PredictionScheme):
    """The paper's fast doubling: ``predict(n, l) = max(n, 1) * 2^Miss[l]``."""

    def predict(self, estimate: int, misses: int) -> int:
        """``max(n, 1) * 2^misses``."""
        return max(estimate, 1) * (2 ** misses)


class PolynomialScheme(PredictionScheme):
    """``max(n, 1) * (Miss + 1)^q`` -- slower growth, more mispredictions,
    tighter padding; q=1 is linear backoff."""

    def __init__(self, power: int = 2):
        if power < 1:
            raise ValueError("power must be >= 1")
        self.power = power

    def predict(self, estimate: int, misses: int) -> int:
        """``max(n, 1) * (misses + 1)^q``."""
        return max(estimate, 1) * ((misses + 1) ** self.power)

    def name(self) -> str:
        """Human-readable scheme name for reports."""
        return f"PolynomialScheme(q={self.power})"


#: Scheme names accepted by :func:`make_scheme` (the CLI's ``--scheme``
#: choices and the workload spec's ``scheme`` field).
SCHEME_CHOICES = ("doubling", "polynomial")


def make_scheme(name: str, power: int = 2) -> PredictionScheme:
    """Build a prediction scheme from its spec/CLI name."""
    if name == "doubling":
        return DoublingScheme()
    if name == "polynomial":
        return PolynomialScheme(power=power)
    raise ValueError(
        f"unknown prediction scheme {name!r}; choose from {SCHEME_CHOICES}"
    )


class MitigationState:
    """The ``Miss`` array plus policy/scheme choices.

    The state is shared across all ``mitigate`` commands of one execution --
    mispredictions inflate *subsequent* predictions (Sec. 2.3), which is what
    makes total leakage polylogarithmic in time rather than linear in the
    number of blocks.
    """

    def __init__(
        self,
        scheme: Optional[PredictionScheme] = None,
        policy: str = "local",
    ):
        if policy not in ("local", "global"):
            raise ValueError("policy must be 'local' or 'global'")
        self.scheme = scheme if scheme is not None else DoublingScheme()
        self.policy = policy
        self._miss: Dict[Optional[Label], int] = {}
        #: Telemetry seam; the interpreter swaps in an active recorder when
        #: one is attached to the run (see :mod:`repro.telemetry`).
        self.recorder = NULL_RECORDER

    def _key(self, level: Label) -> Optional[Label]:
        return level if self.policy == "local" else None

    def misses(self, level: Label) -> int:
        """Current value of ``Miss[level]`` (or the shared counter)."""
        return self._miss.get(self._key(level), 0)

    def predict(self, estimate: int, level: Label) -> int:
        """``predict(n, l)`` under the current scheme and counters."""
        return self.scheme.predict(estimate, self.misses(level))

    def settle(self, estimate: int, level: Label, elapsed: int) -> int:
        """Apply S-UPDATE and return the padded total duration.

        Mirrors Fig. 6: while the elapsed time has reached the prediction,
        record a misprediction; the block is then padded to the first
        prediction strictly greater than the elapsed time.
        """
        key = self._key(level)
        while elapsed >= self.scheme.predict(
            estimate, self._miss.get(key, 0)
        ):
            self._miss[key] = self._miss.get(key, 0) + 1
            if self.recorder.active:
                self.recorder.on_miss_update(key, self._miss[key])
        return self.scheme.predict(estimate, self._miss.get(key, 0))

    def describe(self) -> str:
        """``scheme/policy`` -- the configuration string attached to run
        spans by the telemetry layer."""
        return f"{self.scheme.name()}/{self.policy}"

    def snapshot(self) -> Dict[Optional[Label], int]:
        """Current counters (for inspection and tests)."""
        return dict(self._miss)

    def copy(self) -> "MitigationState":
        """An independent copy (counters included)."""
        clone = MitigationState(self.scheme, self.policy)
        clone._miss = dict(self._miss)
        return clone
