"""Core and full semantics, observable events, and predictive mitigation."""

from .core import (
    STOP,
    CoreStep,
    EvaluationError,
    core_step,
    eval_expr,
    eval_expr_traced,
    run_core,
)
from .events import (
    Event,
    MitigationRecord,
    mitigation_ids,
    mitigation_times,
    observable_events,
    observation_key,
    project_mitigations,
)
from .faithfulness import (
    check_adequacy,
    check_sequential_composition,
    check_sleep_accuracy,
)
from .full import ExecutionResult, Interpreter, SemanticsError, execute
from .mitigation import (
    SCHEME_CHOICES,
    DoublingScheme,
    MitigationState,
    PolynomialScheme,
    PredictionScheme,
    make_scheme,
)

__all__ = [
    "CoreStep",
    "DoublingScheme",
    "EvaluationError",
    "Event",
    "ExecutionResult",
    "Interpreter",
    "MitigationRecord",
    "MitigationState",
    "PolynomialScheme",
    "PredictionScheme",
    "SCHEME_CHOICES",
    "STOP",
    "SemanticsError",
    "check_adequacy",
    "check_sequential_composition",
    "check_sleep_accuracy",
    "core_step",
    "eval_expr",
    "eval_expr_traced",
    "execute",
    "make_scheme",
    "mitigation_ids",
    "mitigation_times",
    "observable_events",
    "observation_key",
    "project_mitigations",
    "run_core",
]
