"""Core semantics (Fig. 2): untimed small-step execution.

The core semantics ignores timing entirely: ``mitigate (e, l) c`` evaluates
to ``c`` and ``sleep`` behaves like ``skip``.  Its purpose in the paper is to
pin down *what the program computes*, against which the full semantics must
be adequate (Property 1).  Our full semantics reuses this module's stepping
logic, so adequacy holds by construction -- and the tests check it anyway by
running both and comparing.

Expression evaluation is total and deterministic:

* division and modulus by zero yield 0 (raising would itself be a channel);
* division truncates toward zero, and ``%`` satisfies
  ``a == (a/b)*b + a%b`` (C semantics, matching the case studies);
* shifts by negative amounts yield the left operand unchanged;
* comparisons and boolean operators yield 0/1, with any nonzero operand
  counting as true (the paper's ``n <> 0`` convention).

Array index errors (the one partiality the array extension introduces) raise
:class:`EvaluationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..lang import ast
from ..machine.layout import DataAccess
from ..machine.memory import Memory


class EvaluationError(RuntimeError):
    """Raised on an out-of-bounds array access."""


#: Syntactic marker for a finished computation.  Distinct from ``skip``,
#: which is a real command that consumes time (Sec. 3.1); ``STOP`` is pure
#: syntax and takes no time at all.
STOP = None
Continuation = Optional[ast.Command]


def _truncdiv(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _truncmod(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - _truncdiv(a, b) * b


def eval_expr(expr: ast.Expr, memory: Memory) -> int:
    """Big-step expression evaluation ``(e, m) => v``."""
    value, _ = eval_expr_traced(expr, memory)
    return value


def eval_expr_traced(
    expr: ast.Expr, memory: Memory
) -> Tuple[int, Tuple[DataAccess, ...]]:
    """Evaluate ``expr``, also returning the data accesses it performs.

    The access list is what the full semantics hands to the hardware model;
    it contains one entry per scalar read and per array-element read, in
    evaluation order.  Short-circuiting would make the *set* of accesses
    value-dependent, so ``&&``/``||`` evaluate both operands -- the paper's
    single-step timing model charges a whole expression at once.
    """
    accesses: list = []

    def go(e: ast.Expr) -> int:
        if isinstance(e, ast.IntLit):
            return e.value
        if isinstance(e, ast.Var):
            accesses.append(DataAccess(e.name))
            return memory.read(e.name)
        if isinstance(e, ast.ArrayRead):
            index = go(e.index)
            if not 0 <= index < memory.array_length(e.array):
                raise EvaluationError(
                    f"array read {e.array}[{index}] out of bounds "
                    f"(length {memory.array_length(e.array)})"
                )
            accesses.append(DataAccess(e.array, index))
            return memory.read_elem(e.array, index)
        if isinstance(e, ast.UnOp):
            v = go(e.operand)
            return -v if e.op == "-" else int(v == 0)
        if isinstance(e, ast.BinOp):
            a = go(e.left)
            b = go(e.right)
            return _apply(e.op, a, b)
        raise TypeError(f"not an expression: {e!r}")

    value = go(expr)
    return value, tuple(accesses)


def _apply(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return _truncdiv(a, b)
    if op == "%":
        return _truncmod(a, b)
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return a << b if b >= 0 else a
    if op == ">>":
        return a >> b if b >= 0 else a
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(a != 0 and b != 0)
    if op == "||":
        return int(a != 0 or b != 0)
    raise ValueError(f"unknown operator {op!r}")  # pragma: no cover


@dataclass(frozen=True)
class CoreStep:
    """One core-semantics transition: the executed labeled command (if the
    step came from one -- sequencing steps are driven by their first
    component) and the resulting continuation."""

    executed: Optional[ast.LabeledCommand]
    continuation: Continuation
    assigned: Optional[Tuple[str, int]] = None


def core_step(cmd: ast.Command, memory: Memory) -> CoreStep:
    """One transition of Fig. 2.  Mutates ``memory`` for assignments.

    Returns the new continuation (``STOP`` when the command finished) and
    identifies which labeled command fired, which the full semantics uses to
    attach labels, addresses, and costs.
    """
    if isinstance(cmd, ast.Skip):
        return CoreStep(cmd, STOP)
    if isinstance(cmd, ast.Sleep):
        # Untimed: behaves like skip (the duration still gets evaluated by
        # the full semantics for its accesses and for Property 4).
        return CoreStep(cmd, STOP)
    if isinstance(cmd, ast.Assign):
        value = eval_expr(cmd.expr, memory)
        memory.write(cmd.target, value)
        return CoreStep(cmd, STOP, assigned=(cmd.target, value))
    if isinstance(cmd, ast.ArrayAssign):
        index = eval_expr(cmd.index, memory)
        value = eval_expr(cmd.expr, memory)
        if not 0 <= index < memory.array_length(cmd.array):
            raise EvaluationError(
                f"array write {cmd.array}[{index}] out of bounds "
                f"(length {memory.array_length(cmd.array)})"
            )
        memory.write_elem(cmd.array, index, value)
        return CoreStep(cmd, STOP, assigned=(cmd.array, value))
    if isinstance(cmd, ast.If):
        branch = (
            cmd.then_branch
            if eval_expr(cmd.cond, memory) != 0
            else cmd.else_branch
        )
        return CoreStep(cmd, branch)
    if isinstance(cmd, ast.While):
        if eval_expr(cmd.cond, memory) != 0:
            return CoreStep(cmd, ast.Seq(first=cmd.body, second=cmd))
        return CoreStep(cmd, STOP)
    if isinstance(cmd, ast.Mitigate):
        # Core semantics: identity -- mitigate (e, l) c steps to c.
        return CoreStep(cmd, cmd.body)
    if isinstance(cmd, ast.Seq):
        inner = core_step(cmd.first, memory)
        if inner.continuation is STOP:
            return CoreStep(inner.executed, cmd.second, inner.assigned)
        return CoreStep(
            inner.executed,
            ast.Seq(first=inner.continuation, second=cmd.second),
            inner.assigned,
        )
    raise TypeError(f"not a command: {cmd!r}")


def run_core(
    program: ast.Command, memory: Memory, max_steps: int = 1_000_000
) -> Memory:
    """Run a program to completion under the core semantics.

    Mutates and returns ``memory``.  Raises :class:`TimeoutError` after
    ``max_steps`` transitions (the language has nonterminating programs).
    """
    current: Continuation = program
    for _ in range(max_steps):
        if current is STOP:
            return memory
        current = core_step(current, memory).continuation
    if current is STOP:
        return memory
    raise TimeoutError(f"program did not terminate within {max_steps} steps")
