"""Static cycle-cost analysis: interval bounds per command, region, and
mitigate block, parameterized by hardware model.

The analyzer is an abstract interpreter over the program term (the same
structured control flow the CFG mirrors), with two abstract components:

* a flat constant environment (the :class:`ConstantPropagation` lattice's
  per-point facts, recomputed flow-sensitively along the interpretation)
  that resolves guards and loop bounds;
* the hardware contract's abstract state (bus queue occupancy, cumulative
  write counts) from :mod:`repro.hardware.costmodel`.

Loops whose guards stay constant are unrolled concretely (up to
:data:`MAX_UNROLL` iterations); anything else is *widened* to ⊤ -- the
loop's cost interval loses its finite upper bound and the report carries
a :class:`WideningNote` diagnostic.  Intervals measure **unpadded**
cycles: hardware-charged steps plus ``sleep``, excluding mitigation
padding (padding is what the predictor adds on top, so static bounds on
the unpadded body are exactly what quantum tuning needs).

Soundness is checked, not assumed: :func:`replay_program` re-executes a
program under the real interpreter with the PR 7 profiler and a region
recorder attached, and asserts every observed per-region cycle total
falls inside the static interval.  ``tests/test_cost.py`` runs that
harness over the whole lint corpus for every registry model, and a
Hypothesis property does the same for generated programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hardware.costmodel import (
    CostContract,
    Interval,
    ZERO,
    contract_for,
)
from ..hardware.interface import StepKind
from ..hardware.params import MachineParams
from ..lang import ast
from ..telemetry.recorder import TraceRecorder
from .dataflow import eval_const

#: Concrete-unroll budget per loop before widening to ⊤.
MAX_UNROLL = 4096


# ---------------------------------------------------------------------------
# Report model
# ---------------------------------------------------------------------------


@dataclass
class MitigateCost:
    """Static bounds for one mitigate block's *body* (unpadded cycles)."""

    mit_id: str
    node_id: int
    span: ast.Span
    level: str
    #: Constant-folded initial budget, when the analysis can prove one.
    budget: Optional[int]
    interval: Interval

    @property
    def initial_prediction(self) -> Optional[int]:
        """The doubling scheme's first-epoch prediction ``max(budget, 1)``."""
        return None if self.budget is None else max(self.budget, 1)


@dataclass
class BranchCost:
    """Per-arm bounds for one two-armed branch (guard step excluded)."""

    node_id: int
    span: ast.Span
    then_interval: Interval
    else_interval: Interval


@dataclass
class LoopCost:
    """Total bounds for one loop (all guard evaluations + iterations)."""

    node_id: int
    span: ast.Span
    interval: Interval
    widened: bool
    #: Concrete iteration count when the loop fully unrolled.
    unrolled: Optional[int] = None


@dataclass
class WideningNote:
    """Why a region lost its finite upper bound."""

    node_id: int
    span: ast.Span
    message: str


@dataclass
class CostReport:
    """Everything one (program, hardware model) cost analysis produced."""

    hardware: str
    program: Interval
    per_command: Dict[int, Interval] = field(default_factory=dict)
    mitigates: Dict[str, MitigateCost] = field(default_factory=dict)
    branches: Dict[int, BranchCost] = field(default_factory=dict)
    loops: Dict[int, LoopCost] = field(default_factory=dict)
    notes: List[WideningNote] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        def iv(interval: Interval) -> List[Optional[int]]:
            return [interval.lo, interval.hi]

        return {
            "hardware": self.hardware,
            "program": iv(self.program),
            "mitigates": [
                {
                    "mit_id": site.mit_id,
                    "line": site.span.line,
                    "column": site.span.column,
                    "level": site.level,
                    "budget": site.budget,
                    "interval": iv(site.interval),
                }
                for site in self.mitigates.values()
            ],
            "loops": [
                {
                    "line": loop.span.line,
                    "interval": iv(loop.interval),
                    "widened": loop.widened,
                    "unrolled": loop.unrolled,
                }
                for loop in self.loops.values()
            ],
            "widened": [
                {"line": note.span.line, "message": note.message}
                for note in self.notes
            ],
        }


# ---------------------------------------------------------------------------
# Access counting (mirrors eval_expr_traced: no short-circuit, one access
# per Var / ArrayRead occurrence, in evaluation order)
# ---------------------------------------------------------------------------


def expr_accesses(expr: ast.Expr) -> int:
    """How many data accesses evaluating ``expr`` performs."""
    if isinstance(expr, ast.IntLit):
        return 0
    if isinstance(expr, ast.Var):
        return 1
    if isinstance(expr, ast.ArrayRead):
        return expr_accesses(expr.index) + 1
    if isinstance(expr, ast.BinOp):
        return expr_accesses(expr.left) + expr_accesses(expr.right)
    if isinstance(expr, ast.UnOp):
        return expr_accesses(expr.operand)
    raise TypeError(f"not an expression: {expr!r}")


def _assigned_names(cmd: ast.Command) -> frozenset:
    """Scalar names any path through ``cmd`` may write."""
    names = set()
    for sub in cmd.walk():
        if isinstance(sub, ast.Assign):
            names.add(sub.target)
    return frozenset(names)


# ---------------------------------------------------------------------------
# The abstract interpreter
# ---------------------------------------------------------------------------

Env = Dict[str, int]


class _CostInterpreter:
    def __init__(self, contract: CostContract):
        self.contract = contract
        self.per_command: Dict[int, Interval] = {}
        self.mitigates: Dict[str, MitigateCost] = {}
        self.branches: Dict[int, BranchCost] = {}
        self.loops: Dict[int, LoopCost] = {}
        self.notes: List[WideningNote] = []

    # -- recording -----------------------------------------------------------

    def _record_step(self, cmd: ast.LabeledCommand, interval: Interval) -> None:
        seen = self.per_command.get(cmd.node_id)
        self.per_command[cmd.node_id] = (
            interval if seen is None else seen.join(interval)
        )

    def _note(self, cmd: ast.LabeledCommand, message: str) -> None:
        if any(n.node_id == cmd.node_id for n in self.notes):
            return
        self.notes.append(WideningNote(cmd.node_id, cmd.span, message))

    # -- one hardware step ----------------------------------------------------

    def _step(
        self,
        cmd: ast.LabeledCommand,
        kind: StepKind,
        reads: int,
        writes: int,
        hw,
        is_branch: bool = False,
    ):
        interval, hw = self.contract.step_cost(
            kind, reads, writes, is_branch,
            cmd.read_label, cmd.write_label, hw,
        )
        self._record_step(cmd, interval)
        return interval, hw

    # -- environment helpers ---------------------------------------------------

    @staticmethod
    def _join_env(a: Env, b: Env) -> Env:
        return {
            name: value for name, value in a.items()
            if b.get(name) == value
        }

    # -- commands --------------------------------------------------------------

    def run(self, cmd: ast.Command, env: Env, hw):
        """Abstractly execute ``cmd``; returns (interval, env', hw')."""
        if isinstance(cmd, ast.Seq):
            first, env, hw = self.run(cmd.first, env, hw)
            second, env, hw = self.run(cmd.second, env, hw)
            return first + second, env, hw

        if isinstance(cmd, ast.Skip):
            interval, hw = self._step(cmd, StepKind.SKIP, 0, 0, hw)
            return interval, env, hw

        if isinstance(cmd, ast.Assign):
            interval, hw = self._step(
                cmd, StepKind.ASSIGN, expr_accesses(cmd.expr), 1, hw
            )
            value = eval_const(cmd.expr, env)
            env = dict(env)
            if value is None:
                env.pop(cmd.target, None)
            else:
                env[cmd.target] = value
            return interval, env, hw

        if isinstance(cmd, ast.ArrayAssign):
            reads = expr_accesses(cmd.index) + expr_accesses(cmd.expr)
            interval, hw = self._step(cmd, StepKind.ASSIGN, reads, 1, hw)
            return interval, env, hw

        if isinstance(cmd, ast.Sleep):
            duration = eval_const(cmd.duration, env)
            if duration is None:
                interval = Interval.top()
                self._note(
                    cmd,
                    "sleep duration is not a compile-time constant; "
                    "its cycle cost is unbounded (⊤)",
                )
            else:
                interval = Interval.exact(max(duration, 0))
            # Property 4: sleep never touches the hardware.
            self._record_step(cmd, interval)
            return interval, env, hw

        if isinstance(cmd, ast.If):
            return self._branch(cmd, env, hw)

        if isinstance(cmd, ast.While):
            return self._loop(cmd, env, hw)

        if isinstance(cmd, ast.Mitigate):
            return self._mitigate(cmd, env, hw)

        raise TypeError(f"not a command: {cmd!r}")

    def _branch(self, cmd: ast.If, env: Env, hw):
        head, hw = self._step(
            cmd, StepKind.BRANCH, expr_accesses(cmd.cond), 0, hw,
            is_branch=True,
        )
        guard = eval_const(cmd.cond, env)
        if guard is not None:
            arm = cmd.then_branch if guard != 0 else cmd.else_branch
            body, env, hw = self.run(arm, env, hw)
            return head + body, env, hw

        then_iv, then_env, then_hw = self.run(cmd.then_branch, dict(env), hw)
        else_iv, else_env, else_hw = self.run(cmd.else_branch, dict(env), hw)
        seen = self.branches.get(cmd.node_id)
        if seen is None:
            self.branches[cmd.node_id] = BranchCost(
                cmd.node_id, cmd.span, then_iv, else_iv
            )
        else:
            seen.then_interval = seen.then_interval.join(then_iv)
            seen.else_interval = seen.else_interval.join(else_iv)
        return (
            head + then_iv.join(else_iv),
            self._join_env(then_env, else_env),
            self.contract.join_state(then_hw, else_hw),
        )

    def _loop(self, cmd: ast.While, env: Env, hw):
        total = ZERO
        iterations = 0
        widened = False
        guard_reads = expr_accesses(cmd.cond)
        while True:
            head, hw = self._step(
                cmd, StepKind.BRANCH, guard_reads, 0, hw, is_branch=True
            )
            total = total + head
            guard = eval_const(cmd.cond, env)
            if guard == 0:
                break
            if guard is None:
                self._note(
                    cmd,
                    "loop bound is not a compile-time constant; the loop's "
                    "cycle cost is unbounded (⊤)",
                )
                widened = True
                break
            if iterations >= MAX_UNROLL:
                self._note(
                    cmd,
                    f"loop exceeds the {MAX_UNROLL}-iteration unroll budget; "
                    "its cycle cost is widened to ⊤",
                )
                widened = True
                break
            body, env, hw = self.run(cmd.body, env, hw)
            total = total + body
            iterations += 1

        if widened:
            # Kill every name the body may write, widen the hardware state,
            # and abstractly execute the body once so inner commands (and
            # nested mitigate regions) still get their per-visit intervals.
            env = {
                name: value for name, value in env.items()
                if name not in _assigned_names(cmd.body)
            }
            hw = self.contract.widen_state(hw)
            _, _, body_hw = self.run(cmd.body, dict(env), hw)
            hw = self.contract.widen_state(
                self.contract.join_state(hw, body_hw)
            )
            total = Interval.top(total.lo)

        loop_iv = total
        seen = self.loops.get(cmd.node_id)
        if seen is None:
            self.loops[cmd.node_id] = LoopCost(
                cmd.node_id, cmd.span, loop_iv, widened,
                unrolled=None if widened else iterations,
            )
        else:
            seen.interval = seen.interval.join(loop_iv)
            seen.widened = seen.widened or widened
            if widened:
                seen.unrolled = None
        return total, env, hw

    def _mitigate(self, cmd: ast.Mitigate, env: Env, hw):
        budget = eval_const(cmd.budget, env)
        head, hw = self._step(
            cmd, StepKind.MITIGATE, expr_accesses(cmd.budget), 0, hw
        )
        body, env, hw = self.run(cmd.body, env, hw)
        region = body + self.contract.region_overhead(hw)
        seen = self.mitigates.get(cmd.mit_id)
        if seen is None:
            self.mitigates[cmd.mit_id] = MitigateCost(
                mit_id=cmd.mit_id,
                node_id=cmd.node_id,
                span=cmd.span,
                level=cmd.level.name if cmd.level is not None else "?",
                budget=budget,
                interval=region,
            )
        else:
            seen.interval = seen.interval.join(region)
            if seen.budget != budget:
                seen.budget = None
        return head + body, env, hw


def compute_cost(
    program: ast.Command,
    hardware: str = "null",
    params: Optional[MachineParams] = None,
    contract: Optional[CostContract] = None,
) -> CostReport:
    """Static interval cycle bounds for ``program`` on one hardware model."""
    contract = contract if contract is not None else contract_for(
        hardware, params
    )
    interp = _CostInterpreter(contract)
    total, _, hw = interp.run(program, {}, contract.initial_state())
    return CostReport(
        hardware=contract.name,
        program=total + contract.region_overhead(hw),
        per_command=interp.per_command,
        mitigates=interp.mitigates,
        branches=interp.branches,
        loops=interp.loops,
        notes=interp.notes,
    )


# ---------------------------------------------------------------------------
# The profiler-replay soundness harness
# ---------------------------------------------------------------------------


@dataclass
class RegionObservation:
    """One observed unpadded cycle total vs. its static interval."""

    region: str  # "<program>" or a mitigate id
    observed: int
    interval: Interval

    @property
    def ok(self) -> bool:
        return self.interval.contains(self.observed)


@dataclass
class SoundnessCheck:
    """The outcome of replaying one program on one hardware model."""

    path: str
    hardware: str
    status: str  # "checked" or "skipped"
    reason: str = ""
    observations: List[RegionObservation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(obs.ok for obs in self.observations)

    @property
    def violations(self) -> List[RegionObservation]:
        return [obs for obs in self.observations if not obs.ok]


class RegionRecorder(TraceRecorder):
    """Collects mitigation epochs; every other hook is the inherited no-op."""

    active = True

    def __init__(self):
        #: ``(mit_id, elapsed, padded, end_time)`` per completed epoch.
        self.mitigations: List[Tuple[str, int, int, int]] = []

    def on_mitigation(self, mit_id, level, estimate, elapsed,
                      padded, misses, pc_label, end_time):
        self.mitigations.append((str(mit_id), elapsed, padded, end_time))


def unpadded_regions(
    mitigations: List[Tuple[str, int, int, int]], final_time: int
) -> Tuple[int, List[Tuple[str, int]]]:
    """Strip mitigation padding out of observed region totals.

    ``mitigations`` holds ``(mit_id, elapsed, padded, end_time)`` per
    completed epoch.  An epoch's body window is ``[start, start+elapsed)``
    with ``start = end_time - padded``; epochs nested inside it (by time
    containment) contribute their own padding, which must be subtracted to
    recover the hardware+sleep cycles the static interval bounds.
    """
    epochs = [
        {
            "mit_id": mit_id,
            "start": end_time - padded,
            "elapsed": elapsed,
            "padding": padded - elapsed,
            "end": end_time,
        }
        for mit_id, elapsed, padded, end_time in mitigations
    ]
    program = final_time - sum(e["padding"] for e in epochs)
    regions = []
    for outer in epochs:
        nested_padding = sum(
            inner["padding"]
            for inner in epochs
            if inner is not outer
            and inner["start"] >= outer["start"]
            and inner["end"] <= outer["start"] + outer["elapsed"]
        )
        regions.append((outer["mit_id"], outer["elapsed"] - nested_padding))
    return program, regions


def default_memory(program: ast.Command) -> Dict[str, object]:
    """A zero-filled memory covering every name the program mentions.

    Scalars start at 0; arrays get :data:`DEFAULT_ARRAY_LENGTH` zeroed
    elements (enough that constant indices in the corpus stay in bounds).
    """
    arrays = set()
    for cmd in program.walk():
        if isinstance(cmd, ast.ArrayAssign):
            arrays.add(cmd.array)
        for expr in _command_exprs(cmd):
            for node in _walk_expr(expr):
                if isinstance(node, ast.ArrayRead):
                    arrays.add(node.array)
    names = ast.program_variables(program)
    memory: Dict[str, object] = {}
    for name in names:
        memory[name] = (
            [0] * DEFAULT_ARRAY_LENGTH if name in arrays else 0
        )
    return memory


DEFAULT_ARRAY_LENGTH = 64


def _command_exprs(cmd: ast.Command):
    if isinstance(cmd, ast.Assign):
        return (cmd.expr,)
    if isinstance(cmd, ast.ArrayAssign):
        return (cmd.index, cmd.expr)
    if isinstance(cmd, (ast.If, ast.While)):
        return (cmd.cond,)
    if isinstance(cmd, ast.Sleep):
        return (cmd.duration,)
    if isinstance(cmd, ast.Mitigate):
        return (cmd.budget,)
    return ()


def _walk_expr(expr: ast.Expr):
    yield expr
    for child in expr.children():
        yield from _walk_expr(child)


def replay_program(
    source: str,
    path: str = "<string>",
    hardware: str = "null",
    params: Optional[MachineParams] = None,
    memory: Optional[Dict[str, object]] = None,
    max_steps: int = 200_000,
) -> SoundnessCheck:
    """Run one program concretely and compare observed cycles to the
    static intervals (the soundness cross-check).

    Files that cannot be parsed, labeled, or executed (the corpus contains
    deliberately broken fixtures) come back as ``status="skipped"`` with
    the reason; everything else is ``"checked"`` with one observation per
    mitigate epoch plus the whole-program total.
    """
    from .. import api
    from ..lang.lexer import LexError
    from ..lang.parser import parse, ParseError
    from ..lattice import chain
    from ..semantics.core import EvaluationError
    from ..semantics.full import SemanticsError
    from ..telemetry.profiling import Profiler
    from ..typesystem.errors import TypingError
    from .engine import DirectiveError, parse_directives, _parse_gamma_spec
    from ..lang.parser import DEFAULT_LATTICE

    def skip(reason: str) -> SoundnessCheck:
        return SoundnessCheck(
            path=path, hardware=hardware, status="skipped", reason=reason
        )

    directives = parse_directives(source)
    levels = directives.get("levels")
    lattice = (
        chain(tuple(n.strip() for n in levels.split(",")))
        if levels else DEFAULT_LATTICE
    )
    try:
        gamma = (
            _parse_gamma_spec(directives["gamma"], lattice)
            if "gamma" in directives else {}
        )
    except DirectiveError as err:
        return skip(f"bad gamma directive: {err}")

    try:
        compiled = api.compile_program(
            source, gamma=gamma, lattice=lattice, infer=True, check=False
        )
    except (LexError, ParseError, TypingError) as err:
        return skip(f"does not compile: {err}")

    report = compute_cost(compiled.program, hardware, params)
    recorder = RegionRecorder()
    profiler = Profiler()
    try:
        result = compiled.run(
            memory if memory is not None else default_memory(
                compiled.program
            ),
            hardware=hardware,
            params=params,
            recorder=recorder,
            profiler=profiler,
        )
    except (EvaluationError, SemanticsError, TimeoutError, KeyError) as err:
        return skip(f"does not run: {err}")

    program_observed, regions = unpadded_regions(
        recorder.mitigations, result.final_time()
    )
    # The profiler partitions the clock: hardware + sleep + padding equals
    # the final time, so the unpadded total must also equal the profiled
    # non-padding cycles.  Cross-check the two observations agree.
    profiled = profiler.total_cycles() - profiler.cycles.get(
        "mitigation.padding", 0
    )
    observations = [
        RegionObservation("<program>", program_observed, report.program)
    ]
    if profiled != program_observed:
        observations.append(
            RegionObservation("<profiler-partition>", profiled,
                              Interval.exact(program_observed))
        )
    for mit_id, observed in regions:
        site = report.mitigates.get(mit_id)
        if site is None:
            observations.append(
                RegionObservation(mit_id, observed, Interval(1, 0))
            )
        else:
            observations.append(
                RegionObservation(mit_id, observed, site.interval)
            )
    return SoundnessCheck(
        path=path, hardware=hardware, status="checked",
        observations=observations,
    )


def check_corpus(
    paths,
    hardware_names=None,
    params: Optional[MachineParams] = None,
) -> List[SoundnessCheck]:
    """Replay every program on every model; returns one check per pair."""
    from ..hardware.registry import REGISTRY

    if hardware_names is None:
        hardware_names = REGISTRY.names()
    checks = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        for name in hardware_names:
            checks.append(
                replay_program(
                    source, path=str(path), hardware=name, params=params
                )
            )
    return checks
