"""Static analysis over the security-typed language.

The type system (Fig. 4) stops at the first violation; this package turns
it into a multi-pass *lint engine* that reports every finding in one run:

* :mod:`.diagnostics` -- the :class:`Diagnostic` model: stable ``TL0xx``
  rule codes, severities, source spans, optional fix-its;
* :mod:`.rules` -- the rule registry (catalog in ``docs/ANALYSIS.md``);
* :mod:`.collector` -- an error-recovery driver around
  :class:`repro.typesystem.typing.TypeChecker` that records each failed
  side condition and continues with the rule's natural recovery label;
* :mod:`.lints` -- timing-channel lints beyond the type system
  (secret-dependent sleeps, degenerate or redundant mitigations, ...);
* :mod:`.audit` -- the static Theorem 2 leakage audit per mitigate site;
* :mod:`.render` -- human text (with carets), JSON, and SARIF 2.1.0;
* :mod:`.engine` -- the driver tying it together (``repro lint``).
"""

from .audit import LeakageAudit, MitigateSite, audit_leakage
from .collector import CollectingTypeChecker, collect_typing_diagnostics
from .diagnostics import Diagnostic, Severity
from .engine import LintOptions, LintResult, analyze_program, analyze_source
from .render import render_json, render_sarif, render_text
from .rules import RULES, Rule

__all__ = [
    "CollectingTypeChecker",
    "Diagnostic",
    "LeakageAudit",
    "LintOptions",
    "LintResult",
    "MitigateSite",
    "RULES",
    "Rule",
    "Severity",
    "analyze_program",
    "analyze_source",
    "audit_leakage",
    "collect_typing_diagnostics",
    "render_json",
    "render_sarif",
    "render_text",
]
