"""Static analysis over the security-typed language.

The type system (Fig. 4) stops at the first violation; this package turns
it into a multi-pass *lint engine* that reports every finding in one run:

* :mod:`.diagnostics` -- the :class:`Diagnostic` model: stable ``TL0xx``
  rule codes, severities, source spans, optional fix-its, flow paths;
* :mod:`.rules` -- the rule registry (catalog in ``docs/ANALYSIS.md``);
* :mod:`.collector` -- an error-recovery driver around
  :class:`repro.typesystem.typing.TypeChecker` that records each failed
  side condition and continues with the rule's natural recovery label;
* :mod:`.cfg` -- the control-flow graph builder (basic blocks with spans,
  branch/loop/mitigate edges, constant-pruned reachability);
* :mod:`.dataflow` -- a generic forward/backward worklist solver with
  reaching definitions, live variables, and constant propagation;
* :mod:`.flows` -- the timing-dependence graph (which sources influence
  each command's start time, mirroring T-ASGN/T-IF/T-WHILE) and the
  source->sink path explanations behind ``repro lint --explain``;
* :mod:`.lints` -- timing-channel lints beyond the type system
  (secret-dependent sleeps, degenerate or redundant mitigations, and the
  dataflow-backed TL017-TL020);
* :mod:`.cost` -- the static cycle-cost analyzer: interval bounds
  ``[lo, hi]`` per command/region/mitigate under per-hardware cost
  contracts, the TL021-TL025 inputs, and the profiler soundness
  cross-check behind ``repro cost``;
* :mod:`.audit` -- the static Theorem 2 leakage audit per mitigate site,
  with reachability-tightened vs. syntactic bounds;
* :mod:`.quantify` -- the quantitative leakage solver: a path-sensitive
  census of timing-equivalence classes per hardware model (channel
  capacity in bits, the TL026-TL028 inputs);
* :mod:`.synthesize` -- mitigation-placement synthesis
  (``repro tune``): branch-and-bound over placement x scheme x budgets
  under a bits budget;
* :mod:`.render` -- human text (with carets), JSON, and SARIF 2.1.0
  (codeFlows, relatedLocations, partialFingerprints);
* :mod:`.engine` -- the driver tying it together (``repro lint``).
"""

from .audit import LeakageAudit, MitigateSite, audit_leakage
from .cost import CostReport, check_corpus, compute_cost, replay_program
from .cfg import CFG, build_cfg, cfg_to_dot, reachable_commands
from .collector import CollectingTypeChecker, collect_typing_diagnostics
from .dataflow import (
    ConstantPropagation,
    LiveVariables,
    ReachingDefinitions,
    Solution,
    solve,
)
from .diagnostics import Diagnostic, FlowStep, Severity
from .engine import LintOptions, LintResult, analyze_program, analyze_source
from .flows import (
    FlowExplainer,
    TimingDependenceGraph,
    build_tdg,
    tdg_to_dot,
)
from .quantify import (
    QuantifyReport,
    SiteQuant,
    TimingClass,
    quantify,
    quantify_all,
)
from .render import model_rows, render_json, render_sarif, render_text
from .rules import RULES, Rule
from .synthesize import Candidate, TuneResult, synthesize

__all__ = [
    "CFG",
    "Candidate",
    "CostReport",
    "CollectingTypeChecker",
    "ConstantPropagation",
    "Diagnostic",
    "FlowExplainer",
    "FlowStep",
    "LeakageAudit",
    "LintOptions",
    "LintResult",
    "LiveVariables",
    "MitigateSite",
    "QuantifyReport",
    "RULES",
    "ReachingDefinitions",
    "Rule",
    "Severity",
    "SiteQuant",
    "Solution",
    "TimingClass",
    "TimingDependenceGraph",
    "TuneResult",
    "analyze_program",
    "analyze_source",
    "audit_leakage",
    "build_cfg",
    "build_tdg",
    "cfg_to_dot",
    "check_corpus",
    "collect_typing_diagnostics",
    "compute_cost",
    "model_rows",
    "quantify",
    "quantify_all",
    "reachable_commands",
    "render_json",
    "render_sarif",
    "render_text",
    "replay_program",
    "solve",
    "synthesize",
    "tdg_to_dot",
]
