"""Timing-channel lints beyond the Fig. 4 type system (TL010-TL016).

These rules flag programs that *typecheck* but spend the Theorem 2 leakage
budget badly (redundant or useless mitigations, degenerate budgets), leak
through channels the paper calls out directly (secret-dependent sleeps,
secret-guarded loops), or contain dead weight (unused variables,
unreachable commands).  Each rule is a generator over a shared
:class:`LintContext`; registration happens in :data:`LINT_PASSES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..lang import ast
from ..lang.pretty import pretty, pretty_expr
from ..lattice import Lattice
from ..semantics.core import _apply as _apply_binop
from ..typesystem.environment import SecurityEnvironment
from ..typesystem.typing import TypingInfo
from .cfg import CFG
from .diagnostics import Diagnostic
from .flows import TimingDependenceGraph
from .rules import RULES


@dataclass
class LintContext:
    """Everything a lint pass may consult.

    The dataflow facts (``cfg``, ``constants``, ``reachable``, ``tdg``)
    are populated by the engine; the TL017-TL020 passes skip themselves
    when they are absent so the syntactic passes keep working standalone.
    """

    program: ast.Command
    gamma: SecurityEnvironment
    lattice: Lattice
    typing: TypingInfo
    #: Control-flow graph of the program (:mod:`repro.analysis.cfg`).
    cfg: Optional[CFG] = field(default=None)
    #: Constant-propagation :class:`~repro.analysis.dataflow.Solution`.
    constants: Optional[object] = field(default=None)
    #: node_ids reachable under constant-pruned control flow.
    reachable: Optional[FrozenSet[int]] = field(default=None)
    #: Timing-dependence graph (:mod:`repro.analysis.flows`).
    tdg: Optional[TimingDependenceGraph] = field(default=None)


def _diag(code: str, message: str, cmd: ast.LabeledCommand,
          fix: Optional[str] = None) -> Diagnostic:
    rule = RULES[code]
    return Diagnostic(
        code=code,
        message=message,
        severity=rule.severity,
        span=cmd.span,
        node_id=cmd.node_id,
        rule=rule.name,
        fix=fix,
    )


def const_value(expr: ast.Expr) -> Optional[int]:
    """Evaluate a constant expression under the language's own operator
    semantics (shared with the interpreter), or None if it reads memory."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.UnOp):
        v = const_value(expr.operand)
        if v is None:
            return None
        return -v if expr.op == "-" else int(v == 0)
    if isinstance(expr, ast.BinOp):
        left = const_value(expr.left)
        right = const_value(expr.right)
        if left is None or right is None:
            return None
        return _apply_binop(expr.op, left, right)
    return None


# -- TL010: secret-dependent sleep -------------------------------------------


def lint_secret_sleep(ctx: LintContext) -> Iterator[Diagnostic]:
    bottom = ctx.lattice.bottom
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Sleep):
            continue
        label = ctx.gamma.label_of_expr(cmd.duration)
        if label == bottom:
            continue
        fix = (
            f"mitigate(1, {label.name}) {{ {pretty(cmd)} }}"
        )
        yield _diag(
            "TL010",
            f"sleep duration {pretty_expr(cmd.duration)!r} is at {label}: "
            "the suspension time directly reveals it to a timing observer; "
            "mitigate the sleep or make the duration public",
            cmd,
            fix=fix,
        )


# -- TL011: degenerate mitigate budget ---------------------------------------


def lint_degenerate_budget(ctx: LintContext) -> Iterator[Diagnostic]:
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        value = const_value(cmd.budget)
        if value is None or value > 0:
            continue
        fixed = ast.Mitigate(
            budget=ast.IntLit(1), level=cmd.level, body=cmd.body,
            mit_id=None if cmd.auto_id else cmd.mit_id,
            read_label=cmd.read_label, write_label=cmd.write_label,
        )
        yield _diag(
            "TL011",
            f"mitigate budget is constantly {value}: the initial "
            "prediction can never be met, so the first epoch is missed "
            "immediately and one doubling of the Miss counter is wasted",
            cmd,
            fix=pretty(fixed),
        )


# -- TL012: redundant nested mitigate ----------------------------------------


def lint_redundant_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    def walk(cmd: ast.Command,
             enclosing: Tuple[ast.Mitigate, ...]) -> Iterator[Diagnostic]:
        if isinstance(cmd, ast.Mitigate):
            for outer in enclosing:
                if cmd.level.flows_to(outer.level):
                    yield _diag(
                        "TL012",
                        f"mitigate at level {cmd.level} is nested inside a "
                        f"mitigate at level {outer.level} that already "
                        "bounds it; the inner command only inflates the "
                        "Theorem 2 site count K (|L^|*log(K+1)*(1+log T)) "
                        "without tightening the bound",
                        cmd,
                    )
                    break
            enclosing = enclosing + (cmd,)
        for sub in cmd.subcommands():
            yield from walk(sub, enclosing)

    yield from walk(ctx.program, ())


# -- TL013: secret-guarded while loop ----------------------------------------


def lint_secret_guarded_loop(ctx: LintContext) -> Iterator[Diagnostic]:
    bottom = ctx.lattice.bottom
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.While):
            continue
        label = ctx.gamma.label_of_expr(cmd.cond)
        if label == bottom:
            continue
        yield _diag(
            "TL013",
            f"while guard {pretty_expr(cmd.cond)!r} is at {label}: the "
            "iteration count -- and therefore the loop's timing variation "
            "-- is unbounded in the secret; any enclosing mitigate must "
            "absorb it with unbounded padding",
            cmd,
        )


# -- TL014: useless mitigate --------------------------------------------------


def lint_useless_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    join = ctx.lattice.join
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        body_end = ctx.typing.mitigate_body_end.get(cmd.mit_id)
        node_ctx = ctx.typing.node_contexts.get(cmd.node_id)
        if body_end is None or node_ctx is None or cmd.read_label is None:
            continue
        le = ctx.gamma.label_of_expr(cmd.budget)
        body_start = join(node_ctx.start, le, cmd.read_label)
        if body_end.flows_to(body_start):
            yield _diag(
                "TL014",
                f"mitigate body's timing end-label {body_end} already "
                f"flows to its start context {body_start}: the body adds "
                "no timing information above what the context knows, so "
                "the padding controls nothing (remove the mitigate, or "
                "move it around the actually timing-variable code)",
                cmd,
                fix=pretty(cmd.body),
            )


# -- TL015: unused variable ----------------------------------------------------


def lint_unused_variable(ctx: LintContext) -> Iterator[Diagnostic]:
    reads: set = set()
    writes: Dict[str, ast.LabeledCommand] = {}
    for cmd in ctx.program.walk():
        if isinstance(cmd, ast.Assign):
            reads |= cmd.expr.variables()
            writes.setdefault(cmd.target, cmd)
        elif isinstance(cmd, ast.ArrayAssign):
            reads |= cmd.index.variables() | cmd.expr.variables()
            writes.setdefault(cmd.array, cmd)
        elif isinstance(cmd, (ast.If, ast.While)):
            reads |= cmd.cond.variables()
        elif isinstance(cmd, ast.Sleep):
            reads |= cmd.duration.variables()
        elif isinstance(cmd, ast.Mitigate):
            reads |= cmd.budget.variables()
    for name in sorted(set(writes) - reads):
        yield _diag(
            "TL015",
            f"variable {name!r} is assigned but never read (if it is an "
            "output observed outside the program, ignore this)",
            writes[name],
        )


# -- TL016: unreachable code ---------------------------------------------------


def _first_labeled(cmd: ast.Command) -> ast.LabeledCommand:
    for sub in cmd.walk():
        if isinstance(sub, ast.LabeledCommand):
            return sub
    raise TypeError("command tree with no labeled command")


def lint_unreachable(ctx: LintContext) -> Iterator[Diagnostic]:
    for cmd in ctx.program.walk():
        if isinstance(cmd, ast.If):
            value = const_value(cmd.cond)
            if value is None:
                continue
            dead = cmd.else_branch if value else cmd.then_branch
            which = "else" if value else "then"
            yield _diag(
                "TL016",
                f"if condition is constantly {value}; the {which} branch "
                "is unreachable",
                _first_labeled(dead),
            )
        elif isinstance(cmd, ast.While):
            value = const_value(cmd.cond)
            if value is None:
                continue
            if value == 0:
                yield _diag(
                    "TL016",
                    "while guard is constantly 0; the loop body is "
                    "unreachable",
                    _first_labeled(cmd.body),
                )
            else:
                yield _diag(
                    "TL016",
                    f"while guard is constantly {value}; the loop never "
                    "terminates and everything after it is unreachable",
                    cmd,
                )


# -- TL017: dead mitigate (dataflow-backed) ------------------------------------


def lint_dead_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.tdg is None or ctx.reachable is None:
        return
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        if cmd.node_id not in ctx.reachable:
            continue  # TL020's territory
        body_varies = any(
            sub.node_id in ctx.reachable
            and ctx.tdg.contributes_timing(sub.node_id)
            for sub in cmd.body.walk()
            if isinstance(sub, ast.LabeledCommand)
        )
        if body_varies:
            continue
        yield _diag(
            "TL017",
            "no reachable command inside this mitigate has secret-"
            "dependent timing: the padding bounds nothing, but the site "
            "still counts toward the Theorem 2 site count K (remove it, "
            "or move it around the actually timing-variable code)",
            cmd,
            fix=pretty(cmd.body),
        )


# -- TL018: constant secret branch (dataflow-backed) ---------------------------


def lint_constant_secret_branch(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.constants is None or ctx.reachable is None:
        return
    from .cfg import _guard_value

    bottom = ctx.lattice.bottom
    for cmd in ctx.program.walk():
        if not isinstance(cmd, (ast.If, ast.While)):
            continue
        if cmd.node_id not in ctx.reachable:
            continue
        label = ctx.gamma.label_of_expr(cmd.cond)
        if label == bottom:
            continue  # a public guard is TL016's (syntactic) territory
        if const_value(cmd.cond) is not None:
            continue  # syntactically constant: already TL016
        value = _guard_value(cmd, ctx.constants)
        if value is None:
            continue
        kind = "while guard" if isinstance(cmd, ast.While) else "if guard"
        yield _diag(
            "TL018",
            f"{kind} {pretty_expr(cmd.cond)!r} reads {label}-level data "
            f"but constant propagation proves it is always {value}: no "
            "information actually flows, yet the branch raises the pc and "
            "timing labels of everything under it",
            cmd,
        )


# -- TL019: shadowed mitigate (dataflow-backed) --------------------------------


def lint_shadowed_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    def walk(cmd: ast.Command,
             enclosing: Tuple[ast.Mitigate, ...]) -> Iterator[Diagnostic]:
        if isinstance(cmd, ast.Mitigate):
            body_end = ctx.typing.mitigate_body_end.get(cmd.mit_id)
            for outer in enclosing:
                if cmd.level.flows_to(outer.level):
                    break  # TL012 already reports level-subsumed nesting
                if body_end is not None and body_end.flows_to(outer.level):
                    yield _diag(
                        "TL019",
                        f"mitigate declares level {cmd.level}, but its "
                        f"body's actual timing end-label {body_end} is "
                        f"already bounded by the enclosing mitigate at "
                        f"{outer.level}: the inner site is shadowed and "
                        "only inflates the Theorem 2 site count K "
                        "(tighten the declared level or drop the site)",
                        cmd,
                    )
                    break
            enclosing = enclosing + (cmd,)
        for sub in cmd.subcommands():
            yield from walk(sub, enclosing)

    yield from walk(ctx.program, ())


# -- TL020: unreachable mitigate (dataflow-backed) -----------------------------


def lint_unreachable_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.reachable is None:
        return
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        if cmd.node_id in ctx.reachable:
            continue
        yield _diag(
            "TL020",
            "this mitigate site is unreachable (a provably-constant guard "
            "or a non-terminating loop cuts it off): it can never pad, "
            "but a syntactic Theorem 2 audit would still count it "
            "toward K",
            cmd,
        )


#: Every AST lint pass, in catalog order.
LINT_PASSES: Tuple[Callable[[LintContext], Iterator[Diagnostic]], ...] = (
    lint_secret_sleep,
    lint_degenerate_budget,
    lint_redundant_mitigate,
    lint_secret_guarded_loop,
    lint_useless_mitigate,
    lint_unused_variable,
    lint_unreachable,
    lint_dead_mitigate,
    lint_constant_secret_branch,
    lint_shadowed_mitigate,
    lint_unreachable_mitigate,
)


def run_lints(ctx: LintContext) -> List[Diagnostic]:
    """Run every registered lint pass over the program."""
    out: List[Diagnostic] = []
    for lint in LINT_PASSES:
        out.extend(lint(ctx))
    return out
