"""Timing-channel lints beyond the Fig. 4 type system (TL010-TL016).

These rules flag programs that *typecheck* but spend the Theorem 2 leakage
budget badly (redundant or useless mitigations, degenerate budgets), leak
through channels the paper calls out directly (secret-dependent sleeps,
secret-guarded loops), or contain dead weight (unused variables,
unreachable commands).  Each rule is a generator over a shared
:class:`LintContext`; registration happens in :data:`LINT_PASSES`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..hardware.costmodel import CacheGeometry
from ..lang import ast
from ..lang.pretty import pretty, pretty_expr
from ..lattice import Lattice
from ..machine.layout import WORD_BYTES
from ..semantics.core import _apply as _apply_binop
from ..semantics.mitigation import make_scheme
from ..typesystem.environment import SecurityEnvironment
from ..typesystem.typing import TypingInfo
from .cfg import CFG
from .cost import CostReport
from .diagnostics import Diagnostic
from .flows import TimingDependenceGraph
from .quantify import QuantifyReport, deadline_span
from .rules import RULES


@dataclass
class LintContext:
    """Everything a lint pass may consult.

    The dataflow facts (``cfg``, ``constants``, ``reachable``, ``tdg``)
    are populated by the engine; the TL017-TL020 passes skip themselves
    when they are absent so the syntactic passes keep working standalone.
    """

    program: ast.Command
    gamma: SecurityEnvironment
    lattice: Lattice
    typing: TypingInfo
    #: Control-flow graph of the program (:mod:`repro.analysis.cfg`).
    cfg: Optional[CFG] = field(default=None)
    #: Constant-propagation :class:`~repro.analysis.dataflow.Solution`.
    constants: Optional[object] = field(default=None)
    #: node_ids reachable under constant-pruned control flow.
    reachable: Optional[FrozenSet[int]] = field(default=None)
    #: Timing-dependence graph (:mod:`repro.analysis.flows`).
    tdg: Optional[TimingDependenceGraph] = field(default=None)
    #: Static cost report (:mod:`repro.analysis.cost`), computed on the
    #: exact ``null`` contract so the TL021-TL024 comparisons are
    #: deterministic point facts rather than model-dependent envelopes.
    cost: Optional[CostReport] = field(default=None)
    #: L1-data geometry for the TL025 set-straddle check.
    geometry: Optional[CacheGeometry] = field(default=None)
    #: Timing-equivalence-class censuses keyed by hardware model
    #: (:mod:`repro.analysis.quantify`).  The engine always provides the
    #: ``null`` census when the TL027/TL028 passes are wanted, and every
    #: registry model when a ``// budget:`` directive asks for TL026.
    quantify: Optional[Dict[str, "QuantifyReport"]] = field(default=None)
    #: The ``// budget:`` directive's bits bound, when declared.
    bits_budget: Optional[float] = field(default=None)


def _diag(code: str, message: str, cmd: ast.LabeledCommand,
          fix: Optional[str] = None) -> Diagnostic:
    rule = RULES[code]
    return Diagnostic(
        code=code,
        message=message,
        severity=rule.severity,
        span=cmd.span,
        node_id=cmd.node_id,
        rule=rule.name,
        fix=fix,
    )


def const_value(expr: ast.Expr) -> Optional[int]:
    """Evaluate a constant expression under the language's own operator
    semantics (shared with the interpreter), or None if it reads memory."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.UnOp):
        v = const_value(expr.operand)
        if v is None:
            return None
        return -v if expr.op == "-" else int(v == 0)
    if isinstance(expr, ast.BinOp):
        left = const_value(expr.left)
        right = const_value(expr.right)
        if left is None or right is None:
            return None
        return _apply_binop(expr.op, left, right)
    return None


# -- TL010: secret-dependent sleep -------------------------------------------


def lint_secret_sleep(ctx: LintContext) -> Iterator[Diagnostic]:
    bottom = ctx.lattice.bottom
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Sleep):
            continue
        label = ctx.gamma.label_of_expr(cmd.duration)
        if label == bottom:
            continue
        fix = (
            f"mitigate(1, {label.name}) {{ {pretty(cmd)} }}"
        )
        yield _diag(
            "TL010",
            f"sleep duration {pretty_expr(cmd.duration)!r} is at {label}: "
            "the suspension time directly reveals it to a timing observer; "
            "mitigate the sleep or make the duration public",
            cmd,
            fix=fix,
        )


# -- TL011: degenerate mitigate budget ---------------------------------------


def lint_degenerate_budget(ctx: LintContext) -> Iterator[Diagnostic]:
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        value = const_value(cmd.budget)
        if value is None or value > 0:
            continue
        fixed = ast.Mitigate(
            budget=ast.IntLit(1), level=cmd.level, body=cmd.body,
            mit_id=None if cmd.auto_id else cmd.mit_id,
            read_label=cmd.read_label, write_label=cmd.write_label,
        )
        yield _diag(
            "TL011",
            f"mitigate budget is constantly {value}: the initial "
            "prediction can never be met, so the first epoch is missed "
            "immediately and one doubling of the Miss counter is wasted",
            cmd,
            fix=pretty(fixed),
        )


# -- TL012: redundant nested mitigate ----------------------------------------


def lint_redundant_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    def walk(cmd: ast.Command,
             enclosing: Tuple[ast.Mitigate, ...]) -> Iterator[Diagnostic]:
        if isinstance(cmd, ast.Mitigate):
            for outer in enclosing:
                if cmd.level.flows_to(outer.level):
                    yield _diag(
                        "TL012",
                        f"mitigate at level {cmd.level} is nested inside a "
                        f"mitigate at level {outer.level} that already "
                        "bounds it; the inner command only inflates the "
                        "Theorem 2 site count K (|L^|*log(K+1)*(1+log T)) "
                        "without tightening the bound",
                        cmd,
                    )
                    break
            enclosing = enclosing + (cmd,)
        for sub in cmd.subcommands():
            yield from walk(sub, enclosing)

    yield from walk(ctx.program, ())


# -- TL013: secret-guarded while loop ----------------------------------------


def lint_secret_guarded_loop(ctx: LintContext) -> Iterator[Diagnostic]:
    bottom = ctx.lattice.bottom
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.While):
            continue
        label = ctx.gamma.label_of_expr(cmd.cond)
        if label == bottom:
            continue
        yield _diag(
            "TL013",
            f"while guard {pretty_expr(cmd.cond)!r} is at {label}: the "
            "iteration count -- and therefore the loop's timing variation "
            "-- is unbounded in the secret; any enclosing mitigate must "
            "absorb it with unbounded padding",
            cmd,
        )


# -- TL014: useless mitigate --------------------------------------------------


def lint_useless_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    join = ctx.lattice.join
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        body_end = ctx.typing.mitigate_body_end.get(cmd.mit_id)
        node_ctx = ctx.typing.node_contexts.get(cmd.node_id)
        if body_end is None or node_ctx is None or cmd.read_label is None:
            continue
        le = ctx.gamma.label_of_expr(cmd.budget)
        body_start = join(node_ctx.start, le, cmd.read_label)
        if body_end.flows_to(body_start):
            yield _diag(
                "TL014",
                f"mitigate body's timing end-label {body_end} already "
                f"flows to its start context {body_start}: the body adds "
                "no timing information above what the context knows, so "
                "the padding controls nothing (remove the mitigate, or "
                "move it around the actually timing-variable code)",
                cmd,
                fix=pretty(cmd.body),
            )


# -- TL015: unused variable ----------------------------------------------------


def lint_unused_variable(ctx: LintContext) -> Iterator[Diagnostic]:
    reads: set = set()
    writes: Dict[str, ast.LabeledCommand] = {}
    for cmd in ctx.program.walk():
        if isinstance(cmd, ast.Assign):
            reads |= cmd.expr.variables()
            writes.setdefault(cmd.target, cmd)
        elif isinstance(cmd, ast.ArrayAssign):
            reads |= cmd.index.variables() | cmd.expr.variables()
            writes.setdefault(cmd.array, cmd)
        elif isinstance(cmd, (ast.If, ast.While)):
            reads |= cmd.cond.variables()
        elif isinstance(cmd, ast.Sleep):
            reads |= cmd.duration.variables()
        elif isinstance(cmd, ast.Mitigate):
            reads |= cmd.budget.variables()
    for name in sorted(set(writes) - reads):
        yield _diag(
            "TL015",
            f"variable {name!r} is assigned but never read (if it is an "
            "output observed outside the program, ignore this)",
            writes[name],
        )


# -- TL016: unreachable code ---------------------------------------------------


def _first_labeled(cmd: ast.Command) -> ast.LabeledCommand:
    for sub in cmd.walk():
        if isinstance(sub, ast.LabeledCommand):
            return sub
    raise TypeError("command tree with no labeled command")


def lint_unreachable(ctx: LintContext) -> Iterator[Diagnostic]:
    for cmd in ctx.program.walk():
        if isinstance(cmd, ast.If):
            value = const_value(cmd.cond)
            if value is None:
                continue
            dead = cmd.else_branch if value else cmd.then_branch
            which = "else" if value else "then"
            yield _diag(
                "TL016",
                f"if condition is constantly {value}; the {which} branch "
                "is unreachable",
                _first_labeled(dead),
            )
        elif isinstance(cmd, ast.While):
            value = const_value(cmd.cond)
            if value is None:
                continue
            if value == 0:
                yield _diag(
                    "TL016",
                    "while guard is constantly 0; the loop body is "
                    "unreachable",
                    _first_labeled(cmd.body),
                )
            else:
                yield _diag(
                    "TL016",
                    f"while guard is constantly {value}; the loop never "
                    "terminates and everything after it is unreachable",
                    cmd,
                )


# -- TL017: dead mitigate (dataflow-backed) ------------------------------------


def lint_dead_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.tdg is None or ctx.reachable is None:
        return
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        if cmd.node_id not in ctx.reachable:
            continue  # TL020's territory
        body_varies = any(
            sub.node_id in ctx.reachable
            and ctx.tdg.contributes_timing(sub.node_id)
            for sub in cmd.body.walk()
            if isinstance(sub, ast.LabeledCommand)
        )
        if body_varies:
            continue
        yield _diag(
            "TL017",
            "no reachable command inside this mitigate has secret-"
            "dependent timing: the padding bounds nothing, but the site "
            "still counts toward the Theorem 2 site count K (remove it, "
            "or move it around the actually timing-variable code)",
            cmd,
            fix=pretty(cmd.body),
        )


# -- TL018: constant secret branch (dataflow-backed) ---------------------------


def lint_constant_secret_branch(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.constants is None or ctx.reachable is None:
        return
    from .cfg import _guard_value

    bottom = ctx.lattice.bottom
    for cmd in ctx.program.walk():
        if not isinstance(cmd, (ast.If, ast.While)):
            continue
        if cmd.node_id not in ctx.reachable:
            continue
        label = ctx.gamma.label_of_expr(cmd.cond)
        if label == bottom:
            continue  # a public guard is TL016's (syntactic) territory
        if const_value(cmd.cond) is not None:
            continue  # syntactically constant: already TL016
        value = _guard_value(cmd, ctx.constants)
        if value is None:
            continue
        kind = "while guard" if isinstance(cmd, ast.While) else "if guard"
        yield _diag(
            "TL018",
            f"{kind} {pretty_expr(cmd.cond)!r} reads {label}-level data "
            f"but constant propagation proves it is always {value}: no "
            "information actually flows, yet the branch raises the pc and "
            "timing labels of everything under it",
            cmd,
        )


# -- TL019: shadowed mitigate (dataflow-backed) --------------------------------


def lint_shadowed_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    def walk(cmd: ast.Command,
             enclosing: Tuple[ast.Mitigate, ...]) -> Iterator[Diagnostic]:
        if isinstance(cmd, ast.Mitigate):
            body_end = ctx.typing.mitigate_body_end.get(cmd.mit_id)
            for outer in enclosing:
                if cmd.level.flows_to(outer.level):
                    break  # TL012 already reports level-subsumed nesting
                if body_end is not None and body_end.flows_to(outer.level):
                    yield _diag(
                        "TL019",
                        f"mitigate declares level {cmd.level}, but its "
                        f"body's actual timing end-label {body_end} is "
                        f"already bounded by the enclosing mitigate at "
                        f"{outer.level}: the inner site is shadowed and "
                        "only inflates the Theorem 2 site count K "
                        "(tighten the declared level or drop the site)",
                        cmd,
                    )
                    break
            enclosing = enclosing + (cmd,)
        for sub in cmd.subcommands():
            yield from walk(sub, enclosing)

    yield from walk(ctx.program, ())


# -- TL020: unreachable mitigate (dataflow-backed) -----------------------------


def lint_unreachable_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.reachable is None:
        return
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        if cmd.node_id in ctx.reachable:
            continue
        yield _diag(
            "TL020",
            "this mitigate site is unreachable (a provably-constant guard "
            "or a non-terminating loop cuts it off): it can never pad, "
            "but a syntactic Theorem 2 audit would still count it "
            "toward K",
            cmd,
        )


# -- TL021: unbalanced secret branch (cost-backed) -----------------------------


def lint_unbalanced_secret_branch(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.cost is None:
        return
    bottom = ctx.lattice.bottom

    def walk(cmd: ast.Command, absorbing: Tuple) -> Iterator[Diagnostic]:
        if isinstance(cmd, ast.If):
            site = ctx.cost.branches.get(cmd.node_id)
            label = ctx.gamma.label_of_expr(cmd.cond)
            if (site is not None and label != bottom
                    and not any(label.flows_to(lv) for lv in absorbing)
                    and site.then_interval.disjoint_from(
                        site.else_interval)):
                delta = site.then_interval.gap(site.else_interval)
                yield _diag(
                    "TL021",
                    f"branch guard {pretty_expr(cmd.cond)!r} is at {label} "
                    f"and the arms' static cycle costs are disjoint (then "
                    f"{site.then_interval}, else {site.else_interval}, at "
                    f"least {delta} cycle{'s' if delta != 1 else ''} "
                    "apart): the arm taken is readable off the clock; "
                    "balance the arms or wrap the branch in a mitigate at "
                    "the guard's level",
                    cmd,
                )
        if isinstance(cmd, ast.Mitigate):
            absorbing = absorbing + (cmd.level,)
        for sub in cmd.subcommands():
            yield from walk(sub, absorbing)

    yield from walk(ctx.program, ())


# -- TL022/TL023: mitigate quantum vs. static body cost ------------------------


def _rebudgeted(cmd: ast.Mitigate, budget: int) -> ast.Mitigate:
    return ast.Mitigate(
        budget=ast.IntLit(budget), level=cmd.level, body=cmd.body,
        mit_id=None if cmd.auto_id else cmd.mit_id,
        read_label=cmd.read_label, write_label=cmd.write_label,
    )


def lint_mitigate_quantum_insufficient(
    ctx: LintContext,
) -> Iterator[Diagnostic]:
    if ctx.cost is None:
        return
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        site = ctx.cost.mitigates.get(cmd.mit_id)
        if site is None or site.budget is None or site.budget <= 0:
            continue  # non-constant budgets; <= 0 is TL011's territory
        prediction = site.initial_prediction
        if site.interval.lo <= prediction:
            continue
        yield _diag(
            "TL022",
            f"mitigate body statically costs {site.interval} cycles but "
            f"the scheme's initial prediction is {prediction}: the first "
            "epoch always misses its deadline and doubles, spending one "
            "Miss transition of the Theorem 2 budget by construction "
            "(raise the budget to at least the body's lower bound "
            f"{site.interval.lo})",
            cmd,
            fix=pretty(_rebudgeted(cmd, site.interval.lo)),
        )


def lint_overprovisioned_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.cost is None:
        return
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        site = ctx.cost.mitigates.get(cmd.mit_id)
        if site is None or site.budget is None or site.budget <= 0:
            continue
        hi = site.interval.hi
        if hi is None or hi <= 0:
            continue
        prediction = site.initial_prediction
        if prediction < 4 * hi:
            continue
        yield _diag(
            "TL023",
            f"mitigate budget {site.budget} is {prediction // hi}x the "
            f"body's static worst case {site.interval}: every epoch pads "
            f"to {prediction} cycles regardless of need, buying pure "
            "latency instead of fewer Miss transitions (a budget near "
            f"the upper bound {hi} gives the same Theorem 2 bound with "
            "far less padding)",
            cmd,
            fix=pretty(_rebudgeted(cmd, hi)),
        )


# -- TL024: unbounded loop cost under a secret context -------------------------


def lint_unbounded_secret_loop_cost(
    ctx: LintContext,
) -> Iterator[Diagnostic]:
    if ctx.cost is None:
        return
    bottom = ctx.lattice.bottom
    join = ctx.lattice.join

    def walk(cmd: ast.Command, pc) -> Iterator[Diagnostic]:
        if isinstance(cmd, ast.While):
            guard_label = ctx.gamma.label_of_expr(cmd.cond)
            loop = ctx.cost.loops.get(cmd.node_id)
            if (loop is not None and loop.widened
                    and pc != bottom and guard_label == bottom):
                yield _diag(
                    "TL024",
                    f"this loop's static cycle cost is {loop.interval} "
                    f"(no finite bound) and it runs under a {pc} control "
                    "context: whether the unbounded region executes at "
                    "all is secret, so the timing variation it induces "
                    "is unbounded in the secret (the guard itself is "
                    "public, so TL013 cannot see this)",
                    cmd,
                )
            yield from walk(cmd.body, join(pc, guard_label))
        elif isinstance(cmd, ast.If):
            inner = join(pc, ctx.gamma.label_of_expr(cmd.cond))
            yield from walk(cmd.then_branch, inner)
            yield from walk(cmd.else_branch, inner)
        else:
            for sub in cmd.subcommands():
                yield from walk(sub, pc)

    yield from walk(ctx.program, bottom)


# -- TL025: cost-divergent secret array access ---------------------------------


def _index_interval(expr: ast.Expr) -> Optional[Tuple[int, int]]:
    """Element-index bounds ``(lo, hi)``, or None when unbounded.

    Recognizes the masking idioms that bound an index without making it
    constant: ``e & mask`` and ``e % k``.
    """
    value = const_value(expr)
    if value is not None:
        return (value, value)
    if isinstance(expr, ast.BinOp) and expr.op == "&":
        mask = const_value(expr.right)
        if mask is None:
            mask = const_value(expr.left)
        if mask is not None and mask >= 0:
            return (0, mask)
    if isinstance(expr, ast.BinOp) and expr.op == "%":
        mod = const_value(expr.right)
        if mod:
            bound = abs(mod) - 1
            return (-bound, bound)
    return None


def _array_accesses(cmd: ast.LabeledCommand):
    """Yield ``(array, index_expr)`` for every data array access in one
    command, in evaluation order."""
    if isinstance(cmd, ast.Assign):
        exprs = (cmd.expr,)
    elif isinstance(cmd, ast.ArrayAssign):
        yield (cmd.array, cmd.index)
        exprs = (cmd.index, cmd.expr)
    elif isinstance(cmd, (ast.If, ast.While)):
        exprs = (cmd.cond,)
    elif isinstance(cmd, ast.Sleep):
        exprs = (cmd.duration,)
    elif isinstance(cmd, ast.Mitigate):
        exprs = (cmd.budget,)
    else:
        exprs = ()
    stack = list(exprs)
    while stack:
        expr = stack.pop()
        if isinstance(expr, ast.ArrayRead):
            yield (expr.array, expr.index)
        stack.extend(expr.children())


def lint_cost_divergent_array_access(
    ctx: LintContext,
) -> Iterator[Diagnostic]:
    if ctx.geometry is None or ctx.geometry.sets <= 1:
        return
    bottom = ctx.lattice.bottom
    per_block = max(ctx.geometry.block_bytes // WORD_BYTES, 1)
    seen = set()
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.LabeledCommand):
            continue
        for array, index in _array_accesses(cmd):
            label = ctx.gamma.label_of_expr(index)
            if label == bottom:
                continue
            bounds = _index_interval(index)
            if bounds is not None:
                width = bounds[1] - bounds[0] + 1
                if width <= per_block:
                    # May sit inside a single cache block: one set, one
                    # hit/miss cost, nothing for the clock to resolve.
                    continue
                blocks = -(-width // per_block)
                detail = (
                    f"its index range [{bounds[0]}, {bounds[1]}] spans up "
                    f"to {min(blocks, ctx.geometry.sets)} cache sets"
                )
            else:
                detail = (
                    "its index is statically unbounded, reaching "
                    "arbitrarily many cache sets"
                )
            key = (cmd.node_id, array)
            if key in seen:
                continue
            seen.add(key)
            yield _diag(
                "TL025",
                f"array {array!r} is indexed by {label}-level expression "
                f"{pretty_expr(index)!r} and {detail} "
                f"({ctx.geometry.sets} sets of {ctx.geometry.block_bytes}"
                "-byte blocks): which set the access touches, and so its "
                "hit/miss timing, is a function of the secret",
                cmd,
            )


# -- TL026-TL028: capacity-backed lints (quantitative census) ------------------


def _anchor_for(ctx: LintContext, node_id: int) -> ast.LabeledCommand:
    """The command carrying ``node_id``, or the program's first labeled
    command as a fallback anchor."""
    first = None
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.LabeledCommand):
            continue
        if first is None:
            first = cmd
        if cmd.node_id == node_id:
            return cmd
    assert first is not None, "a parsed program has labeled commands"
    return first


def lint_leakage_exceeds_budget(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.bits_budget is None or not ctx.quantify:
        return
    violating = {
        model: report
        for model, report in ctx.quantify.items()
        if report.exceeds(ctx.bits_budget)
    }
    if not violating:
        return
    worst_model = max(
        violating,
        key=lambda m: (violating[m].saturated, violating[m].capacity_bits),
    )
    worst = violating[worst_model]
    anchor_id = (
        max(worst.forks, key=lambda f: f.bits).node_id
        if worst.forks else -1
    )
    capacity = (
        f"saturated (> {worst.capacity_bits:.2f} bits)" if worst.saturated
        else f"{worst.capacity_bits:.2f} bits"
    )
    others = sorted(set(violating) - {worst_model})
    also = f" (also violated on: {', '.join(others)})" if others else ""
    yield _diag(
        "TL026",
        f"declared budget is {ctx.bits_budget:g} bits but the timing-"
        f"equivalence-class census on the {worst_model!r} model is "
        f"{capacity}{also}; run `repro tune --bits-budget "
        f"{ctx.bits_budget:g}` to synthesize a compliant mitigation "
        "placement",
        _anchor_for(ctx, anchor_id),
    )


def _deadline_profile(scheme, budget: int, body, horizon: int):
    """``(classes, worst_padded)`` the scheme emits for a body interval
    under one initial budget (Miss counter entering at zero)."""
    m_lo, m_hi = deadline_span(scheme, budget, 0, body, horizon)
    return m_hi - m_lo + 1, scheme.predict(budget, m_hi)


def _cost_flagged(ctx: LintContext, mit_id: str) -> bool:
    """Is the site already claimed by the cost family (TL022/TL023)?
    Those rules speak to the same budget knob; the capacity-backed pair
    defers to them so one site gets one story."""
    if ctx.cost is None:
        return False
    site = ctx.cost.mitigates.get(mit_id)
    if site is None or site.budget is None or site.budget <= 0:
        return False
    prediction = site.initial_prediction
    if site.interval.lo > prediction:
        return True  # TL022 territory
    hi = site.interval.hi
    return hi is not None and hi > 0 and prediction >= 4 * hi


def lint_quantum_dominates_leakage(
    ctx: LintContext,
) -> Iterator[Diagnostic]:
    if not ctx.quantify:
        return
    report = ctx.quantify.get("null")
    if report is None:
        return
    scheme = make_scheme(report.scheme)
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        site = report.sites.get(cmd.mit_id)
        if (site is None or site.budget is None or site.budget <= 0
                or site.body.hi is None or site.deadline_classes <= 1):
            continue
        if _cost_flagged(ctx, cmd.mit_id):
            continue
        if site.deadline_bits < report.fork_bits:
            continue  # data-flow forks, not the quantum, drive capacity
        rebudget = site.body.hi + 1
        new_classes, new_padded = _deadline_profile(
            scheme, rebudget, site.body, report.horizon
        )
        if new_classes >= site.deadline_classes:
            continue
        yield _diag(
            "TL028",
            f"this mitigate's {report.scheme} deadline sequence quantizes "
            f"its body cost {site.body} into {site.deadline_classes} "
            f"observable padded durations ({site.deadline_bits:.2f} bits "
            "-- the dominant capacity contribution on the 'null' model); "
            f"an initial budget of {rebudget} covers the whole body in "
            f"{new_classes} deadline class"
            f"{'es' if new_classes != 1 else ''}, padding to {new_padded} "
            "cycles",
            cmd,
            fix=pretty(_rebudgeted(cmd, rebudget)),
        )


def lint_dominated_mitigate(ctx: LintContext) -> Iterator[Diagnostic]:
    if not ctx.quantify:
        return
    report = ctx.quantify.get("null")
    if report is None:
        return
    scheme = make_scheme(report.scheme)
    for cmd in ctx.program.walk():
        if not isinstance(cmd, ast.Mitigate):
            continue
        site = report.sites.get(cmd.mit_id)
        if (site is None or site.budget is None or site.budget <= 0
                or site.body.hi is None):
            continue
        if _cost_flagged(ctx, cmd.mit_id):
            continue
        cur_classes, cur_padded = _deadline_profile(
            scheme, site.budget, site.body, report.horizon
        )
        if cur_classes > 1:
            continue  # TL028's territory: the quantum creates classes
        rebudget = site.body.hi + 1
        new_classes, new_padded = _deadline_profile(
            scheme, rebudget, site.body, report.horizon
        )
        # "Dominated" means strictly cheaper at the *same* capacity, with
        # enough headroom (>2x padding) that the rewrite is worth taking;
        # TL023 separately owns the >=4x gross-overprovisioning band.
        if new_classes != cur_classes or cur_padded <= 2 * new_padded:
            continue
        yield _diag(
            "TL027",
            f"budget {site.budget} pads every epoch to {cur_padded} "
            f"cycles, but budget {rebudget} yields the exact same "
            f"deadline-class census ({new_classes} class"
            f"{'es' if new_classes != 1 else ''} on the 'null' model) "
            f"while padding only to {new_padded}: the written budget is "
            "dominated -- it buys latency, not capacity",
            cmd,
            fix=pretty(_rebudgeted(cmd, rebudget)),
        )


#: Every AST lint pass, in catalog order.
LINT_PASSES: Tuple[Callable[[LintContext], Iterator[Diagnostic]], ...] = (
    lint_secret_sleep,
    lint_degenerate_budget,
    lint_redundant_mitigate,
    lint_secret_guarded_loop,
    lint_useless_mitigate,
    lint_unused_variable,
    lint_unreachable,
    lint_dead_mitigate,
    lint_constant_secret_branch,
    lint_shadowed_mitigate,
    lint_unreachable_mitigate,
    lint_unbalanced_secret_branch,
    lint_mitigate_quantum_insufficient,
    lint_overprovisioned_mitigate,
    lint_unbounded_secret_loop_cost,
    lint_cost_divergent_array_access,
    lint_leakage_exceeds_budget,
    lint_quantum_dominates_leakage,
    lint_dominated_mitigate,
)


def run_lints(ctx: LintContext) -> List[Diagnostic]:
    """Run every registered lint pass over the program."""
    out: List[Diagnostic] = []
    for lint in LINT_PASSES:
        out.extend(lint(ctx))
    return out
