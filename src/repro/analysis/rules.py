"""The rule registry: every ``TL0xx`` code the lint engine can emit.

Codes are stable public API -- tools (SARIF consumers, CI gates, suppression
lists) key on them, so codes are never renumbered or reused.  TL001-TL009
are the Fig. 4 type-system rules surfaced by the error-recovery collector;
TL010+ are timing-channel lints that go beyond the type system.  The full
catalog with examples lives in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .diagnostics import Severity

#: Base URL of the rendered rule catalog; SARIF ``helpUri`` values are
#: anchors into it.  This is the *single source* -- every renderer
#: (SARIF, ``--list-rules``, docs tooling) derives per-rule URIs from
#: :attr:`Rule.help_uri` rather than rebuilding them.
RULE_HELP_BASE = "https://github.com/example/repro/blob/main/docs/ANALYSIS.md"


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    code: str
    name: str
    summary: str
    severity: Severity
    paper_ref: str

    @property
    def help_uri(self) -> str:
        """The docs/ANALYSIS.md catalog anchor for this rule."""
        return f"{RULE_HELP_BASE}#{self.code.lower()}-{self.name}"

    @property
    def sarif_level(self) -> str:
        """The SARIF ``defaultConfiguration.level`` for this rule."""
        return self.severity.sarif_level

    @property
    def full_description(self) -> str:
        """The SARIF ``fullDescription`` text."""
        return f"{self.summary} Paper reference: {self.paper_ref}."

    @property
    def help_text(self) -> str:
        """The SARIF ``help`` text."""
        return (
            f"Paper reference: {self.paper_ref}. "
            "See docs/ANALYSIS.md for the catalog."
        )


_RULES = (
    Rule("TL000", "syntax-error",
         "The program does not parse.",
         Severity.ERROR, "Fig. 1 grammar"),
    Rule("TL001", "explicit-flow",
         "An expression's value flows to a variable below its label.",
         Severity.ERROR, "Sec. 5.1, T-ASGN (value label)"),
    Rule("TL002", "implicit-flow",
         "A branch on confidential data assigns below the pc label.",
         Severity.ERROR, "Sec. 5.1, T-ASGN (pc label)"),
    Rule("TL003", "timing-flow",
         "Timing-tainted information flows into a lower assignment; the "
         "timing-variable code needs a mitigate command.",
         Severity.ERROR, "Sec. 5.1, T-ASGN (timing start-label)"),
    Rule("TL004", "write-label",
         "A command's context would imprint confidential control flow on "
         "machine-environment state below pc (pc must flow to lw).",
         Severity.ERROR, "Sec. 2.2 / Sec. 5.1, every rule's pc <= lw"),
    Rule("TL005", "mitigate-level",
         "A mitigate level fails to bound its body's timing end-label.",
         Severity.ERROR, "Sec. 5.1, T-MTG"),
    Rule("TL006", "array-index-leak",
         "An array index's label does not flow to the accessing command's "
         "write label; the element's address leaks into lower cache state.",
         Severity.ERROR, "array extension of Sec. 5.1"),
    Rule("TL007", "missing-label",
         "A command has no read/write timing labels and inference was off.",
         Severity.ERROR, "Sec. 2.2 (labels may be inferred)"),
    Rule("TL008", "cache-label",
         "Commodity hardware requires lr = lw on every command.",
         Severity.ERROR, "Sec. 8.1"),
    Rule("TL009", "unbound-variable",
         "A variable has no security label in Gamma; it was assumed public "
         "(bottom), which may mask real flows.",
         Severity.ERROR, "Sec. 5.1 (Gamma)"),
    Rule("TL010", "secret-sleep",
         "A sleep duration depends on confidential data; the suspension "
         "time is directly observable.",
         Severity.WARNING, "Sec. 3.2, T-SLEEP / Property 4"),
    Rule("TL011", "degenerate-budget",
         "A mitigate budget is constantly <= 0: the first epoch's "
         "prediction is missed immediately, wasting one doubling.",
         Severity.WARNING, "Sec. 6.2 (fast doubling)"),
    Rule("TL012", "redundant-mitigate",
         "A mitigate is nested inside another whose level already bounds "
         "it; it inflates the Theorem 2 site count K for no benefit.",
         Severity.WARNING, "Sec. 7, Theorem 2 (|L^|*log(K+1) term)"),
    Rule("TL013", "secret-guarded-loop",
         "A while guard depends on confidential data: iteration count, and "
         "thus timing variation, is unbounded.",
         Severity.WARNING, "Sec. 2.1 (RSA/login examples)"),
    Rule("TL014", "useless-mitigate",
         "A mitigate body's timing end-label already flows to its start "
         "context: the padding controls no additional information.",
         Severity.WARNING, "Sec. 7, Theorem 2 corollary"),
    Rule("TL015", "unused-variable",
         "A variable is assigned but never read.",
         Severity.INFO, "hygiene"),
    Rule("TL016", "unreachable-code",
         "A constant guard makes a branch or loop body unreachable (or a "
         "loop non-terminating).",
         Severity.WARNING, "hygiene"),
    Rule("TL017", "dead-mitigate",
         "A mitigate body contains no reachable command whose timing "
         "varies above the context; the site pads nothing yet still "
         "counts against the Theorem 2 site count K.",
         Severity.WARNING, "Sec. 7, Theorem 2 (dataflow-backed)"),
    Rule("TL018", "constant-secret-branch",
         "A guard reads confidential variables but is provably constant: "
         "no information actually flows, and the branch costs pc/timing "
         "label precision for nothing.",
         Severity.WARNING, "Sec. 5.1, T-IF (dataflow-backed)"),
    Rule("TL019", "shadowed-mitigate",
         "An inner mitigate's body variation is already bounded by an "
         "enclosing mitigate's level even though the levels are "
         "incomparable; the inner site is shadowed and only inflates K.",
         Severity.WARNING, "Sec. 7, Theorem 2 (dataflow-backed)"),
    Rule("TL020", "unreachable-mitigate",
         "A mitigate site is unreachable (dead branch or after a "
         "non-terminating loop); it can never pad, yet a syntactic audit "
         "would still count it toward K.",
         Severity.WARNING, "Sec. 7, Theorem 2 (dataflow-backed)"),
    Rule("TL021", "unbalanced-secret-branch",
         "A branch on confidential data has arms whose static cycle-cost "
         "intervals are disjoint: the arm taken is readable off the clock.",
         Severity.WARNING, "Sec. 2.1 (cost-backed)"),
    Rule("TL022", "mitigate-quantum-insufficient",
         "A mitigate body's static cycle cost always exceeds the scheme's "
         "initial prediction: the first epoch is guaranteed to miss and "
         "double, leaking one Miss transition by construction.",
         Severity.WARNING, "Sec. 6.2 (fast doubling, cost-backed)"),
    Rule("TL023", "overprovisioned-mitigate",
         "A mitigate budget is at least 4x the body's static worst-case "
         "cycle cost: every epoch pads to a quantum far beyond need, "
         "buying latency instead of fewer Miss transitions.",
         Severity.INFO, "Sec. 6.2 (prediction quantum, cost-backed)"),
    Rule("TL024", "unbounded-secret-loop-cost",
         "A loop whose static cycle cost is unbounded (⊤) executes under "
         "a confidential guard: whether the unbounded region runs at all "
         "is secret, so timing variation is unbounded too.",
         Severity.WARNING, "Sec. 2.1 / Sec. 5.1, T-WHILE (cost-backed)"),
    Rule("TL025", "cost-divergent-array-access",
         "A confidential array index can select addresses in different "
         "cache sets: the hit/miss cost interval straddles a set boundary, "
         "so the index imprints on observable access timing.",
         Severity.WARNING, "Sec. 2.1 (data-cache example, cost-backed)"),
    Rule("TL026", "leakage-exceeds-budget",
         "The program's timing-equivalence-class capacity exceeds its "
         "declared `// budget:` bits bound on at least one registry "
         "hardware model.",
         Severity.ERROR, "Sec. 7, Theorem 2 (capacity-backed)"),
    Rule("TL027", "dominated-mitigate",
         "A cheaper mitigate budget yields the exact same channel "
         "capacity: the written budget buys latency, not security "
         "(the fix-it carries the synthesized rewrite).",
         Severity.INFO, "Sec. 6.2 (prediction quantum, capacity-backed)"),
    Rule("TL028", "quantum-dominates-leakage",
         "A mitigate's deadline sequence -- not its body's data flow -- "
         "drives the channel capacity: rebudgeting the site collapses "
         "several observable deadlines into one.",
         Severity.WARNING, "Sec. 6.2 (S-UPDATE, capacity-backed)"),
)

#: Rule code -> :class:`Rule`, in catalog order.
RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULES}

#: The cost-backed family (static cycle-cost analyzer, `repro cost`).
COST_RULE_CODES = ("TL021", "TL022", "TL023", "TL024", "TL025")

#: The capacity-backed family (quantitative leakage census, `repro tune`).
LEAKAGE_RULE_CODES = ("TL026", "TL027", "TL028")

#: ``TypingError.kind`` -> rule code, for the single-code kinds.  The
#: ``"flow"`` kind is decomposed per failing source by the collector.
KIND_CODES: Dict[str, str] = {
    "write-label": "TL004",
    "mitigate-level": "TL005",
    "array-index": "TL006",
    "missing-label": "TL007",
    "cache-label": "TL008",
}
