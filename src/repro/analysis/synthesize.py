"""Mitigation-policy synthesis: the cheapest policy under a bits budget.

Given a program, a channel-capacity budget ``B`` (bits), and a set of
hardware models, this module searches mitigate **placement** x prediction
**scheme** x per-site **budgets** for the policy minimizing a static
padded-cost objective (worst-case padded cycles, from the quantitative
census in :mod:`repro.analysis.quantify`) subject to::

    capacity(model) <= B   for every requested model

following the shortest-path synthesis framing of Tizpaz-Niari et al.
(arXiv:1906.08957).  The search is a small branch-and-bound:

* three placement skeletons -- the program **as written**, the minimal
  **auto** placement (:func:`repro.typesystem.suggest.auto_mitigate`
  re-run over the mitigate-stripped program), and a **whole-program**
  wrap at lattice top;
* per-site budget options derived from the site's body interval across
  the requested models (tight constant deadline ``hi + 1``, its
  power-of-two quantization, the written budget; a quantum ladder for
  unbounded bodies);
* candidates are ordered cheapest-first and pruned against the incumbent
  objective and a per-combo capacity estimate before the full per-model
  census confirms them.

The winner is emitted as a rewritten TL program plus a recommended
service :class:`~repro.service.workload.WorkloadSpec` fragment
(quantized release policy, scheme, quantum) per tenant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.costmodel import Interval
from ..lang import ast
from ..lang.parser import parse
from ..lang.pretty import pretty
from ..lattice import Label
from ..semantics.mitigation import make_scheme
from ..typesystem.environment import SecurityEnvironment
from ..typesystem.errors import TypingError
from ..typesystem.inference import infer_labels
from ..typesystem.suggest import UnmitigatableError, auto_mitigate
from .audit import DEFAULT_HORIZON
from .quantify import QuantifyReport, deadline_span, quantify

#: Placement skeleton names, in deterministic search order.
PLACEMENTS = ("as-written", "auto", "whole-program")

#: Budget-option cap for unbounded bodies (quantum ladder rungs).
_LADDER_RUNGS = 6

#: Hard cap on budget combos per (placement, scheme) pair.
_MAX_COMBOS = 512


# ---------------------------------------------------------------------------
# Result model
# ---------------------------------------------------------------------------


@dataclass
class Candidate:
    """One evaluated policy."""

    placement: str
    scheme: str
    budgets: Tuple[int, ...]
    program: ast.Command
    source: str
    #: model -> capacity bits (saturated models report inf).
    capacity: Dict[str, float] = field(default_factory=dict)
    #: Worst-case padded cycles across models (None = unbounded).
    objective: Optional[int] = None
    feasible: bool = False
    #: Recommended service quantum (power of two covering the worst
    #: deadline; the gateway's quantized release policy aligns to it).
    quantum: int = 1
    reports: Dict[str, QuantifyReport] = field(default_factory=dict)

    @property
    def objective_key(self) -> Tuple:
        """Deterministic ordering: bounded objectives first, then
        placement/scheme/budget order."""
        return (
            self.objective is None,
            self.objective if self.objective is not None else 0,
            PLACEMENTS.index(self.placement),
            self.scheme,
            self.budgets,
        )

    def worst_capacity(self) -> Tuple[str, float]:
        model = max(self.capacity, key=lambda m: self.capacity[m])
        return model, self.capacity[model]

    def as_dict(self) -> dict:
        model, bits = (
            self.worst_capacity() if self.capacity else ("-", 0.0)
        )
        return {
            "placement": self.placement,
            "scheme": self.scheme,
            "budgets": list(self.budgets),
            "quantum": self.quantum,
            "objective": self.objective,
            "feasible": self.feasible,
            "capacity_bits": {
                name: (None if math.isinf(v) else round(v, 4))
                for name, v in sorted(self.capacity.items())
            },
            "worst_model": model,
            "worst_capacity_bits": (
                None if math.isinf(bits) else round(bits, 4)
            ),
            "program": self.source,
        }


@dataclass
class TuneResult:
    """The whole synthesis outcome (the ``repro.tune/1`` payload)."""

    bits_budget: float
    models: Tuple[str, ...]
    horizon: int
    baseline: Candidate
    best: Optional[Candidate]
    explored: int
    pruned: int
    skipped_placements: Dict[str, str] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return self.best is not None and self.best.feasible

    @property
    def improved(self) -> bool:
        """Does the winner strictly beat the baseline objective?"""
        if self.best is None or self.best.objective is None:
            return False
        if self.baseline.objective is None:
            return True
        return self.best.objective < self.baseline.objective

    def spec_fragment(
        self, tenants: Sequence[str] = ()
    ) -> dict:
        """A WorkloadSpec fragment carrying the recommended policy."""
        winner = self.best if self.best is not None else self.baseline
        fragment = {
            "policy": "quantized",
            "quantum": winner.quantum,
            "scheme": winner.scheme,
            "penalty": "local",
        }
        if tenants:
            fragment["tenants"] = [
                {
                    "name": name,
                    "config": {
                        "mitigate_budgets": list(winner.budgets),
                    },
                }
                for name in tenants
            ]
        return fragment

    def as_dict(self) -> dict:
        return {
            "schema": "repro.tune/1",
            "bits_budget": self.bits_budget,
            "models": list(self.models),
            "horizon": self.horizon,
            "feasible": self.feasible,
            "improved": self.improved,
            "baseline": self.baseline.as_dict(),
            "best": None if self.best is None else self.best.as_dict(),
            "spec": self.spec_fragment(),
            "search": {
                "explored": self.explored,
                "pruned": self.pruned,
                "skipped_placements": dict(
                    sorted(self.skipped_placements.items())
                ),
            },
        }


# ---------------------------------------------------------------------------
# Skeleton construction
# ---------------------------------------------------------------------------


def _clone(program: ast.Command,
           gamma: SecurityEnvironment) -> ast.Command:
    """A structural copy with fresh node ids and re-inferred labels."""
    clone = parse(pretty(program), gamma.lattice)
    try:
        infer_labels(clone, gamma)
    except TypingError:
        pass  # tolerate ill-typed inputs; contracts fall back to joins
    return clone


def strip_mitigates(cmd: ast.Command) -> ast.Command:
    """The program with every mitigate replaced by its body (in place on
    the given tree; clone first if the original matters)."""
    if isinstance(cmd, ast.Seq):
        return ast.seq(
            strip_mitigates(cmd.first), strip_mitigates(cmd.second)
        )
    if isinstance(cmd, ast.Mitigate):
        return strip_mitigates(cmd.body)
    if isinstance(cmd, ast.If):
        cmd.then_branch = strip_mitigates(cmd.then_branch)
        cmd.else_branch = strip_mitigates(cmd.else_branch)
        return cmd
    if isinstance(cmd, ast.While):
        cmd.body = strip_mitigates(cmd.body)
        return cmd
    return cmd


def _skeleton(
    placement: str,
    program: ast.Command,
    gamma: SecurityEnvironment,
    observer: Label,
) -> ast.Command:
    """Build one placement skeleton (every mitigate budget reset to 1)."""
    if placement == "as-written":
        skeleton = _clone(program, gamma)
    elif placement == "auto":
        stripped = strip_mitigates(_clone(program, gamma))
        rewritten, _ = auto_mitigate(stripped, gamma, budget=1)
        skeleton = _clone(rewritten, gamma)
    elif placement == "whole-program":
        stripped = strip_mitigates(_clone(program, gamma))
        top = gamma.lattice.top
        bottom = gamma.lattice.bottom
        wrapped = ast.Mitigate(
            budget=ast.IntLit(1), level=top, body=stripped,
            read_label=bottom, write_label=bottom,
        )
        skeleton = _clone(wrapped, gamma)
    else:
        raise ValueError(f"unknown placement {placement!r}")
    for site in ast.mitigates(skeleton):
        site.budget = ast.IntLit(1)
    return skeleton


def _sites(skeleton: ast.Command) -> List[ast.Mitigate]:
    return list(ast.mitigates(skeleton))


def _apply_budgets(skeleton: ast.Command,
                   budgets: Sequence[int]) -> None:
    for site, budget in zip(_sites(skeleton), budgets):
        site.budget = ast.IntLit(int(budget))


def _pow2ceil(value: int) -> int:
    value = max(int(value), 1)
    return 1 << (value - 1).bit_length()


def _budget_options(
    body: Interval,
    written: Optional[int],
    horizon: int,
) -> Tuple[int, ...]:
    """Candidate initial budgets for one site, cheapest-deadline first."""
    options: List[int] = []

    def add(value: Optional[int]) -> None:
        if value is None:
            return
        value = max(int(value), 1)
        if value not in options:
            options.append(value)

    if body.hi is not None:
        # Tight constant deadline: body always lands below the first
        # prediction, so the padded duration is exactly hi + 1 and the
        # deadline sequence degenerates to one class.
        add(body.hi + 1)
        add(_pow2ceil(body.hi + 1))
    else:
        # Unbounded body: a ladder of power-of-two quanta between the
        # body's floor and the horizon trades padding for classes.
        top = _pow2ceil(max(horizon, 2))
        rung = top
        floor = max(body.lo, 1)
        for _ in range(_LADDER_RUNGS):
            add(rung)
            if rung <= floor:
                break
            rung = max(rung // 8, 1)
    add(written)
    return tuple(options)


def _combos(per_site: Sequence[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """The cartesian product of per-site options, capped and ordered."""
    combos: List[Tuple[int, ...]] = [()]
    for options in per_site:
        combos = [
            combo + (option,)
            for combo in combos
            for option in options
        ]
        if len(combos) > _MAX_COMBOS:
            combos = combos[:_MAX_COMBOS]
    return combos


# ---------------------------------------------------------------------------
# The search
# ---------------------------------------------------------------------------


def _evaluate(
    skeleton: ast.Command,
    gamma: SecurityEnvironment,
    placement: str,
    scheme: str,
    budgets: Tuple[int, ...],
    models: Sequence[str],
    observer: Optional[Label],
    horizon: int,
    bits_budget: float,
) -> Candidate:
    # Work on a fresh clone so candidates don't alias each other's trees
    # (an incumbent must keep the budgets it was scored with).
    skeleton = _clone(skeleton, gamma)
    _apply_budgets(skeleton, budgets)
    reports: Dict[str, QuantifyReport] = {}
    capacity: Dict[str, float] = {}
    objective: Optional[int] = 0
    worst_deadline = 1
    for model in models:
        report = quantify(
            skeleton, gamma, hardware=model, observer=observer,
            scheme=scheme, horizon=horizon,
        )
        reports[model] = report
        capacity[model] = (
            math.inf if report.saturated else report.capacity_bits
        )
        if report.padded.hi is None:
            objective = None
        elif objective is not None:
            objective = max(objective, report.padded.hi)
        for site in report.sites.values():
            if site.padded_hi is not None:
                worst_deadline = max(worst_deadline, site.padded_hi)
    feasible = all(
        not reports[model].exceeds(bits_budget) for model in models
    )
    return Candidate(
        placement=placement,
        scheme=scheme,
        budgets=budgets,
        program=skeleton,
        source=pretty(skeleton),
        capacity=capacity,
        objective=objective,
        feasible=feasible,
        quantum=_pow2ceil(worst_deadline),
        reports=reports,
    )


def _estimate(
    skeleton_reports: Dict[str, QuantifyReport],
    scheme: str,
    budgets: Tuple[int, ...],
    horizon: int,
) -> Tuple[float, int]:
    """Cheap per-combo (capacity_estimate, objective_lower_bound) from the
    budget-1 skeleton census, without re-walking the program."""
    predictor = make_scheme(scheme)
    worst_bits = 0.0
    objective_lb = 0
    for model, report in skeleton_reports.items():
        # Capacity the budgets cannot touch: whatever the probe census
        # shows beyond its own deadline quantization (unmitigated forks,
        # widened sleeps).  Saturated probes are not trusted -- a larger
        # budget may be exactly what de-saturates them.
        residual = 0.0 if report.saturated else max(
            report.capacity_bits - report.deadline_fork_bits, 0.0
        )
        bits = residual
        model_lb = 0
        for index, site in enumerate(report.sites.values()):
            budget = budgets[index] if index < len(budgets) else 1
            m_lo, m_hi = deadline_span(
                predictor, budget, 0, site.body, horizon
            )
            if site.deadline_classes > 1 or site.body.hi is None:
                bits += math.log2(m_hi - m_lo + 1)
            # Any path through the site pads to at least its first
            # deadline, so the padded worst case is at least this much.
            model_lb = max(
                model_lb, predictor.predict(budget, m_lo)
            )
        worst_bits = max(worst_bits, bits)
        objective_lb = max(objective_lb, model_lb)
    return worst_bits, objective_lb


def synthesize(
    program: ast.Command,
    gamma: SecurityEnvironment,
    bits_budget: float,
    models: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = ("doubling", "polynomial"),
    placements: Sequence[str] = PLACEMENTS,
    observer: Optional[Label] = None,
    horizon: int = DEFAULT_HORIZON,
) -> TuneResult:
    """Branch-and-bound over placement x scheme x per-site budgets.

    Returns the baseline evaluation (the program as written, budgets as
    written) and the cheapest feasible candidate, if any.
    """
    if models is None:
        from ..hardware.registry import REGISTRY

        models = list(REGISTRY.names())
    models = tuple(models)

    # Baseline: the program exactly as written.
    written_budgets = tuple(
        max(b, 1) if (b := _const_budget(site)) is not None else 1
        for site in ast.mitigates(program)
    )
    baseline = _evaluate(
        _clone(program, gamma), gamma, "as-written",
        "doubling", written_budgets, models, observer, horizon,
        bits_budget,
    )

    explored = 1
    pruned = 0
    skipped: Dict[str, str] = {}
    incumbent: Optional[Candidate] = (
        baseline if baseline.feasible else None
    )

    for placement in placements:
        try:
            skeleton = _skeleton(placement, program, gamma, observer
                                 if observer is not None
                                 else gamma.lattice.bottom)
        except (UnmitigatableError, TypingError) as err:
            skipped[placement] = str(err)
            continue
        sites = _sites(skeleton)
        if placement != "as-written" and not sites:
            # Nothing to place: identical to the stripped program; only
            # worth evaluating once, under one scheme.
            scheme_list: Sequence[str] = schemes[:1]
        else:
            scheme_list = schemes
        for scheme in scheme_list:
            # Census the budget-1 skeleton once per model: per-site body
            # intervals for budget options + the pruning estimates.
            probe = _evaluate(
                skeleton, gamma, placement, scheme,
                tuple(1 for _ in sites), models, observer, horizon,
                bits_budget,
            )
            explored += 1
            if incumbent is None or (
                    probe.feasible
                    and probe.objective_key < incumbent.objective_key):
                incumbent = probe if probe.feasible else incumbent
            written = {
                index: budget
                for index, budget in enumerate(written_budgets)
            } if placement == "as-written" else {}
            per_site = []
            reference = probe.reports[models[0]]
            site_list = list(reference.sites.values())
            for index, site in enumerate(site_list):
                body = site.body
                for model in models[1:]:
                    other = probe.reports[model].sites.get(site.mit_id)
                    if other is not None:
                        body = body.join(other.body)
                per_site.append(_budget_options(
                    body, written.get(index), horizon,
                ))
            for combo in _combos(per_site):
                if combo == tuple(1 for _ in sites):
                    continue  # the probe already covered it
                bits_est, objective_lb = _estimate(
                    probe.reports, scheme, combo, horizon
                )
                if bits_est > bits_budget + 1e-9 and (
                        incumbent is not None):
                    pruned += 1
                    continue
                if (incumbent is not None
                        and incumbent.objective is not None
                        and objective_lb >= incumbent.objective
                        and incumbent.feasible):
                    pruned += 1
                    continue
                candidate = _evaluate(
                    skeleton, gamma, placement, scheme, combo,
                    models, observer, horizon, bits_budget,
                )
                explored += 1
                if candidate.feasible and (
                        incumbent is None
                        or candidate.objective_key
                        < incumbent.objective_key):
                    incumbent = candidate

    return TuneResult(
        bits_budget=bits_budget,
        models=models,
        horizon=horizon,
        baseline=baseline,
        best=incumbent,
        explored=explored,
        pruned=pruned,
        skipped_placements=skipped,
    )


def _const_budget(site: ast.Mitigate) -> Optional[int]:
    from .dataflow import eval_const

    return eval_const(site.budget, {})
