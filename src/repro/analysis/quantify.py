"""Quantitative leakage: timing-equivalence classes per hardware model.

The Theorem 2 audit (:mod:`repro.analysis.audit`) bounds leakage from the
*shape* of the program alone -- ``|L^| * log2(K+1) * (1 + log2 T)`` counts
mitigate sites, not what the clock can actually resolve.  This module
computes the complementary *capacity* measure in the style of Di Pierro et
al. (arXiv:0807.3879): a path-sensitive abstract interpreter walks the
program with one hardware model's :class:`~repro.hardware.costmodel.
CostContract` and enumerates the **timing-equivalence classes** an observer
of that model can separate.  Channel capacity is ``log2(#classes)`` --
attacker-distinguishable bits, usually far below the worst-case bound.

The walk maintains a set of :class:`TimingClass` states (accumulated
duration interval, constant env, abstract hardware state, per-level Miss
counters).  Three constructs change the class count:

* a branch on confidential data **forks** a class when the contract says
  the two arms' cost intervals are distinguishable
  (:meth:`CostContract.distinguishable`); indistinguishable arms merge;
* a ``mitigate`` block **collapses** its body's variation to the deadline
  sequence: the scheme's predictions quantize the body interval into a
  finite set of observable padded durations (S-UPDATE in Fig. 6), one
  class per reachable Miss count;
* a confidential loop whose bound is not a compile-time constant
  **widens**: outside any mitigate the iteration count is directly
  observable, contributing up to ``1 + log2(T)`` extra classes (a
  declared precision loss, recorded as a :class:`PrecisionNote`); inside
  a mitigate the deadline collapse absorbs it.

Class counts saturate at :data:`MAX_CLASSES`; a saturated report means
"at least this much" and budget checks treat it as exceeding any finite
budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Optional, Tuple

from ..hardware.costmodel import (
    CostContract,
    Interval,
    ZERO,
    contract_for,
)
from ..hardware.interface import StepKind
from ..hardware.params import MachineParams
from ..lang import ast
from ..lattice import Label
from ..semantics.mitigation import PredictionScheme, make_scheme
from ..typesystem.environment import SecurityEnvironment
from .audit import DEFAULT_HORIZON
from .cost import MAX_UNROLL, expr_accesses, _assigned_names
from .dataflow import eval_const

#: Saturation cap on simultaneously-tracked timing classes per model.
MAX_CLASSES = 4096

#: Cap on Miss-counter iterations when quantizing a body interval into
#: deadlines.  Polynomial schemes grow like ``(m+1)^q``, so settling a
#: budget-1 prediction against the default 2^20 horizon needs ~1024
#: misses; the cap is a backstop for pathological schemes only.
_MAX_MISSES = 4096


# ---------------------------------------------------------------------------
# Report model
# ---------------------------------------------------------------------------


@dataclass
class ForkNote:
    """One program point where the observer gains distinguishing power."""

    node_id: int
    span: ast.Span
    kind: str  # "branch" | "loop" | "sleep" | "deadline"
    bits: float
    message: str


@dataclass
class PrecisionNote:
    """A declared precision loss (widened loop, unknown budget)."""

    node_id: int
    span: ast.Span
    message: str


@dataclass
class SiteQuant:
    """Deadline-sequence facts for one mitigate site."""

    mit_id: str
    node_id: int
    span: ast.Span
    level: str
    budget: Optional[int]
    #: Body cost interval (with region overhead), joined over visits.
    body: Interval
    #: Distinct observable padded deadlines the scheme can emit here.
    deadline_classes: int
    #: Worst-case padded duration (None when unbounded misses saturate).
    padded_hi: Optional[int]

    @property
    def deadline_bits(self) -> float:
        return math.log2(self.deadline_classes) if (
            self.deadline_classes > 0) else 0.0


@dataclass
class QuantifyReport:
    """Timing-equivalence-class census for one (program, model) pair."""

    hardware: str
    scheme: str
    horizon: int
    #: Attacker-distinguishable class count (saturating).
    classes: int
    capacity_bits: float
    saturated: bool
    #: Worst-case *padded* program duration interval (objective input).
    padded: Interval
    sites: Dict[str, SiteQuant] = field(default_factory=dict)
    forks: List[ForkNote] = field(default_factory=list)
    notes: List[PrecisionNote] = field(default_factory=list)

    @property
    def fork_bits(self) -> float:
        """Capacity contributed by branch/loop forks (vs. deadlines)."""
        return sum(f.bits for f in self.forks if f.kind != "deadline")

    @property
    def deadline_fork_bits(self) -> float:
        return sum(f.bits for f in self.forks if f.kind == "deadline")

    def exceeds(self, budget_bits: float) -> bool:
        """Does the computed capacity violate a bits budget?  Saturated
        censuses exceed every finite budget."""
        return self.saturated or self.capacity_bits > budget_bits + 1e-9

    def as_dict(self) -> dict:
        return {
            "hardware": self.hardware,
            "scheme": self.scheme,
            "horizon": self.horizon,
            "classes": self.classes,
            "capacity_bits": round(self.capacity_bits, 4),
            "saturated": self.saturated,
            "padded": [self.padded.lo, self.padded.hi],
            "sites": [
                {
                    "mit_id": site.mit_id,
                    "line": site.span.line,
                    "level": site.level,
                    "budget": site.budget,
                    "body": [site.body.lo, site.body.hi],
                    "deadline_classes": site.deadline_classes,
                    "deadline_bits": round(site.deadline_bits, 4),
                    "padded_hi": site.padded_hi,
                }
                for site in self.sites.values()
            ],
            "forks": [
                {
                    "line": fork.span.line,
                    "kind": fork.kind,
                    "bits": round(fork.bits, 4),
                    "message": fork.message,
                }
                for fork in self.forks
            ],
            "notes": [
                {"line": note.span.line, "message": note.message}
                for note in self.notes
            ],
        }


# ---------------------------------------------------------------------------
# Deadline quantization (the static mirror of MitigationState.settle)
# ---------------------------------------------------------------------------


def settle_misses(
    scheme: PredictionScheme, budget: int, misses: int, elapsed: int
) -> int:
    """The Miss count after S-UPDATE: the least ``m >= misses`` whose
    prediction strictly exceeds ``elapsed``."""
    m = misses
    while (scheme.predict(budget, m) <= elapsed
           and m - misses < _MAX_MISSES):
        m += 1
    return m


def deadline_span(
    scheme: PredictionScheme,
    budget: int,
    misses: int,
    body: Interval,
    horizon: int,
) -> Tuple[int, int]:
    """The reachable Miss-count range ``(m_lo, m_hi)`` for a body whose
    unpadded duration lies in ``body``; an unbounded body is clipped to
    the analysis horizon."""
    m_lo = settle_misses(scheme, budget, misses, max(body.lo, 0))
    hi = body.hi if body.hi is not None else max(horizon, body.lo)
    m_hi = settle_misses(scheme, budget, misses, max(hi, 0))
    return m_lo, m_hi


# ---------------------------------------------------------------------------
# Timing classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimingClass:
    """One attacker-distinguishable equivalence class of executions."""

    #: Accumulated (padded) duration interval along this class.
    interval: Interval
    #: Flat constant environment (immutable view; copied on write).
    env: Tuple[Tuple[str, int], ...]
    #: Contract abstract state (bus queue, cumulative writes, ...).
    hw: Hashable
    #: Per-mitigation-level Miss counters (local penalty policy).
    misses: Tuple[Tuple[str, int], ...] = ()
    #: Extra distinguishable bits accrued from widened secret constructs
    #: not (yet) absorbed by a mitigate's deadline collapse.
    secret_bits: float = 0.0

    def env_dict(self) -> Dict[str, int]:
        return dict(self.env)

    def with_env(self, env: Dict[str, int]) -> "TimingClass":
        return replace(self, env=tuple(sorted(env.items())))

    def miss_of(self, level: str) -> int:
        return dict(self.misses).get(level, 0)

    def with_miss(self, level: str, count: int) -> "TimingClass":
        misses = dict(self.misses)
        misses[level] = count
        return replace(self, misses=tuple(sorted(misses.items())))


def _merge_classes(
    classes: List[TimingClass], contract: CostContract
) -> TimingClass:
    """Join several classes into one (the precision-losing merge used when
    arms are indistinguishable or the census saturates)."""
    merged = classes[0]
    env = merged.env_dict()
    interval = merged.interval
    hw = merged.hw
    secret_bits = merged.secret_bits
    misses = dict(merged.misses)
    for cls in classes[1:]:
        other_env = cls.env_dict()
        env = {k: v for k, v in env.items() if other_env.get(k) == v}
        interval = interval.join(cls.interval)
        hw = contract.join_state(hw, cls.hw)
        secret_bits = max(secret_bits, cls.secret_bits)
        for level, count in cls.misses:
            misses[level] = max(misses.get(level, 0), count)
    return TimingClass(
        interval=interval,
        env=tuple(sorted(env.items())),
        hw=hw,
        misses=tuple(sorted(misses.items())),
        secret_bits=secret_bits,
    )


# ---------------------------------------------------------------------------
# The path-sensitive interpreter
# ---------------------------------------------------------------------------


class _QuantifyInterpreter:
    def __init__(
        self,
        contract: CostContract,
        gamma: SecurityEnvironment,
        observer: Label,
        scheme: PredictionScheme,
        horizon: int,
    ):
        self.contract = contract
        self.gamma = gamma
        self.observer = observer
        self.scheme = scheme
        self.horizon = horizon
        self.sites: Dict[str, SiteQuant] = {}
        self.forks: List[ForkNote] = []
        self.notes: List[PrecisionNote] = []
        self.saturated = False
        #: Extra widening bits one widened secret loop may contribute.
        self.widen_bits = math.log2(
            1 + max(math.log2(max(horizon, 2)), 1)
        )

    # -- bookkeeping ----------------------------------------------------------

    def _fork(self, cmd: ast.LabeledCommand, kind: str, bits: float,
              message: str) -> None:
        if bits <= 0:
            return
        for note in self.forks:
            if note.node_id == cmd.node_id and note.kind == kind:
                note.bits = max(note.bits, bits)
                return
        self.forks.append(
            ForkNote(cmd.node_id, cmd.span, kind, bits, message)
        )

    def _note(self, cmd: ast.LabeledCommand, message: str) -> None:
        if any(n.node_id == cmd.node_id for n in self.notes):
            return
        self.notes.append(PrecisionNote(cmd.node_id, cmd.span, message))

    def _secret(self, expr: ast.Expr) -> bool:
        """Does the expression read data invisible to the observer?"""
        return not self.gamma.label_of_expr(expr).flows_to(self.observer)

    def _cap(self, classes: List[TimingClass]) -> List[TimingClass]:
        classes = _dedupe(classes, self.contract)
        if len(classes) <= MAX_CLASSES:
            return classes
        self.saturated = True
        keep = classes[:MAX_CLASSES - 1]
        keep.append(_merge_classes(classes[MAX_CLASSES - 1:],
                                   self.contract))
        return keep

    # -- one hardware step ----------------------------------------------------

    def _step(
        self,
        cls: TimingClass,
        cmd: ast.LabeledCommand,
        kind: StepKind,
        reads: int,
        writes: int,
        is_branch: bool = False,
    ) -> TimingClass:
        interval, hw = self.contract.step_cost(
            kind, reads, writes, is_branch,
            cmd.read_label, cmd.write_label, cls.hw,
        )
        return replace(
            cls, interval=cls.interval + interval, hw=hw
        )

    # -- commands --------------------------------------------------------------

    def run(self, cmd: ast.Command,
            classes: List[TimingClass]) -> List[TimingClass]:
        """Abstractly execute ``cmd`` over every class."""
        if isinstance(cmd, ast.Seq):
            classes = self.run(cmd.first, classes)
            return self.run(cmd.second, classes)
        out: List[TimingClass] = []
        for cls in classes:
            out.extend(self._run_one(cmd, cls))
        return self._cap(out)

    def _run_one(self, cmd: ast.Command,
                 cls: TimingClass) -> List[TimingClass]:
        if isinstance(cmd, ast.Skip):
            return [self._step(cls, cmd, StepKind.SKIP, 0, 0)]

        if isinstance(cmd, ast.Assign):
            nxt = self._step(
                cls, cmd, StepKind.ASSIGN, expr_accesses(cmd.expr), 1
            )
            env = nxt.env_dict()
            value = eval_const(cmd.expr, env)
            if value is None:
                env.pop(cmd.target, None)
            else:
                env[cmd.target] = value
            return [nxt.with_env(env)]

        if isinstance(cmd, ast.ArrayAssign):
            reads = expr_accesses(cmd.index) + expr_accesses(cmd.expr)
            return [self._step(cls, cmd, StepKind.ASSIGN, reads, 1)]

        if isinstance(cmd, ast.Sleep):
            return self._sleep(cmd, cls)

        if isinstance(cmd, ast.If):
            return self._branch(cmd, cls)

        if isinstance(cmd, ast.While):
            return self._loop(cmd, cls)

        if isinstance(cmd, ast.Mitigate):
            return self._mitigate(cmd, cls)

        if isinstance(cmd, ast.Seq):
            return self.run(cmd, [cls])

        raise TypeError(f"not a command: {cmd!r}")

    def _sleep(self, cmd: ast.Sleep,
               cls: TimingClass) -> List[TimingClass]:
        duration = eval_const(cmd.duration, cls.env_dict())
        if duration is not None:
            interval = Interval.exact(max(duration, 0))
            return [replace(cls, interval=cls.interval + interval)]
        interval = Interval.top()
        nxt = replace(cls, interval=cls.interval + interval)
        if self._secret(cmd.duration):
            # Every distinct duration is its own observation; the horizon
            # bounds how many the clock can tell apart.
            nxt = replace(
                nxt, secret_bits=nxt.secret_bits + self.widen_bits
            )
            self._fork(
                cmd, "sleep", self.widen_bits,
                "a confidential, non-constant sleep exposes its duration "
                "directly (bounded only by the horizon)",
            )
            self._note(
                cmd,
                "sleep duration is confidential and not a compile-time "
                f"constant; counted as {self.widen_bits:.2f} bits of "
                "precision loss",
            )
        return [nxt]

    def _branch(self, cmd: ast.If,
                cls: TimingClass) -> List[TimingClass]:
        head = self._step(
            cls, cmd, StepKind.BRANCH, expr_accesses(cmd.cond), 0,
            is_branch=True,
        )
        guard = eval_const(cmd.cond, head.env_dict())
        if guard is not None:
            arm = cmd.then_branch if guard != 0 else cmd.else_branch
            return self.run(arm, [head])

        base = replace(head, interval=ZERO)
        then_out = self.run(cmd.then_branch, [base])
        else_out = self.run(cmd.else_branch, [base])
        then_iv = _joined_interval(then_out)
        else_iv = _joined_interval(else_out)

        if self._secret(cmd.cond) and self.contract.distinguishable(
                then_iv, else_iv):
            self._fork(
                cmd, "branch", 1.0,
                f"confidential guard with distinguishable arms (then "
                f"{then_iv}, else {else_iv}): the clock reads the arm "
                "taken",
            )
            return [
                replace(sub, interval=head.interval + sub.interval)
                for sub in then_out + else_out
            ]

        # Public guard, or arms the observer cannot separate: one class
        # per arm-internal fork survives only if the arms forked
        # internally (conservative for public guards); otherwise merge.
        if len(then_out) == 1 and len(else_out) == 1:
            merged = _merge_classes([then_out[0], else_out[0]],
                                    self.contract)
            return [replace(merged, interval=head.interval
                            + merged.interval)]
        return [
            replace(sub, interval=head.interval + sub.interval)
            for sub in then_out + else_out
        ]

    def _loop(self, cmd: ast.While,
              cls: TimingClass) -> List[TimingClass]:
        guard_reads = expr_accesses(cmd.cond)
        current = [cls]
        done: List[TimingClass] = []
        iterations = 0
        while current:
            stepped = [
                self._step(c, cmd, StepKind.BRANCH, guard_reads, 0,
                           is_branch=True)
                for c in current
            ]
            nxt: List[TimingClass] = []
            widen: List[TimingClass] = []
            for c in stepped:
                guard = eval_const(cmd.cond, c.env_dict())
                if guard == 0:
                    done.append(c)
                elif guard is None or iterations >= MAX_UNROLL:
                    widen.append(c)
                else:
                    nxt.append(c)
            if widen:
                done.extend(self._widen_loop(cmd, widen))
            if not nxt:
                break
            current = self._cap(self.run(cmd.body, nxt))
            iterations += 1
        return done if done else [cls]

    def _widen_loop(self, cmd: ast.While,
                    classes: List[TimingClass]) -> List[TimingClass]:
        """A loop whose guard is not a compile-time constant: cost widens
        to ⊤; a confidential guard also widens the class census."""
        secret = self._secret(cmd.cond)
        killed = _assigned_names(cmd.body)
        out: List[TimingClass] = []
        for c in classes:
            env = {
                name: value for name, value in c.env_dict().items()
                if name not in killed
            }
            hw = self.contract.widen_state(c.hw)
            seeded = replace(
                c, interval=ZERO, hw=hw,
            ).with_env(env)
            # One abstract body pass so nested sites still get facts.
            body_out = self.run(cmd.body, [seeded])
            landed = _merge_classes(body_out, self.contract) if (
                body_out) else seeded
            landed = replace(
                landed,
                interval=Interval.top(c.interval.lo),
                hw=self.contract.widen_state(
                    self.contract.join_state(hw, landed.hw)
                ),
            )
            if secret:
                landed = replace(
                    landed,
                    secret_bits=landed.secret_bits + self.widen_bits,
                )
            out.append(landed)
        if secret:
            self._fork(
                cmd, "loop", self.widen_bits,
                "confidential loop bound is not a compile-time constant: "
                "the iteration count is directly observable (precision "
                f"loss declared as {self.widen_bits:.2f} bits, horizon-"
                "bounded)",
            )
            self._note(
                cmd,
                "confidential loop widened: iteration count unbounded; "
                f"declared precision loss {self.widen_bits:.2f} bits",
            )
        else:
            self._note(
                cmd,
                "loop bound is not a compile-time constant; duration "
                "widened to ⊤ (public guard: no class fork)",
            )
        return out

    def _mitigate(self, cmd: ast.Mitigate,
                  cls: TimingClass) -> List[TimingClass]:
        head = self._step(
            cls, cmd, StepKind.MITIGATE, expr_accesses(cmd.budget), 0
        )
        budget = eval_const(cmd.budget, head.env_dict())
        level_name = cmd.level.name if cmd.level is not None else "?"
        entry_bits = head.secret_bits

        body_out = self.run(
            cmd.body, [replace(head, interval=ZERO)]
        )
        overhead = [
            replace(sub, interval=sub.interval
                    + self.contract.region_overhead(sub.hw))
            for sub in body_out
        ]
        body_iv = _joined_interval(overhead)

        if budget is None:
            self._note(
                cmd,
                "mitigate budget is not a compile-time constant; the "
                "deadline sequence cannot be quantized statically",
            )
            self._record_site(cmd, level_name, None, body_iv, 1, None)
            merged = _merge_classes(overhead, self.contract)
            return [replace(
                merged,
                interval=head.interval + merged.interval,
                secret_bits=max(entry_bits, merged.secret_bits),
            )]

        # Was any of the body's variation confidential?  Declared-secret
        # levels (above the observer) always count; purely public
        # variation under an observable level pads to a public deadline.
        body_secret = (
            not cmd.level.flows_to(self.observer)
            or len(overhead) > 1
            or any(sub.secret_bits > entry_bits for sub in overhead)
        )

        out: List[TimingClass] = []
        deadlines: set = set()
        worst_deadline = 0
        unbounded = False
        for sub in overhead:
            m0 = sub.miss_of(level_name)
            m_lo, m_hi = deadline_span(
                self.scheme, budget, m0, sub.interval, self.horizon
            )
            if sub.interval.hi is None:
                unbounded = True
            deadlines.update(
                self.scheme.predict(budget, m)
                for m in range(m_lo, m_hi + 1)
            )
            if not body_secret:
                # Public variation: every deadline is a public function
                # of public data -- one class, padded somewhere in the
                # deadline window.
                lo_pad = self.scheme.predict(budget, m_lo)
                hi_pad = self.scheme.predict(budget, m_hi)
                worst_deadline = max(worst_deadline, hi_pad)
                out.append(replace(
                    sub.with_miss(level_name, m_hi),
                    interval=head.interval + Interval(lo_pad, hi_pad),
                    secret_bits=entry_bits,
                ))
                continue
            for m in range(m_lo, m_hi + 1):
                deadline = self.scheme.predict(budget, m)
                worst_deadline = max(worst_deadline, deadline)
                out.append(replace(
                    sub.with_miss(level_name, m),
                    interval=head.interval + Interval.exact(deadline),
                    # The deadline collapse absorbs body-internal
                    # widening: the padded duration is all that leaks.
                    secret_bits=entry_bits,
                ))
        site_classes = max(len(deadlines), 1) if body_secret else 1
        self._record_site(
            cmd, level_name, budget, body_iv, site_classes,
            None if unbounded and site_classes >= _MAX_MISSES
            else worst_deadline,
        )
        if body_secret and site_classes > 1:
            self._fork(
                cmd, "deadline", math.log2(site_classes),
                f"the scheme's deadline sequence quantizes the body cost "
                f"{body_iv} into {site_classes} observable padded "
                "durations",
            )
        return out

    def _record_site(
        self,
        cmd: ast.Mitigate,
        level: str,
        budget: Optional[int],
        body: Interval,
        classes: int,
        padded_hi: Optional[int],
    ) -> None:
        seen = self.sites.get(cmd.mit_id)
        if seen is None:
            self.sites[cmd.mit_id] = SiteQuant(
                mit_id=cmd.mit_id,
                node_id=cmd.node_id,
                span=cmd.span,
                level=level,
                budget=budget,
                body=body,
                deadline_classes=classes,
                padded_hi=padded_hi,
            )
            return
        seen.body = seen.body.join(body)
        seen.deadline_classes = max(seen.deadline_classes, classes)
        if seen.budget != budget:
            seen.budget = None
        if padded_hi is None:
            seen.padded_hi = None
        elif seen.padded_hi is not None:
            seen.padded_hi = max(seen.padded_hi, padded_hi)


def _dedupe(
    classes: List[TimingClass], contract: CostContract
) -> List[TimingClass]:
    """Merge classes the observer cannot tell apart: identical duration
    interval and Miss state (env differences are invisible; merging keeps
    only the agreeing constants, a sound overapproximation).  This is what
    makes a mitigate's deadline collapse actually shrink the census."""
    groups: Dict[Tuple, List[TimingClass]] = {}
    for cls in classes:
        key = (
            cls.interval.lo, cls.interval.hi, cls.misses,
            round(cls.secret_bits, 9),
        )
        groups.setdefault(key, []).append(cls)
    return [
        members[0] if len(members) == 1
        else _merge_classes(members, contract)
        for members in groups.values()
    ]


def _joined_interval(classes: List[TimingClass]) -> Interval:
    if not classes:
        return ZERO
    joined = classes[0].interval
    for cls in classes[1:]:
        joined = joined.join(cls.interval)
    return joined


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def quantify(
    program: ast.Command,
    gamma: SecurityEnvironment,
    hardware: str = "null",
    observer: Optional[Label] = None,
    scheme: str = "doubling",
    horizon: int = DEFAULT_HORIZON,
    params: Optional[MachineParams] = None,
    contract: Optional[CostContract] = None,
) -> QuantifyReport:
    """Enumerate the timing-equivalence classes of ``program`` on one
    hardware model and report the channel capacity ``log2(#classes)``.

    ``observer`` defaults to the lattice bottom (the paper's low
    adversary); data whose label flows to the observer is public for the
    census.  ``scheme`` names the prediction scheme quantizing mitigate
    deadlines (``doubling`` or ``polynomial``).
    """
    contract = contract if contract is not None else contract_for(
        hardware, params
    )
    observer = observer if observer is not None else gamma.lattice.bottom
    interp = _QuantifyInterpreter(
        contract, gamma, observer, make_scheme(scheme), horizon
    )
    initial = TimingClass(
        interval=ZERO, env=(), hw=contract.initial_state()
    )
    final = interp.run(program, [initial])
    final = [
        replace(cls, interval=cls.interval
                + contract.region_overhead(cls.hw))
        for cls in final
    ]
    # Each class stands for 2^secret_bits indistinguishable-by-structure
    # but duration-separable observations.
    weight = sum(2.0 ** cls.secret_bits for cls in final)
    weight = max(weight, 1.0)
    capacity = math.log2(weight)
    if interp.saturated:
        capacity = max(capacity, math.log2(MAX_CLASSES))
    return QuantifyReport(
        hardware=contract.name,
        scheme=scheme,
        horizon=horizon,
        classes=max(int(round(weight)), len(final)),
        capacity_bits=capacity,
        saturated=interp.saturated,
        padded=_joined_interval(final),
        sites=interp.sites,
        forks=interp.forks,
        notes=interp.notes,
    )


def quantify_all(
    program: ast.Command,
    gamma: SecurityEnvironment,
    models: Optional[List[str]] = None,
    observer: Optional[Label] = None,
    scheme: str = "doubling",
    horizon: int = DEFAULT_HORIZON,
    params: Optional[MachineParams] = None,
) -> Dict[str, QuantifyReport]:
    """The census on every requested registry model (default: all)."""
    from ..hardware.registry import REGISTRY

    names = models if models is not None else list(REGISTRY.names())
    return {
        name: quantify(
            program, gamma, hardware=name, observer=observer,
            scheme=scheme, horizon=horizon, params=params,
        )
        for name in names
    }
