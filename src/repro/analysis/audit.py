"""Static Theorem 2 leakage audit, per mitigate site.

Theorem 2 bounds the leakage to an adversary at ``lA`` by::

    |L^_{lA}| * log2(K + 1) * (1 + log2 T)

where ``L^_{lA}`` is the upward closure of the mitigation levels not
observable at ``lA`` and ``K`` counts relevant mitigate executions.  The
dynamic side is measured by :mod:`repro.telemetry.leakage`; this module
computes the *static* side from the typing derivation alone: which mitigate
sites are relevant (low context, level above the adversary), what each
contributes to the closure term, and the resulting bound for a given time
horizon ``T``.  A site's marginal contribution is the bound delta from
removing it -- the audit makes visible which ``mitigate`` commands are
buying the program its leakage budget and which are inflating it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..hardware.costmodel import Interval
from ..lang import ast
from ..lattice import Label, Lattice
from ..quantitative.bounds import leakage_bound
from ..typesystem.typing import TypingInfo

#: Default time horizon for the bound's ``(1 + log2 T)`` term: 2^20 cycles.
DEFAULT_HORIZON = 1 << 20


@dataclass(frozen=True)
class MitigateSite:
    """One mitigate command's entry in the audit."""

    mit_id: str
    span: ast.Span
    node_id: int
    pc: Label
    level: Label
    relevant: bool
    reason: str
    contribution_bits: float
    #: False when constant-pruned control flow proves the site never runs.
    reachable: bool = True
    #: Static unpadded cycle bounds for the site's body (the `null`
    #: contract's exact facts), when the cost analysis saw the site run.
    static_cost: Optional[Interval] = None

    def describe(self) -> str:
        where = "" if self.span.is_synthetic else f" at {self.span}"
        head = (f"mitigate {self.mit_id}{where}: pc={self.pc} "
                f"level={self.level}")
        cost = "" if self.static_cost is None else f"  cost={self.static_cost}"
        if self.relevant:
            return (f"{head}  relevant  +{self.contribution_bits:.2f} "
                    f"bits{cost}")
        return f"{head}  not relevant ({self.reason}){cost}"


@dataclass(frozen=True)
class LeakageAudit:
    """The whole static Theorem 2 account."""

    adversary: Label
    horizon: int
    sites: Tuple[MitigateSite, ...]
    closure_size: int
    relevant_count: int
    bound_bits: float
    #: What a purely syntactic count (every mitigate in the text, reachable
    #: or not) would have reported.  Equal to the headline numbers when the
    #: dataflow layer pruned nothing.
    syntactic_closure_size: int = 0
    syntactic_relevant_count: int = 0
    syntactic_bound_bits: float = 0.0

    @property
    def pruned_count(self) -> int:
        """How many syntactically-relevant sites dataflow pruning dropped."""
        return self.syntactic_relevant_count - self.relevant_count

    def lines(self) -> List[str]:
        out = [
            f"static Theorem 2 audit (adversary {self.adversary}, "
            f"horizon T={self.horizon}):"
        ]
        if not self.sites:
            out.append("  no mitigate commands: leakage bound is 0 bits "
                       "(Theorem 2 corollary)")
            return out
        for site in self.sites:
            out.append(f"  {site.describe()}")
        log_t = math.log2(self.horizon) if self.horizon > 1 else 0.0
        out.append(
            f"  |L^_{{{self.adversary}}}| = {self.closure_size}, "
            f"K = {self.relevant_count}  =>  bound = {self.closure_size} "
            f"* log2({self.relevant_count + 1}) * (1 + {log_t:.0f}) "
            f"= {self.bound_bits:.2f} bits"
        )
        if self.pruned_count:
            out.append(
                f"  syntactic bound would be {self.syntactic_bound_bits:.2f} "
                f"bits over K = {self.syntactic_relevant_count} sites; "
                f"dataflow reachability pruned {self.pruned_count} dead "
                f"site(s), tightening the bound by "
                f"{self.syntactic_bound_bits - self.bound_bits:.2f} bits"
            )
        return out

    def as_dict(self) -> dict:
        return {
            "adversary": self.adversary.name,
            "horizon": self.horizon,
            "closure_size": self.closure_size,
            "relevant_count": self.relevant_count,
            "bound_bits": self.bound_bits,
            "syntactic": {
                "closure_size": self.syntactic_closure_size,
                "relevant_count": self.syntactic_relevant_count,
                "bound_bits": self.syntactic_bound_bits,
                "pruned_count": self.pruned_count,
            },
            "sites": [
                {
                    "mit_id": site.mit_id,
                    "line": site.span.line,
                    "column": site.span.column,
                    "pc": site.pc.name,
                    "level": site.level.name,
                    "relevant": site.relevant,
                    "reachable": site.reachable,
                    "reason": site.reason,
                    "contribution_bits": site.contribution_bits,
                    "static_cost": (
                        None if site.static_cost is None
                        else [site.static_cost.lo, site.static_cost.hi]
                    ),
                }
                for site in self.sites
            ],
        }


def _bound_for(lattice: Lattice, levels: List[Label], adversary: Label,
               horizon: int) -> float:
    if not levels:
        return 0.0
    return leakage_bound(
        lattice, levels, adversary, horizon, relevant_mitigations=len(levels)
    )


def _closure_size(lattice: Lattice, levels: List[Label],
                  adversary: Label) -> int:
    if not levels:
        return 0
    return len(lattice.upward_closure(
        lattice.exclude_observable(levels, adversary)))


def audit_leakage(
    program: ast.Command,
    lattice: Lattice,
    typing: TypingInfo,
    adversary: Optional[Label] = None,
    horizon: int = DEFAULT_HORIZON,
    reachable: Optional[FrozenSet[int]] = None,
    cost: Optional[object] = None,
) -> LeakageAudit:
    """Account every mitigate site against the Theorem 2 bound.

    A site is *relevant* when its static context is observable to the
    adversary (``pc(M) <= lA`` -- the adversary sees that the command runs)
    and its level is not (``lev(M) !<= lA`` -- its padded duration can vary
    with confidential data).  ``typing`` may come from the error-recovering
    collector, so the audit also works on ill-typed programs.

    ``reachable`` (from :func:`repro.analysis.cfg.reachable_commands`,
    typically constant-pruned) tightens the count: a mitigate the control
    flow provably never reaches cannot execute, so it joins neither the
    ``K`` count nor the ``L^`` closure.  The headline ``bound_bits`` is the
    reachable bound; the syntactic numbers a text-only audit would have
    reported are kept alongside so the delta is visible.

    ``cost`` (a :class:`repro.analysis.cost.CostReport`) adds a static
    unpadded-cycle column per site, so the audit shows both what each
    mitigate *leaks* (bits) and what it must *cover* (cycles).
    """
    adversary = adversary if adversary is not None else lattice.bottom
    relevant_levels: List[Label] = []
    syntactic_levels: List[Label] = []
    raw: List[Tuple[ast.Mitigate, Label, bool, str, bool]] = []
    for cmd in ast.mitigates(program):
        is_reachable = reachable is None or cmd.node_id in reachable
        pc = typing.mitigate_pc.get(cmd.mit_id)
        if pc is None:
            raw.append((cmd, lattice.bottom, False, "not typed",
                        is_reachable))
            continue
        if not pc.flows_to(adversary):
            raw.append((cmd, pc, False,
                        f"high context: pc {pc} is invisible at "
                        f"{adversary}", is_reachable))
            continue
        if cmd.level.flows_to(adversary):
            raw.append((cmd, pc, False,
                        f"level {cmd.level} is already observable at "
                        f"{adversary}", is_reachable))
            continue
        syntactic_levels.append(cmd.level)
        if not is_reachable:
            raw.append((cmd, pc, False,
                        "unreachable: constant-pruned control flow never "
                        "gets here", is_reachable))
            continue
        raw.append((cmd, pc, True, "", is_reachable))
        relevant_levels.append(cmd.level)

    total = _bound_for(lattice, relevant_levels, adversary, horizon)
    syntactic_total = _bound_for(
        lattice, syntactic_levels, adversary, horizon
    )
    sites: List[MitigateSite] = []
    index = 0
    cost_sites = getattr(cost, "mitigates", {}) if cost is not None else {}
    for cmd, pc, relevant, reason, is_reachable in raw:
        contribution = 0.0
        if relevant:
            without = (
                relevant_levels[:index] + relevant_levels[index + 1:]
            )
            contribution = total - _bound_for(
                lattice, without, adversary, horizon
            )
            index += 1
        cost_site = cost_sites.get(cmd.mit_id)
        sites.append(MitigateSite(
            mit_id=cmd.mit_id,
            span=cmd.span,
            node_id=cmd.node_id,
            pc=pc,
            level=cmd.level,
            relevant=relevant,
            reason=reason,
            contribution_bits=contribution,
            reachable=is_reachable,
            static_cost=None if cost_site is None else cost_site.interval,
        ))
    return LeakageAudit(
        adversary=adversary,
        horizon=horizon,
        sites=tuple(sites),
        closure_size=_closure_size(lattice, relevant_levels, adversary),
        relevant_count=len(relevant_levels),
        bound_bits=total,
        syntactic_closure_size=_closure_size(
            lattice, syntactic_levels, adversary),
        syntactic_relevant_count=len(syntactic_levels),
        syntactic_bound_bits=syntactic_total,
    )
