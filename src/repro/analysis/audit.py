"""Static Theorem 2 leakage audit, per mitigate site.

Theorem 2 bounds the leakage to an adversary at ``lA`` by::

    |L^_{lA}| * log2(K + 1) * (1 + log2 T)

where ``L^_{lA}`` is the upward closure of the mitigation levels not
observable at ``lA`` and ``K`` counts relevant mitigate executions.  The
dynamic side is measured by :mod:`repro.telemetry.leakage`; this module
computes the *static* side from the typing derivation alone: which mitigate
sites are relevant (low context, level above the adversary), what each
contributes to the closure term, and the resulting bound for a given time
horizon ``T``.  A site's marginal contribution is the bound delta from
removing it -- the audit makes visible which ``mitigate`` commands are
buying the program its leakage budget and which are inflating it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..lang import ast
from ..lattice import Label, Lattice
from ..quantitative.bounds import leakage_bound
from ..typesystem.typing import TypingInfo

#: Default time horizon for the bound's ``(1 + log2 T)`` term: 2^20 cycles.
DEFAULT_HORIZON = 1 << 20


@dataclass(frozen=True)
class MitigateSite:
    """One mitigate command's entry in the audit."""

    mit_id: str
    span: ast.Span
    node_id: int
    pc: Label
    level: Label
    relevant: bool
    reason: str
    contribution_bits: float

    def describe(self) -> str:
        where = "" if self.span.is_synthetic else f" at {self.span}"
        head = (f"mitigate {self.mit_id}{where}: pc={self.pc} "
                f"level={self.level}")
        if self.relevant:
            return f"{head}  relevant  +{self.contribution_bits:.2f} bits"
        return f"{head}  not relevant ({self.reason})"


@dataclass(frozen=True)
class LeakageAudit:
    """The whole static Theorem 2 account."""

    adversary: Label
    horizon: int
    sites: Tuple[MitigateSite, ...]
    closure_size: int
    relevant_count: int
    bound_bits: float

    def lines(self) -> List[str]:
        out = [
            f"static Theorem 2 audit (adversary {self.adversary}, "
            f"horizon T={self.horizon}):"
        ]
        if not self.sites:
            out.append("  no mitigate commands: leakage bound is 0 bits "
                       "(Theorem 2 corollary)")
            return out
        for site in self.sites:
            out.append(f"  {site.describe()}")
        log_t = math.log2(self.horizon) if self.horizon > 1 else 0.0
        out.append(
            f"  |L^_{{{self.adversary}}}| = {self.closure_size}, "
            f"K = {self.relevant_count}  =>  bound = {self.closure_size} "
            f"* log2({self.relevant_count + 1}) * (1 + {log_t:.0f}) "
            f"= {self.bound_bits:.2f} bits"
        )
        return out

    def as_dict(self) -> dict:
        return {
            "adversary": self.adversary.name,
            "horizon": self.horizon,
            "closure_size": self.closure_size,
            "relevant_count": self.relevant_count,
            "bound_bits": self.bound_bits,
            "sites": [
                {
                    "mit_id": site.mit_id,
                    "line": site.span.line,
                    "column": site.span.column,
                    "pc": site.pc.name,
                    "level": site.level.name,
                    "relevant": site.relevant,
                    "reason": site.reason,
                    "contribution_bits": site.contribution_bits,
                }
                for site in self.sites
            ],
        }


def _bound_for(lattice: Lattice, levels: List[Label], adversary: Label,
               horizon: int) -> float:
    if not levels:
        return 0.0
    return leakage_bound(
        lattice, levels, adversary, horizon, relevant_mitigations=len(levels)
    )


def audit_leakage(
    program: ast.Command,
    lattice: Lattice,
    typing: TypingInfo,
    adversary: Optional[Label] = None,
    horizon: int = DEFAULT_HORIZON,
) -> LeakageAudit:
    """Account every mitigate site against the Theorem 2 bound.

    A site is *relevant* when its static context is observable to the
    adversary (``pc(M) <= lA`` -- the adversary sees that the command runs)
    and its level is not (``lev(M) !<= lA`` -- its padded duration can vary
    with confidential data).  ``typing`` may come from the error-recovering
    collector, so the audit also works on ill-typed programs.
    """
    adversary = adversary if adversary is not None else lattice.bottom
    relevant_levels: List[Label] = []
    raw: List[Tuple[ast.Mitigate, Label, bool, str]] = []
    for cmd in ast.mitigates(program):
        pc = typing.mitigate_pc.get(cmd.mit_id)
        if pc is None:
            raw.append((cmd, lattice.bottom, False, "not typed"))
            continue
        if not pc.flows_to(adversary):
            raw.append((cmd, pc, False,
                        f"high context: pc {pc} is invisible at "
                        f"{adversary}"))
            continue
        if cmd.level.flows_to(adversary):
            raw.append((cmd, pc, False,
                        f"level {cmd.level} is already observable at "
                        f"{adversary}"))
            continue
        raw.append((cmd, pc, True, ""))
        relevant_levels.append(cmd.level)

    total = _bound_for(lattice, relevant_levels, adversary, horizon)
    sites: List[MitigateSite] = []
    index = 0
    for cmd, pc, relevant, reason in raw:
        contribution = 0.0
        if relevant:
            without = (
                relevant_levels[:index] + relevant_levels[index + 1:]
            )
            contribution = total - _bound_for(
                lattice, without, adversary, horizon
            )
            index += 1
        sites.append(MitigateSite(
            mit_id=cmd.mit_id,
            span=cmd.span,
            node_id=cmd.node_id,
            pc=pc,
            level=cmd.level,
            relevant=relevant,
            reason=reason,
            contribution_bits=contribution,
        ))
    return LeakageAudit(
        adversary=adversary,
        horizon=horizon,
        sites=tuple(sites),
        closure_size=(
            len(lattice.upward_closure(
                lattice.exclude_observable(relevant_levels, adversary)))
            if relevant_levels else 0
        ),
        relevant_count=len(relevant_levels),
        bound_bits=total,
    )
