"""Renderers for lint results: human text, JSON, and SARIF 2.1.0.

The text renderer excerpts the offending source line with a caret run
under the flagged span, compiler-style.  The SARIF output follows the
OASIS 2.1.0 schema shape (tool driver with a rule table, results with
``ruleId``/``ruleIndex``, physical locations with 1-based regions) so it
uploads cleanly to code-scanning services.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from .audit import LeakageAudit
from .diagnostics import Diagnostic, FlowStep
from .rules import RULE_HELP_BASE, RULES

__all__ = [
    "RULE_HELP_BASE",  # re-exported for back-compat; lives in rules.py now
    "SARIF_SCHEMA", "SARIF_VERSION",
    "dump", "model_rows", "render_json", "render_sarif", "render_text",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


# -- text ---------------------------------------------------------------------


def model_rows(values: Dict[str, object], indent: str = "    ") -> List[str]:
    """One aligned table row per hardware model: ``<model>  <value>``.

    Shared by ``repro cost`` and ``repro tune`` so per-site ``[lo, hi]``
    tables render identically everywhere.  Preserves the mapping's
    iteration order; values are formatted with ``str``.
    """
    return [f"{indent}{model:<12} {value}" for model, value in values.items()]


def _excerpt(diag: Diagnostic, source: str) -> List[str]:
    lines = source.splitlines()
    if diag.span.is_synthetic or not (1 <= diag.span.line <= len(lines)):
        return []
    text = lines[diag.span.line - 1]
    col = max(diag.span.column, 1)
    if diag.span.end_line == diag.span.line:
        width = max(diag.span.end_column - diag.span.column, 1)
    else:
        width = max(len(text) - col + 1, 1)
    caret = " " * (col - 1) + "^" + "~" * (width - 1)
    return [f"    {text}", f"    {caret}"]


def render_text(
    diagnostics: Sequence[Diagnostic],
    sources: Optional[Dict[str, str]] = None,
    audits: Optional[Dict[str, LeakageAudit]] = None,
) -> List[str]:
    """Compiler-style report lines.

    ``sources`` maps path -> source text for line excerpts; ``audits`` maps
    path -> static leakage audit, appended per file after the findings.
    """
    sources = sources or {}
    out: List[str] = []
    for diag in diagnostics:
        rule = f" [{diag.rule}]" if diag.rule else ""
        out.append(
            f"{diag.location()}: {diag.severity}[{diag.code}]{rule}: "
            f"{diag.message}"
        )
        if diag.path in sources:
            out.extend(_excerpt(diag, sources[diag.path]))
        if diag.flow:
            out.append("    | flow:")
            for index, step in enumerate(diag.flow, start=1):
                where = "" if step.span.is_synthetic \
                    else f" @ {step.span.line}:{step.span.column}"
                out.append(
                    f"    |   {index}. [{step.kind}]{where} {step.message}"
                )
        if diag.fix is not None:
            fix = diag.fix.replace("\n", "\n    |   ")
            out.append(f"    | fix: {fix}")
    counts: Dict[str, int] = {}
    for diag in diagnostics:
        counts[diag.severity.value] = counts.get(diag.severity.value, 0) + 1
    if diagnostics:
        summary = ", ".join(
            f"{n} {sev}{'s' if n != 1 else ''}"
            for sev, n in sorted(counts.items())
        )
        out.append(f"{len(diagnostics)} finding"
                   f"{'s' if len(diagnostics) != 1 else ''} ({summary})")
    else:
        out.append("clean: no findings")
    for path, audit in (audits or {}).items():
        out.append("")
        out.append(f"{path}:")
        out.extend(audit.lines())
    return out


# -- JSON ---------------------------------------------------------------------


def render_json(
    diagnostics: Sequence[Diagnostic],
    audits: Optional[Dict[str, LeakageAudit]] = None,
) -> dict:
    """A machine-readable document (schema ``repro.lint/1``)."""
    doc = {
        "schema": "repro.lint/1",
        "diagnostics": [diag.as_dict() for diag in diagnostics],
        "summary": {
            "total": len(diagnostics),
            "by_severity": {},
            "by_code": {},
        },
    }
    for diag in diagnostics:
        by_sev = doc["summary"]["by_severity"]
        by_code = doc["summary"]["by_code"]
        by_sev[diag.severity.value] = by_sev.get(diag.severity.value, 0) + 1
        by_code[diag.code] = by_code.get(diag.code, 0) + 1
    if audits:
        doc["audit"] = {
            path: audit.as_dict() for path, audit in audits.items()
        }
    return doc


# -- SARIF --------------------------------------------------------------------


def _physical_location(path: Optional[str], span) -> dict:
    return {
        "artifactLocation": {"uri": path or "<program>"},
        "region": {
            "startLine": max(span.line, 1),
            "startColumn": max(span.column, 1),
            "endLine": max(span.end_line, 1),
            "endColumn": max(span.end_column, 1),
        },
    }


def _fingerprint(diag: Diagnostic) -> str:
    """A stable identity for one finding across runs.

    Built only from the rule, the file, and the flagged region -- not the
    message text -- so re-running on an unchanged file (or one where only
    diagnostics wording changed) dedupes in code-scanning UIs.
    """
    key = ":".join((
        diag.code,
        diag.path or "<program>",
        str(diag.span.line), str(diag.span.column),
        str(diag.span.end_line), str(diag.span.end_column),
    ))
    return hashlib.sha256(key.encode()).hexdigest()[:32]


def _flow_location(step: FlowStep, path: Optional[str],
                   step_id: Optional[int] = None) -> dict:
    loc = {
        "physicalLocation": _physical_location(path, step.span),
        "message": {"text": f"[{step.kind}] {step.message}"},
    }
    if step_id is not None:
        loc["id"] = step_id
    return loc


def render_sarif(diagnostics: Sequence[Diagnostic]) -> dict:
    """A SARIF 2.1.0 log with one run covering every analyzed file.

    Diagnostics carrying a flow path (``repro lint --explain``) emit it
    twice, per the code-scanning conventions: as a ``codeFlows`` thread
    flow (source first, sink last) and as numbered ``relatedLocations``.
    """
    rule_order = list(RULES)
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.full_description},
            "helpUri": rule.help_uri,
            "help": {"text": rule.help_text},
            "defaultConfiguration": {"level": rule.sarif_level},
        }
        for rule in RULES.values()
    ]
    results = []
    for diag in diagnostics:
        result = {
            "ruleId": diag.code,
            "ruleIndex": rule_order.index(diag.code),
            "level": diag.severity.sarif_level,
            "message": {"text": diag.message},
            "locations": [{
                "physicalLocation": _physical_location(
                    diag.path, diag.span
                ),
            }],
            "partialFingerprints": {
                "reproLint/v1": _fingerprint(diag),
            },
        }
        if diag.fix is not None:
            result["fixes"] = [{
                "description": {
                    "text": f"Replace with the {RULES[diag.code].name} "
                            "rewrite.",
                },
                "artifactChanges": [{
                    "artifactLocation": {"uri": diag.path or "<program>"},
                    "replacements": [{
                        "deletedRegion": _physical_location(
                            diag.path, diag.span
                        )["region"],
                        "insertedContent": {"text": diag.fix},
                    }],
                }],
            }]
        if diag.flow:
            result["codeFlows"] = [{
                "threadFlows": [{
                    "locations": [
                        {"location": _flow_location(step, diag.path)}
                        for step in diag.flow
                    ],
                }],
            }]
            result["relatedLocations"] = [
                _flow_location(step, diag.path, step_id=index)
                for index, step in enumerate(diag.flow)
            ]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/example/repro#static-analysis",
                    "rules": rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def dump(document: dict, path: Optional[str] = None) -> str:
    """Serialize a JSON/SARIF document (to ``path`` when given)."""
    text = json.dumps(document, indent=2, sort_keys=False) + "\n"
    if path:
        with open(path, "w") as handle:
            handle.write(text)
    return text
