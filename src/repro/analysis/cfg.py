"""Control-flow graphs for the timing-label language.

The language is structured (Fig. 1: sequencing, ``if``, ``while``,
``mitigate``), so its CFG is built by structural recursion rather than by
leader analysis.  A :class:`BasicBlock` holds a maximal straight-line run
of *atomic* commands (``skip``, assignments, ``sleep``) and at most one
*terminator* -- an ``if``/``while`` guard or a ``mitigate`` header -- whose
out-edges carry a :class:`EdgeKind`:

* ``SEQ``   fall-through between blocks;
* ``TRUE``/``FALSE``  the two sides of an ``if`` or ``while`` guard;
* ``BACK``  the loop back-edge from a ``while`` body to its guard;
* ``ENTER``/``EXIT``  into and out of a ``mitigate`` body.

Reachability is where the dataflow layer earns precision over the
syntactic TL016 lint: :func:`reachable_commands` consults a constant-
propagation solution (:mod:`repro.analysis.dataflow`) so that a guard that
is *provably* constant -- even through variable assignments the syntactic
fold cannot see -- prunes the dead edge, and everything after a
non-terminating ``while`` is dead too.  The pruned set feeds the TL017/
TL020 lints and the reachable Theorem 2 bound in
:mod:`repro.analysis.audit`.

``repro flow --dot cfg`` renders the graph via :func:`cfg_to_dot`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..lang import ast
from ..lang.pretty import pretty_expr


class EdgeKind(enum.Enum):
    """Why control may pass from one block to another."""

    SEQ = "seq"
    TRUE = "true"
    FALSE = "false"
    BACK = "back"
    ENTER = "enter"
    EXIT = "exit"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Edge:
    """A directed control-flow edge between two blocks."""

    src: int
    dst: int
    kind: EdgeKind


@dataclass
class BasicBlock:
    """A maximal straight-line run of atomic commands.

    ``terminator`` (when set) is the ``if``/``while``/``mitigate`` command
    whose guard or header this block evaluates last; its out-edges are the
    branch/loop/mitigate edges.  ``ENTRY``/``EXIT`` sentinel blocks carry
    no commands.
    """

    block_id: int
    statements: List[ast.LabeledCommand] = field(default_factory=list)
    terminator: Optional[ast.LabeledCommand] = None

    @property
    def commands(self) -> Tuple[ast.LabeledCommand, ...]:
        """Statements plus the terminator, in evaluation order."""
        if self.terminator is not None:
            return tuple(self.statements) + (self.terminator,)
        return tuple(self.statements)

    @property
    def span(self) -> ast.Span:
        """The region from the first to the last command in the block."""
        cmds = self.commands
        if not cmds:
            return ast.SYNTHETIC_SPAN
        first, last = cmds[0].span, cmds[-1].span
        if first.is_synthetic or last.is_synthetic:
            return ast.SYNTHETIC_SPAN
        return ast.Span(first.line, first.column,
                        last.end_line, last.end_column)

    def label(self) -> str:
        """A short human-readable rendering (used by the DOT export)."""
        parts = [_describe(cmd) for cmd in self.statements]
        if self.terminator is not None:
            parts.append(_describe(self.terminator))
        return "\\n".join(parts) if parts else f"B{self.block_id}"


def _describe(cmd: ast.LabeledCommand) -> str:
    if isinstance(cmd, ast.Skip):
        return "skip"
    if isinstance(cmd, ast.Assign):
        return f"{cmd.target} := {pretty_expr(cmd.expr)}"
    if isinstance(cmd, ast.ArrayAssign):
        return (f"{cmd.array}[{pretty_expr(cmd.index)}] := "
                f"{pretty_expr(cmd.expr)}")
    if isinstance(cmd, ast.Sleep):
        return f"sleep({pretty_expr(cmd.duration)})"
    if isinstance(cmd, ast.If):
        return f"if {pretty_expr(cmd.cond)}"
    if isinstance(cmd, ast.While):
        return f"while {pretty_expr(cmd.cond)}"
    if isinstance(cmd, ast.Mitigate):
        return f"mitigate({pretty_expr(cmd.budget)}, {cmd.level})"
    return type(cmd).__name__


@dataclass
class CFG:
    """A whole program's control-flow graph."""

    blocks: Dict[int, BasicBlock]
    edges: List[Edge]
    entry: int
    exit: int
    #: node_id of every command -> the block that evaluates it.
    block_of: Dict[int, int]

    def successors(self, block_id: int) -> List[Edge]:
        return [e for e in self.edges if e.src == block_id]

    def predecessors(self, block_id: int) -> List[Edge]:
        return [e for e in self.edges if e.dst == block_id]

    def reachable_blocks(
        self,
        follow: Optional[Callable[[Edge], bool]] = None,
    ) -> FrozenSet[int]:
        """Block ids reachable from the entry, optionally filtering edges."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            for edge in self.successors(bid):
                if follow is None or follow(edge):
                    stack.append(edge.dst)
        return frozenset(seen)


class _Builder:
    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self.edges: List[Edge] = []
        self.block_of: Dict[int, int] = {}
        self._next = 0

    def new_block(self) -> BasicBlock:
        block = BasicBlock(block_id=self._next)
        self.blocks[self._next] = block
        self._next += 1
        return block

    def edge(self, src: int, dst: int, kind: EdgeKind) -> None:
        self.edges.append(Edge(src, dst, kind))

    def build(self, cmd: ast.Command, current: BasicBlock) -> BasicBlock:
        """Append ``cmd``'s flow starting in ``current``; return the block
        control is in afterwards."""
        if isinstance(cmd, ast.Seq):
            current = self.build(cmd.first, current)
            return self.build(cmd.second, current)

        assert isinstance(cmd, ast.LabeledCommand)

        if isinstance(cmd, ast.If):
            current.terminator = cmd
            self.block_of[cmd.node_id] = current.block_id
            then_entry = self.new_block()
            else_entry = self.new_block()
            self.edge(current.block_id, then_entry.block_id, EdgeKind.TRUE)
            self.edge(current.block_id, else_entry.block_id, EdgeKind.FALSE)
            then_exit = self.build(cmd.then_branch, then_entry)
            else_exit = self.build(cmd.else_branch, else_entry)
            join = self.new_block()
            self.edge(then_exit.block_id, join.block_id, EdgeKind.SEQ)
            self.edge(else_exit.block_id, join.block_id, EdgeKind.SEQ)
            return join

        if isinstance(cmd, ast.While):
            guard = self.new_block()
            self.edge(current.block_id, guard.block_id, EdgeKind.SEQ)
            guard.terminator = cmd
            self.block_of[cmd.node_id] = guard.block_id
            body_entry = self.new_block()
            after = self.new_block()
            self.edge(guard.block_id, body_entry.block_id, EdgeKind.TRUE)
            self.edge(guard.block_id, after.block_id, EdgeKind.FALSE)
            body_exit = self.build(cmd.body, body_entry)
            self.edge(body_exit.block_id, guard.block_id, EdgeKind.BACK)
            return after

        if isinstance(cmd, ast.Mitigate):
            current.terminator = cmd
            self.block_of[cmd.node_id] = current.block_id
            body_entry = self.new_block()
            self.edge(current.block_id, body_entry.block_id, EdgeKind.ENTER)
            body_exit = self.build(cmd.body, body_entry)
            after = self.new_block()
            self.edge(body_exit.block_id, after.block_id, EdgeKind.EXIT)
            return after

        # Atomic commands extend the current straight-line run -- unless a
        # terminator already sealed it, in which case flow fell through to a
        # fresh block upstream, so this cannot happen.
        assert current.terminator is None
        current.statements.append(cmd)
        self.block_of[cmd.node_id] = current.block_id
        return current


def build_cfg(program: ast.Command) -> CFG:
    """Build the control-flow graph of a whole program."""
    builder = _Builder()
    entry = builder.new_block()
    first = builder.new_block()
    builder.edge(entry.block_id, first.block_id, EdgeKind.SEQ)
    last = builder.build(program, first)
    exit_block = builder.new_block()
    builder.edge(last.block_id, exit_block.block_id, EdgeKind.SEQ)
    return CFG(
        blocks=builder.blocks,
        edges=builder.edges,
        entry=entry.block_id,
        exit=exit_block.block_id,
        block_of=builder.block_of,
    )


# -- constant-pruned reachability ---------------------------------------------


def _guard_value(
    cmd: ast.LabeledCommand,
    constants: Optional["object"],
) -> Optional[int]:
    """The guard's provably-constant value at this occurrence, if any.

    ``constants`` is a :class:`repro.analysis.dataflow.Solution` for the
    :class:`~repro.analysis.dataflow.ConstantPropagation` problem (or None
    for purely syntactic folding).
    """
    from .dataflow import eval_const  # local import: dataflow imports cfg

    if not isinstance(cmd, (ast.If, ast.While)):
        return None
    env: Dict[str, int] = {}
    if constants is not None:
        fact = constants.before(cmd.node_id)
        if fact is not None:
            env = dict(fact)
    return eval_const(cmd.cond, env)


def reachable_commands(
    cfg: CFG,
    constants: Optional["object"] = None,
) -> FrozenSet[int]:
    """node_ids of every command reachable from the entry.

    With a constant-propagation ``constants`` solution, provably-constant
    guards prune the dead side: only the taken edge of a constant ``if`` is
    followed, a constantly-false ``while`` never enters its body, and a
    constantly-true ``while`` never reaches the code after it.
    """
    guard_values: Dict[int, int] = {}
    for block in cfg.blocks.values():
        term = block.terminator
        if term is None:
            continue
        value = _guard_value(term, constants)
        if value is not None:
            guard_values[block.block_id] = value

    def follow(edge: Edge) -> bool:
        if edge.src not in guard_values:
            return True
        taken = EdgeKind.TRUE if guard_values[edge.src] else EdgeKind.FALSE
        if edge.kind in (EdgeKind.TRUE, EdgeKind.FALSE):
            return edge.kind == taken
        return True

    live_blocks = cfg.reachable_blocks(follow)
    return frozenset(
        node_id for node_id, bid in cfg.block_of.items()
        if bid in live_blocks
    )


# -- DOT export ----------------------------------------------------------------


def cfg_to_dot(cfg: CFG, title: str = "cfg", costs=None) -> str:
    """Render the CFG in Graphviz DOT syntax.

    ``costs`` (a :class:`repro.analysis.cost.CostReport`) annotates each
    block with the sum of its commands' static cycle intervals on that
    report's hardware model (``repro flow --dot cfg --costs MODEL``).
    """
    if costs is not None:
        title = f"{title}_{costs.hardware}"
    lines = [f"digraph {title} {{", "  node [shape=box, fontname=monospace];"]
    for bid in sorted(cfg.blocks):
        block = cfg.blocks[bid]
        if bid == cfg.entry:
            text = "ENTRY"
        elif bid == cfg.exit:
            text = "EXIT"
        else:
            text = block.label()
            if not block.span.is_synthetic:
                text = f"B{bid} @ {block.span}\\n{text}"
            if costs is not None:
                intervals = [
                    costs.per_command[cmd.node_id]
                    for cmd in block.commands
                    if cmd.node_id in costs.per_command
                ]
                if intervals:
                    total = intervals[0]
                    for interval in intervals[1:]:
                        total = total + interval
                    text = f"{text}\\ncost {total}"
        lines.append(f'  b{bid} [label="{text}"];')
    for edge in cfg.edges:
        style = ""
        if edge.kind in (EdgeKind.TRUE, EdgeKind.FALSE):
            style = f' [label="{edge.kind}"]'
        elif edge.kind == EdgeKind.BACK:
            style = ' [label="back", style=dashed]'
        elif edge.kind in (EdgeKind.ENTER, EdgeKind.EXIT):
            style = f' [label="{edge.kind}", style=dotted]'
        lines.append(f"  b{edge.src} -> b{edge.dst}{style};")
    lines.append("}")
    return "\n".join(lines)
