"""The timing-dependence graph (TDG) and flow-path explanations.

The Fig. 4 type system *rejects* a leaky program; this module says *how*
it leaks.  :func:`build_tdg` runs a taint-style abstract interpretation
that mirrors the typing rules with variable sets in place of labels:

* **explicit flows** -- ``x := e`` makes ``x``'s value depend on every
  variable of ``e`` (a :class:`ValueEdge`);
* **implicit flows** -- an assignment under an ``if``/``while`` guard
  additionally depends on the guard's variables;
* **timing flows** -- per command, the set of variables whose *values*
  can influence that command's **start time**: ``sleep`` durations,
  branch/loop guards (T-IF/T-WHILE raise the timing label by the guard),
  array-index addresses (cache-visible), and ``mitigate`` budgets.
  ``mitigate`` *absorbs* its body's timing taint exactly as T-MTG does:
  the command's outgoing taint is only budget ⊔ incoming.

On top of the TDG, :class:`FlowExplainer` reconstructs step-by-step
source→sink paths for the flow diagnostics (TL001/TL002/TL003/TL006 and
the TL010/TL013 lints), walking *reaching definitions*
(:mod:`repro.analysis.dataflow`) backwards so every step cites a real
definition site.  ``repro lint --explain`` renders these as numbered
steps and as SARIF ``codeFlows``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..lang import ast
from ..lattice import Label, Lattice
from ..typesystem.environment import SecurityEnvironment
from .cfg import CFG
from .dataflow import ReachingDefinitions, Solution, solve
from .diagnostics import Diagnostic, FlowPath, FlowStep


@dataclass(frozen=True)
class TaintSource:
    """A variable (with its Gamma level) that can influence an observation."""

    name: str
    label: Label


@dataclass(frozen=True)
class ValueEdge:
    """``src``'s value flows into ``dst`` at the assignment ``node_id``."""

    src: str
    dst: str
    node_id: int
    kind: str  # "explicit" | "implicit"
    guard_node: Optional[int] = None


def _index_vars(expr: ast.Expr) -> FrozenSet[str]:
    """Variables appearing inside array subscripts of ``expr``: their values
    choose the address, which is visible in cache state."""
    out: Set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ArrayRead):
            out |= node.index.variables()
        stack.extend(node.children())
    return frozenset(out)


def duration_vars(cmd: ast.LabeledCommand) -> FrozenSet[str]:
    """Variables whose *values* can influence this command's own duration
    (or, for guards, the duration of the region it controls)."""
    if isinstance(cmd, ast.Sleep):
        return cmd.duration.variables()
    if isinstance(cmd, (ast.If, ast.While)):
        return cmd.cond.variables() | _index_vars(cmd.cond)
    if isinstance(cmd, ast.Mitigate):
        return cmd.budget.variables()
    if isinstance(cmd, ast.Assign):
        return _index_vars(cmd.expr)
    if isinstance(cmd, ast.ArrayAssign):
        return cmd.index.variables() | _index_vars(cmd.expr)
    return frozenset()


@dataclass
class TimingDependenceGraph:
    """Per-command timing-taint facts plus the value-dependence edges."""

    gamma: SecurityEnvironment
    lattice: Lattice
    #: node_id -> {var: node_id of the command that injected it into timing}.
    start_taint: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: node_id -> value-closure of the command's own duration variables.
    contributed: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: var -> incoming value edges (explicit and implicit).
    value_deps: Dict[str, Tuple[ValueEdge, ...]] = field(default_factory=dict)
    #: node_id -> enclosing If/While guards, outermost first.
    guards_of: Dict[int, Tuple[ast.LabeledCommand, ...]] = (
        field(default_factory=dict))
    #: mit_id -> the body's final timing-taint variable set.
    mitigate_body_taint: Dict[str, FrozenSet[str]] = field(
        default_factory=dict)
    #: node_id -> the command itself.
    commands: Dict[int, ast.LabeledCommand] = field(default_factory=dict)

    # -- queries ---------------------------------------------------------------

    def start_sources(self, node_id: int) -> FrozenSet[TaintSource]:
        """The variables (with levels) that can influence when ``node_id``
        starts executing."""
        return frozenset(
            TaintSource(name, self.gamma[name])
            for name in self.start_taint.get(node_id, ())
        )

    def timing_injector(self, node_id: int, name: str) -> Optional[int]:
        """The command that put ``name`` into ``node_id``'s timing taint."""
        return self.start_taint.get(node_id, {}).get(name)

    def timing_tainted(
        self, node_id: int, observer: Optional[Label] = None
    ) -> bool:
        """Does anything not observable at ``observer`` (default: bottom)
        influence this command's start time?"""
        observer = observer if observer is not None else self.lattice.bottom
        return any(
            not source.label.flows_to(observer)
            for source in self.start_sources(node_id)
        )

    def contributes_timing(
        self, node_id: int, observer: Optional[Label] = None
    ) -> bool:
        """Does this command's *own* timing effect vary with anything not
        observable at ``observer``?  Covers value-borne variation (secret
        sleeps, guards, array indices) and label-borne variation: a read
        label above the observer (the machine environment it times
        against is confidential), or -- mirroring T-ASGN's end label
        Gamma(x) -- a write into a confidential variable, whose partition
        state the write's duration may depend on."""
        observer = observer if observer is not None else self.lattice.bottom
        for name in self.contributed.get(node_id, ()):
            if not self.gamma[name].flows_to(observer):
                return True
        cmd = self.commands.get(node_id)
        if cmd is None:
            return False
        if cmd.read_label is not None \
                and not cmd.read_label.flows_to(observer):
            return True
        target = None
        if isinstance(cmd, ast.Assign):
            target = cmd.target
        elif isinstance(cmd, ast.ArrayAssign):
            target = cmd.array
        if target is not None \
                and not self.gamma[target].flows_to(observer):
            return True
        return False

    def value_closure(self, names: FrozenSet[str]) -> FrozenSet[str]:
        """``names`` plus every variable whose value can transitively flow
        into one of them."""
        seen: Set[str] = set(names)
        work = list(names)
        while work:
            name = work.pop()
            for edge in self.value_deps.get(name, ()):
                if edge.src not in seen:
                    seen.add(edge.src)
                    work.append(edge.src)
        return frozenset(seen)


class _TDGBuilder:
    def __init__(self, gamma: SecurityEnvironment):
        self.tdg = TimingDependenceGraph(gamma=gamma, lattice=gamma.lattice)

    # -- pass 1: value-dependence edges ---------------------------------------

    def collect_value_edges(
        self, cmd: ast.Command, guards: Tuple[ast.LabeledCommand, ...]
    ) -> None:
        if isinstance(cmd, ast.Seq):
            self.collect_value_edges(cmd.first, guards)
            self.collect_value_edges(cmd.second, guards)
            return

        assert isinstance(cmd, ast.LabeledCommand)
        self.tdg.commands[cmd.node_id] = cmd
        self.tdg.guards_of[cmd.node_id] = guards

        def add(dst: str, srcs: FrozenSet[str]) -> None:
            edges = list(self.tdg.value_deps.get(dst, ()))
            for src in sorted(srcs):
                edges.append(ValueEdge(src, dst, cmd.node_id, "explicit"))
            for guard in guards:
                cond = (guard.cond.variables()
                        if isinstance(guard, (ast.If, ast.While))
                        else frozenset())
                for src in sorted(cond):
                    edges.append(ValueEdge(
                        src, dst, cmd.node_id, "implicit",
                        guard_node=guard.node_id,
                    ))
            self.tdg.value_deps[dst] = tuple(edges)

        if isinstance(cmd, ast.Assign):
            add(cmd.target, cmd.expr.variables())
        elif isinstance(cmd, ast.ArrayAssign):
            add(cmd.array, cmd.index.variables() | cmd.expr.variables())
        elif isinstance(cmd, (ast.If, ast.While)):
            inner = guards + (cmd,)
            for sub in cmd.subcommands():
                self.collect_value_edges(sub, inner)
        elif isinstance(cmd, ast.Mitigate):
            self.collect_value_edges(cmd.body, guards)

    # -- pass 2: timing taint (mirrors T-SKIP/T-ASGN/T-IF/T-WHILE/T-MTG) ------

    def _closure(self, names: FrozenSet[str]) -> FrozenSet[str]:
        return self.tdg.value_closure(names)

    def _inject(
        self, taint: Dict[str, int], names: FrozenSet[str], site: int
    ) -> Dict[str, int]:
        if not names:
            return taint
        out = dict(taint)
        for name in names:
            out.setdefault(name, site)
        return out

    def walk(self, cmd: ast.Command, taint: Dict[str, int]) -> Dict[str, int]:
        if isinstance(cmd, ast.Seq):
            taint = self.walk(cmd.first, taint)
            return self.walk(cmd.second, taint)

        assert isinstance(cmd, ast.LabeledCommand)
        self.tdg.start_taint[cmd.node_id] = dict(taint)
        contributed = self._closure(duration_vars(cmd))
        self.tdg.contributed[cmd.node_id] = contributed

        if isinstance(cmd, ast.If):
            inner = self._inject(taint, contributed, cmd.node_id)
            t1 = self.walk(cmd.then_branch, inner)
            t2 = self.walk(cmd.else_branch, inner)
            return {**t2, **t1}

        if isinstance(cmd, ast.While):
            # Least fixpoint, exactly like T-WHILE's iteration.
            t_prime = self._inject(taint, contributed, cmd.node_id)
            while True:
                body_end = self.walk(cmd.body, t_prime)
                widened = {**body_end, **t_prime}
                if set(widened) == set(t_prime):
                    return t_prime
                t_prime = widened

        if isinstance(cmd, ast.Mitigate):
            enter = self._inject(taint, contributed, cmd.node_id)
            body_end = self.walk(cmd.body, enter)
            self.tdg.mitigate_body_taint[cmd.mit_id] = frozenset(body_end)
            # T-MTG: the body's variation is absorbed; only the budget
            # (and the incoming taint) escapes.
            return enter

        # Atomic commands: their own duration feeds everything after them.
        return self._inject(taint, contributed, cmd.node_id)


def build_tdg(
    program: ast.Command, gamma: SecurityEnvironment
) -> TimingDependenceGraph:
    """Build the timing-dependence graph of a whole program."""
    builder = _TDGBuilder(gamma)
    builder.collect_value_edges(program, ())
    builder.walk(program, {})
    return builder.tdg


# -- flow-path explanations ----------------------------------------------------

#: Rules `repro lint --explain` can derive a source->sink path for.
EXPLAINABLE = ("TL001", "TL002", "TL003", "TL006", "TL010", "TL013",
               "TL021", "TL024", "TL026", "TL027", "TL028")

_MAX_CHAIN = 16


class FlowExplainer:
    """Reconstructs source→sink paths for flow diagnostics."""

    def __init__(
        self,
        program: ast.Command,
        gamma: SecurityEnvironment,
        tdg: TimingDependenceGraph,
        cfg: CFG,
        rdefs: Optional[Solution] = None,
    ):
        self.gamma = gamma
        self.lattice = gamma.lattice
        self.tdg = tdg
        self.cfg = cfg
        self.rdefs = rdefs if rdefs is not None else solve(
            cfg, ReachingDefinitions()
        )

    # -- helpers ---------------------------------------------------------------

    def _cmd(self, node_id: Optional[int]) -> Optional[ast.LabeledCommand]:
        if node_id is None:
            return None
        return self.tdg.commands.get(node_id)

    def _step(self, kind: str, message: str,
              node_id: Optional[int]) -> FlowStep:
        cmd = self._cmd(node_id)
        span = cmd.span if cmd is not None else ast.SYNTHETIC_SPAN
        return FlowStep(kind=kind, message=message, span=span,
                        node_id=node_id)

    def _source_step(self, name: str, at_node: int) -> FlowStep:
        label = self.gamma[name]
        return self._step(
            "source",
            f"secret source: {name!r} carries {label}-level data",
            at_node,
        )

    def _value_chain(
        self,
        name: str,
        at_node: int,
        sink_level: Label,
        visited: FrozenSet[Tuple[str, int]],
        depth: int = 0,
    ) -> Optional[List[FlowStep]]:
        """Steps deriving ``name``'s value (read at ``at_node``) from a
        variable whose level does not flow to ``sink_level``."""
        if (name, at_node) in visited or depth > _MAX_CHAIN:
            return None
        visited = visited | {(name, at_node)}
        rd: ReachingDefinitions = self.rdefs.problem  # type: ignore[assignment]
        defs = sorted(rd.of(self.rdefs.before(at_node), name))
        for def_node in defs:
            def_cmd = self._cmd(def_node)
            if def_cmd is None:
                continue
            if isinstance(def_cmd, ast.Assign):
                srcs = def_cmd.expr.variables()
            elif isinstance(def_cmd, ast.ArrayAssign):
                srcs = def_cmd.index.variables() | def_cmd.expr.variables()
            else:
                continue
            for src in sorted(srcs):
                sub = self._value_chain(
                    src, def_node, sink_level, visited, depth + 1
                )
                if sub is not None:
                    sub.append(self._step(
                        "flow",
                        f"{src!r} flows into {name!r} through this "
                        "assignment",
                        def_node,
                    ))
                    return sub
            # Implicit flow into the definition: the branch it sits under.
            for guard in self.tdg.guards_of.get(def_node, ()):
                guard_vars = guard.cond.variables() if isinstance(
                    guard, (ast.If, ast.While)) else frozenset()
                for src in sorted(guard_vars):
                    sub = self._value_chain(
                        src, guard.node_id, sink_level, visited, depth + 1
                    )
                    if sub is not None:
                        sub.append(self._step(
                            "branch",
                            f"branching on {src!r} decides whether "
                            f"{name!r} is written here",
                            def_node,
                        ))
                        return sub
        if not self.gamma[name].flows_to(sink_level):
            return [self._source_step(name, at_node)]
        return None

    def _sink_step(self, message: str, node_id: Optional[int]) -> FlowStep:
        return self._step("sink", message, node_id)

    # -- per-rule assembly -----------------------------------------------------

    def explain(self, diag: Diagnostic) -> Optional[FlowPath]:
        """A source→sink path for one diagnostic, or None when the rule is
        not flow-shaped or no witness chain exists."""
        if diag.code not in EXPLAINABLE or diag.node_id is None:
            return None
        cmd = self._cmd(diag.node_id)
        if cmd is None:
            return None
        builder = getattr(self, f"_explain_{diag.code.lower()}", None)
        if builder is None:
            return None
        steps = builder(cmd)
        return tuple(steps) if steps else None

    def _sink_level(self, cmd: ast.LabeledCommand) -> Label:
        if isinstance(cmd, ast.Assign):
            return self.gamma[cmd.target]
        if isinstance(cmd, ast.ArrayAssign):
            return self.gamma[cmd.array]
        return self.lattice.bottom

    def _explain_tl001(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, (ast.Assign, ast.ArrayAssign)):
            return None
        target = cmd.target if isinstance(cmd, ast.Assign) else cmd.array
        sink_level = self._sink_level(cmd)
        reads = (cmd.expr.variables() if isinstance(cmd, ast.Assign)
                 else cmd.index.variables() | cmd.expr.variables())
        for name in sorted(reads):
            chain = self._value_chain(
                name, cmd.node_id, sink_level, frozenset()
            )
            if chain is not None:
                chain.append(self._sink_step(
                    f"the value is assigned to {target!r} at "
                    f"{sink_level} -- the flagged sink",
                    cmd.node_id,
                ))
                return chain
        return None

    def _explain_tl002(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, (ast.Assign, ast.ArrayAssign)):
            return None
        target = cmd.target if isinstance(cmd, ast.Assign) else cmd.array
        sink_level = self._sink_level(cmd)
        for guard in self.tdg.guards_of.get(cmd.node_id, ()):
            cond_vars = guard.cond.variables() if isinstance(
                guard, (ast.If, ast.While)) else frozenset()
            for name in sorted(cond_vars):
                chain = self._value_chain(
                    name, guard.node_id, sink_level, frozenset()
                )
                if chain is not None:
                    kind = ("while" if isinstance(guard, ast.While)
                            else "if")
                    chain.append(self._step(
                        "branch",
                        f"the {kind} guard branches on {name!r}: whether "
                        "the code below runs depends on the secret",
                        guard.node_id,
                    ))
                    chain.append(self._sink_step(
                        f"this write to {target!r} happens only on one "
                        "side of the branch -- the flagged sink",
                        cmd.node_id,
                    ))
                    return chain
        return None

    def _explain_tl003(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, (ast.Assign, ast.ArrayAssign)):
            return None
        target = cmd.target if isinstance(cmd, ast.Assign) else cmd.array
        sink_level = self._sink_level(cmd)
        taint = self.tdg.start_taint.get(cmd.node_id, {})
        for name in sorted(taint):
            if self.gamma[name].flows_to(sink_level):
                continue
            injector = taint[name]
            chain = self._value_chain(
                name, injector, sink_level, frozenset()
            )
            if chain is None:
                chain = [self._source_step(name, injector)]
            chain.append(self._step(
                "timing",
                f"the running time of this command depends on {name!r}",
                injector,
            ))
            chain.append(self._sink_step(
                f"by the time {target!r} is written here, the elapsed "
                "time already encodes the secret -- the flagged sink",
                cmd.node_id,
            ))
            return chain
        return None

    def _explain_tl006(self, cmd) -> Optional[List[FlowStep]]:
        lw = cmd.write_label if cmd.write_label is not None \
            else self.lattice.bottom
        exprs: Tuple[ast.Expr, ...] = ()
        if isinstance(cmd, ast.Assign):
            exprs = (cmd.expr,)
        elif isinstance(cmd, ast.ArrayAssign):
            exprs = (cmd.index, cmd.expr)
        elif isinstance(cmd, (ast.If, ast.While)):
            exprs = (cmd.cond,)
        elif isinstance(cmd, ast.Sleep):
            exprs = (cmd.duration,)
        elif isinstance(cmd, ast.Mitigate):
            exprs = (cmd.budget,)
        index_names: Set[str] = set()
        for expr in exprs:
            index_names |= _index_vars(expr)
            if isinstance(cmd, ast.ArrayAssign) and expr is cmd.index:
                index_names |= expr.variables()
        for name in sorted(index_names):
            chain = self._value_chain(name, cmd.node_id, lw, frozenset())
            if chain is not None:
                chain.append(self._sink_step(
                    f"{name!r} selects the array element's address here; "
                    f"the touched cache line is visible at {lw} -- the "
                    "flagged sink",
                    cmd.node_id,
                ))
                return chain
        return None

    def _explain_tl010(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, ast.Sleep):
            return None
        for name in sorted(cmd.duration.variables()):
            chain = self._value_chain(
                name, cmd.node_id, self.lattice.bottom, frozenset()
            )
            if chain is not None:
                chain.append(self._sink_step(
                    f"the suspension lasts {name!r}-many cycles: the "
                    "duration is directly observable -- the flagged sink",
                    cmd.node_id,
                ))
                return chain
        return None

    def _explain_tl013(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, ast.While):
            return None
        for name in sorted(cmd.cond.variables()):
            chain = self._value_chain(
                name, cmd.node_id, self.lattice.bottom, frozenset()
            )
            if chain is not None:
                chain.append(self._sink_step(
                    f"the loop iterates until {name!r} changes: iteration "
                    "count, and thus timing, is unbounded in the secret "
                    "-- the flagged sink",
                    cmd.node_id,
                ))
                return chain
        return None

    def _explain_tl021(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, ast.If):
            return None
        for name in sorted(cmd.cond.variables()):
            chain = self._value_chain(
                name, cmd.node_id, self.lattice.bottom, frozenset()
            )
            if chain is not None:
                chain.append(self._sink_step(
                    f"the guard reads {name!r} and the arms' static cycle "
                    "costs are disjoint: the elapsed time announces which "
                    "arm ran -- the flagged sink",
                    cmd.node_id,
                ))
                return chain
        return None

    def _explain_tl024(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, ast.While):
            return None
        # The secret sits in the *controlling* guards, not the (public)
        # loop guard: chase any secret variable that decides whether the
        # unbounded loop runs at all.
        for guard in self.tdg.guards_of.get(cmd.node_id, ()):
            if guard.node_id == cmd.node_id:
                continue
            guard_vars = guard.cond.variables() if isinstance(
                guard, (ast.If, ast.While)) else frozenset()
            for name in sorted(guard_vars):
                chain = self._value_chain(
                    name, guard.node_id, self.lattice.bottom, frozenset()
                )
                if chain is not None:
                    chain.append(self._step(
                        "branch",
                        f"branching on {name!r} decides whether this "
                        "unbounded (⊤-cost) loop executes",
                        guard.node_id,
                    ))
                    chain.append(self._sink_step(
                        "the loop's cycle cost has no finite static bound: "
                        "running it or not shifts the clock by an "
                        "unbounded amount -- the flagged sink",
                        cmd.node_id,
                    ))
                    return chain
        return None

    def _secret_branch_chain(
        self, root: ast.Command
    ) -> Optional[Tuple[List[FlowStep], ast.LabeledCommand]]:
        """A source chain into the first secret-guarded branch under
        ``root`` (the fork the capacity census counts)."""
        for sub in ast.labeled_commands(root):
            if not isinstance(sub, (ast.If, ast.While)):
                continue
            for name in sorted(sub.cond.variables()):
                chain = self._value_chain(
                    name, sub.node_id, self.lattice.bottom, frozenset()
                )
                if chain is not None:
                    chain.append(self._step(
                        "branch",
                        f"branching on {name!r} forks the execution into "
                        "timing-distinguishable classes",
                        sub.node_id,
                    ))
                    return chain, sub
        return None

    def _explain_tl026(self, cmd) -> Optional[List[FlowStep]]:
        # Anchored at the widest fork the census counted: an If guard, or
        # any labeled command when the fork was synthetic.
        found = self._secret_branch_chain(cmd)
        if found is None:
            return None
        chain, _branch = found
        chain.append(self._sink_step(
            "the timing-equivalence classes this fork creates push the "
            "channel capacity past the file's declared `// budget:` "
            "bits bound -- the flagged sink",
            cmd.node_id,
        ))
        return chain

    def _explain_tl027(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, ast.Mitigate):
            return None
        found = self._secret_branch_chain(cmd.body)
        steps: List[FlowStep] = found[0] if found else []
        steps.append(self._step(
            "mitigate",
            "this mitigate absorbs the body's variation into a single "
            "deadline class -- capacity is already at its floor",
            cmd.node_id,
        ))
        steps.append(self._sink_step(
            "a smaller initial budget reaches the same single deadline "
            "class: the padding beyond it is pure latency, not "
            "mitigation -- the flagged sink",
            cmd.node_id,
        ))
        return steps

    def _explain_tl028(self, cmd) -> Optional[List[FlowStep]]:
        if not isinstance(cmd, ast.Mitigate):
            return None
        found = self._secret_branch_chain(cmd.body)
        steps: List[FlowStep] = found[0] if found else []
        steps.append(self._step(
            "mitigate",
            "the body's cycle spread straddles several deadlines of this "
            "mitigate's prediction sequence",
            cmd.node_id,
        ))
        steps.append(self._sink_step(
            "which deadline fires is decided by the secret, so the "
            "quantum itself -- not the body's data flow -- carries the "
            "capacity -- the flagged sink",
            cmd.node_id,
        ))
        return steps


def attach_flows(
    diagnostics: List[Diagnostic],
    explainer: FlowExplainer,
) -> None:
    """Attach a flow path to every explainable diagnostic (in place)."""
    for diag in diagnostics:
        if diag.flow is None:
            diag.flow = explainer.explain(diag)


# -- DOT export ----------------------------------------------------------------


def tdg_to_dot(tdg: TimingDependenceGraph, title: str = "tdg") -> str:
    """Render the timing-dependence graph in Graphviz DOT syntax: variable
    vertices, command vertices, and explicit/implicit/timing edges."""
    lines = [f"digraph {title} {{", "  rankdir=LR;",
             "  node [fontname=monospace];"]
    var_names = set(tdg.value_deps)
    for edges in tdg.value_deps.values():
        var_names.update(e.src for e in edges)
    for name in sorted(var_names):
        label = tdg.gamma[name]
        lines.append(
            f'  v_{name} [shape=ellipse, label="{name} : {label}"];'
        )
    used_cmds: Set[int] = set()
    for edges in tdg.value_deps.values():
        for edge in edges:
            used_cmds.add(edge.node_id)
    for node_id, taint in sorted(tdg.start_taint.items()):
        if taint:
            used_cmds.add(node_id)
    for node_id in sorted(used_cmds):
        cmd = tdg.commands.get(node_id)
        where = "" if cmd is None or cmd.span.is_synthetic \
            else f" @ {cmd.span}"
        kind = type(cmd).__name__ if cmd is not None else "?"
        lines.append(
            f'  c_{node_id} [shape=box, label="{kind}#{node_id}{where}"];'
        )
    for edges in tdg.value_deps.values():
        for edge in edges:
            style = "solid" if edge.kind == "explicit" else "dashed"
            lines.append(
                f"  v_{edge.src} -> v_{edge.dst} "
                f'[label="{edge.kind} #{edge.node_id}", style={style}];'
            )
    for node_id, taint in sorted(tdg.start_taint.items()):
        for name in sorted(taint):
            lines.append(
                f"  v_{name} -> c_{node_id} "
                '[label="timing", style=dotted, color=red];'
            )
    lines.append("}")
    return "\n".join(lines)
