"""Error recovery around the Fig. 4 type checker.

:class:`repro.typesystem.typing.TypeChecker` reports each failed side
condition through its ``_violation`` hook and is written so that every rule
continues naturally with its recovery label (an assignment's end label is
``Gamma(x)`` whether or not the flow check passed, missing annotations
recover to bottom, and so on).  :class:`CollectingTypeChecker` overrides
the hook to record a :class:`~repro.analysis.diagnostics.Diagnostic`
instead of raising, so **one run surfaces every violation** in a program.

A combined T-ASGN failure is *decomposed*: the rule joins the value label,
pc, timing start-label, and read label, so this module reports one
diagnostic per failing source -- explicit flow (TL001), implicit flow
(TL002), and timing flow (TL003) are distinct findings with distinct fixes.

The while rule iterates its body to a fixpoint, so the same violation can
recur with successively widened timing labels; diagnostics are deduplicated
per ``(code, node)``, keeping the first (least-label) report.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..lang import ast
from ..lattice import Label
from ..typesystem.environment import SecurityEnvironment, UnboundVariable
from ..typesystem.errors import TypingError
from ..typesystem.typing import TypeChecker, TypingInfo
from .diagnostics import Diagnostic, Severity
from .rules import KIND_CODES, RULES


class TolerantEnvironment(SecurityEnvironment):
    """A Gamma that maps unbound names to bottom instead of raising.

    The lint engine must keep going past a missing binding (the checker
    would otherwise die mid-derivation); the engine reports each unbound
    name as a TL009 diagnostic from its own pre-pass, so nothing is lost.
    """

    def __init__(self, base: SecurityEnvironment):
        super().__init__(base.lattice, dict(base))
        self.unbound: Set[str] = set()

    def __getitem__(self, name: str) -> Label:
        try:
            return super().__getitem__(name)
        except UnboundVariable:
            self.unbound.add(name)
            return self.lattice.bottom


def _span_of(command: Optional[ast.Command]) -> Tuple[ast.Span, Optional[int]]:
    if isinstance(command, ast.LabeledCommand):
        return command.span, command.node_id
    return ast.SYNTHETIC_SPAN, None


class CollectingTypeChecker(TypeChecker):
    """A :class:`TypeChecker` that collects diagnostics instead of raising."""

    def __init__(
        self,
        gamma: SecurityEnvironment,
        require_cache_labels: bool = False,
    ):
        super().__init__(gamma, require_cache_labels=require_cache_labels)
        self.diagnostics: List[Diagnostic] = []
        self._seen: Set[Tuple[str, Optional[int]]] = set()

    # -- the hook --------------------------------------------------------------

    def _violation(self, err: TypingError) -> None:
        for diag in self._decompose(err):
            key = (diag.code, diag.node_id)
            if key not in self._seen:
                self._seen.add(key)
                self.diagnostics.append(diag)

    # -- decomposition ---------------------------------------------------------

    def _emit(self, code: str, message: str,
              command: Optional[ast.Command]) -> Diagnostic:
        span, node_id = _span_of(command)
        rule = RULES[code]
        return Diagnostic(
            code=code,
            message=message,
            severity=rule.severity,
            span=span,
            node_id=node_id,
            rule=rule.name,
        )

    def _decompose(self, err: TypingError) -> List[Diagnostic]:
        if err.kind == "flow":
            return self._decompose_flow(err)
        code = KIND_CODES.get(err.kind or "", "TL004")
        return [self._emit(code, err.message, err.command)]

    def _decompose_flow(self, err: TypingError) -> List[Diagnostic]:
        data = err.data
        target: Label = data["target"]
        name = data["name"]
        value: Label = data["value"]
        pc: Label = data["pc"]
        timing: Label = data["timing"]
        read_label: Label = data["read_label"]
        out = []
        if not value.flows_to(target):
            out.append(self._emit(
                "TL001",
                f"explicit flow: value at {value} does not flow to "
                f"{name} at {target}",
                err.command,
            ))
        if not pc.flows_to(target):
            out.append(self._emit(
                "TL002",
                f"implicit flow: assignment to {name} at {target} under "
                f"confidential control flow (pc = {pc})",
                err.command,
            ))
        taint = self.lattice.join(timing, read_label)
        if not taint.flows_to(target):
            out.append(self._emit(
                "TL003",
                f"timing flow: the timing start-label {timing} (with read "
                f"label {read_label}) carries timing-tainted information "
                f"into {name} at {target}; wrap the timing-variable code "
                "in a mitigate command",
                err.command,
            ))
        # The join can only exceed the target if some component does.
        assert out, "flow violation with no failing component"
        return out


def collect_typing_diagnostics(
    program: ast.Command,
    gamma: SecurityEnvironment,
    pc: Optional[Label] = None,
    start: Optional[Label] = None,
    require_cache_labels: bool = False,
) -> Tuple[List[Diagnostic], TypingInfo]:
    """Check ``program`` and return *all* typing diagnostics plus the
    (recovered) derivation facts.  Never raises :class:`TypingError`."""
    checker = CollectingTypeChecker(
        gamma, require_cache_labels=require_cache_labels
    )
    info = checker.run(program, pc, start)
    return checker.diagnostics, info


def unbound_variable_diagnostics(
    program: ast.Command, gamma: SecurityEnvironment
) -> List[Diagnostic]:
    """TL009 for every program variable Gamma does not bind, reported at
    the first command that mentions it."""
    out: List[Diagnostic] = []
    reported: Set[str] = set()
    for cmd in program.walk():
        if not isinstance(cmd, ast.LabeledCommand):
            continue
        for name in sorted(cmd.vars1()):
            if name in reported or name in gamma:
                continue
            reported.add(name)
            rule = RULES["TL009"]
            out.append(Diagnostic(
                code="TL009",
                message=(
                    f"variable {name!r} has no security label in Gamma; "
                    "assuming public (bottom) -- bind it with --gamma or "
                    "a '// gamma:' directive"
                ),
                severity=Severity.ERROR,
                span=cmd.span,
                node_id=cmd.node_id,
                rule=rule.name,
            ))
    return out
