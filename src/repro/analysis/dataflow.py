"""A small generic dataflow engine over the CFG.

:func:`solve` runs a worklist fixpoint for any :class:`Problem`: forward
or backward, with problem-supplied join and per-command transfer
functions.  Facts start *unreached* (``None``) and only reached
predecessors are joined, which keeps optimistic analyses (constant
propagation) precise: an unreached branch contributes nothing.  All the
lattices here are finite (per-program variable sets, constants with a
two-step per-variable chain) and the transfers monotone, so the fixpoint
terminates.

Three classic problem instances ship with the engine:

* :class:`ReachingDefinitions` -- which ``(variable, node_id)`` definitions
  may reach each point; powers the step-by-step flow paths of
  ``repro lint --explain`` (:mod:`repro.analysis.flows`);
* :class:`LiveVariables` -- backward liveness;
* :class:`ConstantPropagation` -- which variables are provably constant;
  powers constant-pruned reachability (:func:`repro.analysis.cfg.
  reachable_commands`), the TL018 constant-secret-branch lint, and the
  reachable Theorem 2 bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple,
)

from ..lang import ast
from ..semantics.core import _apply as _apply_binop
from .cfg import CFG, BasicBlock

Fact = Any


class Problem:
    """One dataflow problem: direction, boundary/join, and transfer."""

    #: "forward" or "backward".
    direction: str = "forward"

    def boundary(self) -> Fact:
        """The fact at the entry (forward) or exit (backward) block."""
        raise NotImplementedError

    def join(self, a: Fact, b: Fact) -> Fact:
        raise NotImplementedError

    def transfer(self, cmd: ast.LabeledCommand, fact: Fact) -> Fact:
        """The fact after evaluating one command (in flow direction)."""
        raise NotImplementedError


@dataclass
class Solution:
    """Per-block facts plus per-command replay.

    ``block_in``/``block_out`` are in *flow* direction: for a backward
    problem ``block_in`` holds the fact after the block's last command.
    ``None`` means the block was never reached.
    """

    problem: Problem
    cfg: CFG
    block_in: Dict[int, Optional[Fact]]
    block_out: Dict[int, Optional[Fact]]

    def before(self, node_id: int) -> Optional[Fact]:
        """The fact just before a command evaluates (program order for
        forward problems; for backward problems, the fact *after* it in
        program order -- i.e. before it in flow order)."""
        block_id = self.cfg.block_of.get(node_id)
        if block_id is None:
            return None
        fact = self.block_in[block_id]
        if fact is None:
            return None
        commands = self.cfg.blocks[block_id].commands
        if self.problem.direction == "backward":
            commands = tuple(reversed(commands))
        for cmd in commands:
            if cmd.node_id == node_id:
                return fact
            fact = self.problem.transfer(cmd, fact)
        raise KeyError(f"node {node_id} not in block {block_id}")

    def after(self, node_id: int) -> Optional[Fact]:
        """The fact just after a command evaluates (in flow direction)."""
        fact = self.before(node_id)
        if fact is None:
            return None
        block_id = self.cfg.block_of[node_id]
        for cmd in self.cfg.blocks[block_id].commands:
            if cmd.node_id == node_id:
                return self.problem.transfer(cmd, fact)
        raise KeyError(f"node {node_id} not in block {block_id}")


def _transfer_block(problem: Problem, block: BasicBlock, fact: Fact) -> Fact:
    commands = block.commands
    if problem.direction == "backward":
        commands = tuple(reversed(commands))
    for cmd in commands:
        fact = problem.transfer(cmd, fact)
    return fact


def solve(cfg: CFG, problem: Problem) -> Solution:
    """Worklist fixpoint of ``problem`` over ``cfg``."""
    forward = problem.direction == "forward"
    start = cfg.entry if forward else cfg.exit

    def flow_preds(bid: int) -> List[int]:
        if forward:
            return [e.src for e in cfg.predecessors(bid)]
        return [e.dst for e in cfg.successors(bid)]

    def flow_succs(bid: int) -> List[int]:
        if forward:
            return [e.dst for e in cfg.successors(bid)]
        return [e.src for e in cfg.predecessors(bid)]

    block_in: Dict[int, Optional[Fact]] = {b: None for b in cfg.blocks}
    block_out: Dict[int, Optional[Fact]] = {b: None for b in cfg.blocks}
    block_in[start] = problem.boundary()

    work = [start]
    while work:
        bid = work.pop(0)
        incoming = [block_out[p] for p in flow_preds(bid)
                    if block_out[p] is not None]
        fact = block_in[bid] if bid == start else None
        for other in incoming:
            fact = other if fact is None else problem.join(fact, other)
        if fact is None:
            continue
        block_in[bid] = fact
        out = _transfer_block(problem, cfg.blocks[bid], fact)
        if block_out[bid] is not None and out == block_out[bid]:
            continue
        block_out[bid] = out
        for succ in flow_succs(bid):
            if succ not in work:
                work.append(succ)
    return Solution(problem=problem, cfg=cfg,
                    block_in=block_in, block_out=block_out)


# -- expression helpers --------------------------------------------------------


def eval_const(
    expr: ast.Expr, env: Mapping[str, int] = {},
) -> Optional[int]:
    """Constant-fold an expression under the interpreter's own operator
    semantics, reading known-constant variables from ``env``."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Var):
        return env.get(expr.name)
    if isinstance(expr, ast.UnOp):
        value = eval_const(expr.operand, env)
        if value is None:
            return None
        return -value if expr.op == "-" else int(value == 0)
    if isinstance(expr, ast.BinOp):
        left = eval_const(expr.left, env)
        right = eval_const(expr.right, env)
        if left is None or right is None:
            return None
        try:
            return _apply_binop(expr.op, left, right)
        except ZeroDivisionError:
            return None
    return None  # ArrayRead: memory is not tracked


def _reads(cmd: ast.LabeledCommand) -> FrozenSet[str]:
    """Variables whose values the command reads in its own step."""
    if isinstance(cmd, ast.Assign):
        return cmd.expr.variables()
    if isinstance(cmd, ast.ArrayAssign):
        return cmd.index.variables() | cmd.expr.variables()
    if isinstance(cmd, (ast.If, ast.While)):
        return cmd.cond.variables()
    if isinstance(cmd, ast.Sleep):
        return cmd.duration.variables()
    if isinstance(cmd, ast.Mitigate):
        return cmd.budget.variables()
    return frozenset()


# -- reaching definitions ------------------------------------------------------

#: One definition: (variable name, node_id of the defining command).
Definition = Tuple[str, int]


class ReachingDefinitions(Problem):
    """Which definitions may reach each program point (forward, may)."""

    direction = "forward"

    def boundary(self) -> FrozenSet[Definition]:
        return frozenset()

    def join(self, a: FrozenSet[Definition],
             b: FrozenSet[Definition]) -> FrozenSet[Definition]:
        return a | b

    def transfer(self, cmd: ast.LabeledCommand,
                 fact: FrozenSet[Definition]) -> FrozenSet[Definition]:
        if isinstance(cmd, ast.Assign):
            kept = frozenset(d for d in fact if d[0] != cmd.target)
            return kept | {(cmd.target, cmd.node_id)}
        if isinstance(cmd, ast.ArrayAssign):
            # Weak update: a store to one element does not kill the others.
            return fact | {(cmd.array, cmd.node_id)}
        return fact

    def of(self, fact: Optional[FrozenSet[Definition]],
           name: str) -> FrozenSet[int]:
        """node_ids of the reaching definitions of ``name`` in ``fact``."""
        if fact is None:
            return frozenset()
        return frozenset(node for var, node in fact if var == name)


# -- live variables ------------------------------------------------------------


class LiveVariables(Problem):
    """Which variables may still be read later (backward, may)."""

    direction = "backward"

    def boundary(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer(self, cmd: ast.LabeledCommand,
                 fact: FrozenSet[str]) -> FrozenSet[str]:
        if isinstance(cmd, ast.Assign):
            return (fact - {cmd.target}) | cmd.expr.variables()
        # Array stores are weak updates: the array stays live.
        return fact | _reads(cmd)


# -- constant propagation ------------------------------------------------------

#: The fact is an immutable mapping var -> known constant; a variable
#: absent from the mapping is *not* a constant (NAC).
Constants = Tuple[Tuple[str, int], ...]


def _as_dict(fact: Constants) -> Dict[str, int]:
    return dict(fact)


def _as_fact(env: Dict[str, int]) -> Constants:
    return tuple(sorted(env.items()))


class ConstantPropagation(Problem):
    """Which integer variables are provably constant (forward, must).

    Conservative on public and secret variables alike: the analysis is
    about *values*, not labels.  A secret assigned a constant is still a
    constant -- that mismatch is exactly what TL018 reports.
    """

    direction = "forward"

    def boundary(self) -> Constants:
        return ()  # nothing known at entry: every input is NAC

    def join(self, a: Constants, b: Constants) -> Constants:
        da, db = _as_dict(a), _as_dict(b)
        return _as_fact({
            name: value for name, value in da.items()
            if db.get(name) == value
        })

    def transfer(self, cmd: ast.LabeledCommand, fact: Constants) -> Constants:
        if isinstance(cmd, ast.Assign):
            env = _as_dict(fact)
            value = eval_const(cmd.expr, env)
            if value is None:
                env.pop(cmd.target, None)
            else:
                env[cmd.target] = value
            return _as_fact(env)
        return fact
