"""The diagnostic model: what a lint finding *is*.

A :class:`Diagnostic` pins a rule code (``TL0xx``, see
:mod:`repro.analysis.rules`) to a source region with a severity, an
explanatory message, and an optional *fix-it* -- replacement source text
that, substituted for the flagged region, resolves the finding.  The
renderers (:mod:`repro.analysis.render`) know nothing about how findings
were produced; everything they need lives here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..lang.ast import SYNTHETIC_SPAN, Span


@dataclass(frozen=True)
class FlowStep:
    """One hop of a source-to-sink flow path.

    ``kind`` is one of ``source`` (where the secret enters), ``flow`` (a
    value assignment that propagates it), ``branch`` (a guard that turns
    it into control flow), ``timing`` (a command whose duration it
    influences), or ``sink`` (the flagged command).
    """

    kind: str
    message: str
    span: Span = SYNTHETIC_SPAN
    node_id: Optional[int] = None

    def as_dict(self) -> dict:
        doc = {
            "kind": self.kind,
            "message": self.message,
            "span": {
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            },
        }
        if self.node_id is not None:
            doc["node_id"] = self.node_id
        return doc


#: A full source-to-sink derivation: source first, sink last.
FlowPath = Tuple[FlowStep, ...]


class Severity(enum.Enum):
    """How bad a finding is.  Order matters: errors sort first."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` for this severity."""
        return {"error": "error", "warning": "warning", "info": "note"}[
            self.value
        ]

    @property
    def rank(self) -> int:
        return ("error", "warning", "info").index(self.value)

    def __str__(self) -> str:
        return self.value


@dataclass
class Diagnostic:
    """One lint finding, anchored to a source span."""

    code: str
    message: str
    severity: Severity
    span: Span = SYNTHETIC_SPAN
    node_id: Optional[int] = None
    path: Optional[str] = None
    #: Replacement source for the flagged region that resolves the finding.
    fix: Optional[str] = None
    rule: Optional[str] = field(default=None)
    #: Source-to-sink derivation (``repro lint --explain``), when computed.
    flow: Optional[FlowPath] = field(default=None)

    def sort_key(self) -> Tuple:
        return (
            self.path or "",
            self.span.line,
            self.span.column,
            self.severity.rank,
            self.code,
        )

    def location(self) -> str:
        """``path:line:col`` (parts omitted when unknown)."""
        where = self.path or "<program>"
        if not self.span.is_synthetic:
            where += f":{self.span.line}:{self.span.column}"
        elif self.node_id is not None:
            where += f":node#{self.node_id}"
        return where

    def as_dict(self) -> dict:
        doc = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "span": {
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            },
        }
        if self.rule:
            doc["rule"] = self.rule
        if self.path is not None:
            doc["path"] = self.path
        if self.node_id is not None:
            doc["node_id"] = self.node_id
        if self.fix is not None:
            doc["fix"] = self.fix
        if self.flow:
            doc["flow"] = [step.as_dict() for step in self.flow]
        return doc
