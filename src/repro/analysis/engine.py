"""The lint driver: directives, passes, and the per-file pipeline.

``repro lint`` runs this over one or more program files.  Fixture and
example programs declare their own analysis configuration in leading
``//`` comment directives, so a corpus sweep needs no per-file flags::

    // gamma: h=H, l=L
    // levels: L,M,H
    // adversary: L
    // infer: off
    // budget: 1.5
    // require-cache-labels

The pipeline per file: parse directives -> parse program (a syntax error
becomes a TL000 diagnostic) -> report unbound variables (TL009) against a
tolerant Gamma -> optional label inference -> the error-recovering type
check (TL001-TL008) -> AST lints (TL010+) -> static Theorem 2 audit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hardware.costmodel import CacheGeometry, contract_for
from ..lang import ast
from ..lang.lexer import LexError
from ..lang.parser import DEFAULT_LATTICE, ParseError, parse
from ..lattice import Label, Lattice, chain
from ..typesystem.environment import SecurityEnvironment
from ..typesystem.inference import infer_labels
from ..typesystem.typing import TypingInfo
from .audit import DEFAULT_HORIZON, LeakageAudit, audit_leakage
from .cfg import CFG, build_cfg, reachable_commands
from .collector import (
    TolerantEnvironment,
    collect_typing_diagnostics,
    unbound_variable_diagnostics,
)
from .dataflow import ConstantPropagation, solve
from .diagnostics import Diagnostic, Severity
from .cost import CostReport, compute_cost
from .flows import (
    FlowExplainer,
    TimingDependenceGraph,
    attach_flows,
    build_tdg,
)
from .lints import LintContext, run_lints
from .quantify import QuantifyReport, quantify
from .rules import RULES


class DirectiveError(ValueError):
    """A malformed ``//`` analysis directive."""


@dataclass
class LintOptions:
    """Configuration for one analysis run (CLI flags override directives)."""

    gamma: Dict[str, str] = field(default_factory=dict)
    levels: Optional[Tuple[str, ...]] = None
    adversary: Optional[str] = None
    #: Tri-state: None follows the file's ``// infer:`` directive (default
    #: on); True forces inference even past ``// infer: off``; False
    #: disables it outright.
    infer: Optional[bool] = None
    require_cache_labels: bool = False
    lints: bool = True
    audit: bool = True
    horizon: int = DEFAULT_HORIZON
    #: Attach source->sink flow paths to flow-shaped diagnostics.
    explain: bool = False
    #: Keep only these rule codes (None keeps everything).
    select: Optional[frozenset] = None
    #: Drop these rule codes (applied after ``select``).
    ignore: frozenset = frozenset()
    #: Channel-capacity budget in bits for TL026 (overrides the file's
    #: ``// budget:`` directive when set).
    bits_budget: Optional[float] = None


@dataclass
class LintResult:
    """Everything one file's analysis produced."""

    path: str
    source: str
    diagnostics: List[Diagnostic]
    audit: Optional[LeakageAudit] = None
    program: Optional[ast.Command] = None
    gamma: Optional[SecurityEnvironment] = None
    lattice: Optional[Lattice] = None
    typing: Optional[TypingInfo] = None
    cfg: Optional[CFG] = None
    tdg: Optional[TimingDependenceGraph] = None
    #: Static cost report on the exact ``null`` contract (lint facts).
    cost: Optional[CostReport] = None
    #: Timing-equivalence-class censuses by hardware model, when the
    #: capacity-backed passes ran (always includes ``null``; every
    #: registry model when a bits budget was declared).
    quantify: Optional[Dict[str, "QuantifyReport"]] = None
    #: The bits budget the censuses were checked against, if any.
    bits_budget: Optional[float] = None

    @property
    def fatal(self) -> bool:
        """True when the input could not even be parsed (TL000)."""
        return any(d.code == "TL000" for d in self.diagnostics)

    @property
    def clean(self) -> bool:
        return not self.diagnostics


# -- directives ----------------------------------------------------------------

_DIRECTIVE = re.compile(
    r"^//\s*(gamma|levels|adversary|infer|budget)\s*:\s*(.+)$"
)
_FLAG = re.compile(r"^//\s*(require-cache-labels)\s*$")


def parse_directives(source: str) -> Dict[str, str]:
    """Read ``// key: value`` analysis directives from the file header.

    Scanning stops at the first non-comment, non-blank line; ordinary
    comments are ignored.
    """
    found: Dict[str, str] = {}
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if not stripped.startswith("//"):
            break
        match = _DIRECTIVE.match(stripped)
        if match:
            found[match.group(1)] = match.group(2).strip()
            continue
        match = _FLAG.match(stripped)
        if match:
            found[match.group(1)] = "on"
    return found


def _parse_gamma_spec(spec: str, lattice: Lattice) -> Dict[str, Label]:
    bindings: Dict[str, Label] = {}
    for item in filter(None, (part.strip() for part in spec.split(","))):
        if "=" not in item:
            raise DirectiveError(
                f"gamma entries look like name=LEVEL, got {item!r}"
            )
        name, level = (s.strip() for s in item.split("=", 1))
        if level not in lattice:
            raise DirectiveError(
                f"unknown security level {level!r}; lattice levels are "
                f"{[l.name for l in lattice]}"
            )
        bindings[name] = lattice[level]
    return bindings


_POSITION = re.compile(r"line (\d+)(?:, column (\d+))?")


def _syntax_diagnostic(err: Exception, path: str) -> Diagnostic:
    message = str(err)
    span = ast.SYNTHETIC_SPAN
    match = _POSITION.search(message)
    if match:
        line = int(match.group(1))
        column = int(match.group(2) or 1)
        span = ast.Span(line, column, line, column + 1)
    return Diagnostic(
        code="TL000",
        message=message,
        severity=Severity.ERROR,
        span=span,
        path=path,
        rule=RULES["TL000"].name,
    )


# -- the pipeline --------------------------------------------------------------


def analyze_source(
    source: str,
    path: str = "<stdin>",
    options: Optional[LintOptions] = None,
) -> LintResult:
    """Run the full multi-pass analysis over one program's source text."""
    options = options or LintOptions()
    directives = parse_directives(source)

    levels = options.levels
    if levels is None and "levels" in directives:
        levels = tuple(
            name.strip() for name in directives["levels"].split(",")
        )
    lattice = chain(levels) if levels else DEFAULT_LATTICE

    bindings: Dict[str, Label] = {}
    if "gamma" in directives:
        bindings.update(_parse_gamma_spec(directives["gamma"], lattice))
    for name, level in options.gamma.items():
        if level not in lattice:
            raise DirectiveError(
                f"unknown security level {level!r}; lattice levels are "
                f"{[l.name for l in lattice]}"
            )
        bindings[name] = lattice[level]

    if options.infer is None:
        infer = directives.get("infer", "on") != "off"
    else:
        infer = options.infer
    require_cache = (
        options.require_cache_labels
        or "require-cache-labels" in directives
    )
    adversary_name = options.adversary or directives.get("adversary")
    if adversary_name is not None and adversary_name not in lattice:
        raise DirectiveError(
            f"unknown adversary level {adversary_name!r}"
        )
    adversary = lattice[adversary_name] if adversary_name else None

    bits_budget = options.bits_budget
    if bits_budget is None and "budget" in directives:
        raw_budget = directives["budget"]
        try:
            bits_budget = float(raw_budget)
        except ValueError:
            raise DirectiveError(
                f"budget directive must be a number of bits, got "
                f"{raw_budget!r}"
            )
        if bits_budget < 0:
            raise DirectiveError("budget directive must be >= 0 bits")

    try:
        program = parse(source, lattice)
    except (LexError, ParseError) as err:
        return LintResult(
            path=path, source=source,
            diagnostics=[_syntax_diagnostic(err, path)],
            lattice=lattice,
        )

    return _analyze(
        program, SecurityEnvironment(lattice, bindings), lattice,
        path=path, source=source, infer=infer,
        require_cache_labels=require_cache, adversary=adversary,
        options=options, bits_budget=bits_budget,
    )


def analyze_program(
    program: ast.Command,
    gamma: SecurityEnvironment,
    options: Optional[LintOptions] = None,
    path: str = "<program>",
) -> LintResult:
    """Analyze an already-built (or already-parsed) AST."""
    options = options or LintOptions()
    adversary = (
        gamma.lattice[options.adversary] if options.adversary else None
    )
    return _analyze(
        program, gamma, gamma.lattice, path=path, source="",
        infer=options.infer if options.infer is not None else True,
        require_cache_labels=options.require_cache_labels,
        adversary=adversary, options=options,
        bits_budget=options.bits_budget,
    )


def _analyze(
    program: ast.Command,
    gamma: SecurityEnvironment,
    lattice: Lattice,
    path: str,
    source: str,
    infer: bool,
    require_cache_labels: bool,
    adversary: Optional[Label],
    options: LintOptions,
    bits_budget: Optional[float] = None,
) -> LintResult:
    tolerant = TolerantEnvironment(gamma)
    diagnostics = unbound_variable_diagnostics(program, gamma)

    if infer:
        infer_labels(program, tolerant)

    typing_diags, info = collect_typing_diagnostics(
        program, tolerant, require_cache_labels=require_cache_labels
    )
    diagnostics.extend(typing_diags)

    # The dataflow layer: CFG, constant-pruned reachability, and the
    # timing-dependence graph.  Everything downstream (TL017-TL020, the
    # reachable Theorem 2 bound, --explain paths) consumes these facts.
    cfg = build_cfg(program)
    constants = solve(cfg, ConstantPropagation())
    reachable = reachable_commands(cfg, constants)
    tdg = build_tdg(program, tolerant)

    # Static cost facts for the TL021-TL025 family: the exact `null`
    # contract keeps the lint comparisons deterministic; the set-straddle
    # check falls back to the paper machine's L1-data geometry because
    # the null model has no caches of its own.
    contract = contract_for("null")
    cost = compute_cost(program, contract=contract)
    geometry = contract.geometry()
    if geometry is None:
        geometry = CacheGeometry.of(contract.params.l1_data)

    # Capacity facts for the TL026-TL028 family, computed only when those
    # passes can actually emit (select/ignore pre-filtering): TL027/TL028
    # need the deterministic `null` census; TL026 compares every registry
    # model against the declared bits budget.
    def _wanted(code: str) -> bool:
        if options.select is not None and code not in options.select:
            return False
        return code not in options.ignore

    censuses: Optional[Dict[str, QuantifyReport]] = None
    if options.lints and (
            _wanted("TL027") or _wanted("TL028")
            or (bits_budget is not None and _wanted("TL026"))):
        censuses = {
            "null": quantify(
                program, tolerant, hardware="null",
                horizon=options.horizon,
            )
        }
        if bits_budget is not None and _wanted("TL026"):
            from ..hardware.registry import REGISTRY

            for name in REGISTRY.names():
                if name not in censuses:
                    censuses[name] = quantify(
                        program, tolerant, hardware=name,
                        horizon=options.horizon,
                    )

    if options.lints:
        ctx = LintContext(
            program=program, gamma=tolerant, lattice=lattice, typing=info,
            cfg=cfg, constants=constants, reachable=reachable, tdg=tdg,
            cost=cost, geometry=geometry,
            quantify=censuses, bits_budget=bits_budget,
        )
        diagnostics.extend(run_lints(ctx))

    if options.explain:
        explainer = FlowExplainer(program, tolerant, tdg, cfg)
        attach_flows(diagnostics, explainer)

    if options.select is not None:
        diagnostics = [d for d in diagnostics if d.code in options.select]
    if options.ignore:
        diagnostics = [
            d for d in diagnostics if d.code not in options.ignore
        ]

    for diag in diagnostics:
        diag.path = path
    diagnostics.sort(key=Diagnostic.sort_key)

    audit = None
    if options.audit:
        audit = audit_leakage(
            program, lattice, info,
            adversary=adversary, horizon=options.horizon,
            reachable=reachable, cost=cost,
        )

    return LintResult(
        path=path, source=source, diagnostics=diagnostics,
        audit=audit, program=program, gamma=tolerant,
        lattice=lattice, typing=info, cfg=cfg, tdg=tdg, cost=cost,
        quantify=censuses, bits_budget=bits_budget,
    )
