"""The paper's Sec. 8 case studies: web login and multi-block RSA."""

from .hashing import DIGEST_MOD, encode, fnv1a, hash_loop
from .password import PasswordChecker
from .login import (
    CredentialTable,
    LoginSystem,
    login_attempt_times,
    summarize_valid_invalid,
)
from .rsa import RsaSystem, decryption_times
from .sbox_cipher import (
    KEY_LENGTH,
    SBOX_SIZE,
    SboxCipher,
    random_key,
    reference_encrypt,
    standard_sbox,
)
from .rsa_math import (
    RsaKey,
    decrypt,
    egcd,
    encrypt,
    encrypt_blocks,
    generate_keypair,
    is_prime,
    modinv,
    random_message,
    random_prime,
)

__all__ = [
    "CredentialTable",
    "KEY_LENGTH",
    "SBOX_SIZE",
    "SboxCipher",
    "DIGEST_MOD",
    "LoginSystem",
    "PasswordChecker",
    "RsaKey",
    "RsaSystem",
    "decrypt",
    "decryption_times",
    "egcd",
    "encode",
    "encrypt",
    "encrypt_blocks",
    "fnv1a",
    "generate_keypair",
    "hash_loop",
    "is_prime",
    "login_attempt_times",
    "modinv",
    "random_key",
    "random_message",
    "reference_encrypt",
    "random_prime",
    "standard_sbox",
    "summarize_valid_invalid",
]
