"""An early-exit password check: the classic direct timing channel.

The oldest timing attack in the book (it predates even Kocher): comparing a
guess against a stored secret byte-by-byte with early exit makes response
time proportional to the length of the matching prefix, so an adaptive
attacker recovers the secret one position at a time.

Unlike the cache channels, this one is *direct* -- it exists on any
hardware, including the paper's secure designs, because it flows through
control (loop trip count), not through machine-environment state.  That is
the division of labor the paper draws: hardware discharges Properties 5-7,
but only the language level (the type system + ``mitigate``) can handle
direct dependencies.  Accordingly:

* the unmitigated checker is ill-typed (the public ``done`` assignment
  follows secret-dependent timing) and leaks on *every* hardware model;
* wrapping the comparison loop in ``mitigate`` makes it typecheck and
  collapses the per-prefix timings onto the doubling schedule, defeating
  the adaptive attack.

The program::

    i := 0; ok := 1
    mitigate (budget, H) {                  -- omitted when mitigated=False
        while (i < length) && ok {
            if stored[i] != guess[i] { ok := 0 }
            i := i + 1
        };
        match := ok
    }
    done := 1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.builder import B
from ..lang.parser import DEFAULT_LATTICE
from ..lattice import Lattice
from ..machine.memory import Memory
from ..hardware import MachineParams, make_hardware
from ..semantics.full import ExecutionResult, execute
from ..semantics.mitigation import MitigationState
from ..telemetry.recorder import TraceRecorder
from ..typesystem.environment import SecurityEnvironment
from ..typesystem.inference import infer_labels
from ..typesystem.typing import TypingInfo, typecheck


@dataclass
class PasswordChecker:
    """The early-exit comparison program for a fixed password length."""

    lattice: Lattice = field(default_factory=lambda: DEFAULT_LATTICE)
    length: int = 8
    mitigated: bool = True
    budget: int = 1

    def __post_init__(self) -> None:
        self.program, self.gamma = self._build()
        infer_labels(self.program, self.gamma)
        self.typing: Optional[TypingInfo] = None
        if self.mitigated:
            self.typing = typecheck(self.program, self.gamma)

    def _build(self) -> Tuple[ast.Command, SecurityEnvironment]:
        lat = self.lattice
        high = lat["H"] if "H" in lat else lat.top
        b = B(lat)
        v = b.v
        at = b.at

        # The initializations write high variables (raising the timing
        # end-label to H, cf. T-ASGN), so they live inside the mitigated
        # region, as in the login case study.
        compare_block = b.seq(
            b.assign("i", 0),
            b.assign("ok", 1),
            b.while_(
                (v("i") < self.length).and_(v("ok")),
                b.seq(
                    b.if_(
                        at("stored", v("i")) != at("guess", v("i")),
                        b.assign("ok", 0),
                    ),
                    b.assign("i", v("i") + 1),
                ),
            ),
            b.assign("match", v("ok")),
        )
        block: ast.Command = compare_block
        if self.mitigated:
            block = b.mitigate(self.budget, high, block, mit_id="compare")
        program = b.seq(
            block,
            b.assign("done", 1),
        )
        gamma = SecurityEnvironment(
            lat,
            {
                "guess": lat.bottom,
                "done": lat.bottom,
                "stored": high,
                "ok": high,
                "match": high,
                "i": high,
            },
        )
        return program, gamma

    def memory(self, stored: Sequence[int], guess: Sequence[int]) -> Memory:
        if len(stored) != self.length or len(guess) != self.length:
            raise ValueError(f"password and guess must have length "
                             f"{self.length}")
        return Memory(
            {
                "stored": list(stored),
                "guess": list(guess),
                "i": 0,
                "ok": 0,
                "match": 0,
                "done": 0,
            }
        )

    def run(
        self,
        stored: Sequence[int],
        guess: Sequence[int],
        hardware: str = "partitioned",
        params: Optional[MachineParams] = None,
        mitigation: Optional[MitigationState] = None,
        max_steps: int = 1_000_000,
        recorder: Optional[TraceRecorder] = None,
    ) -> ExecutionResult:
        environment = make_hardware(hardware, self.lattice, params)
        mitigate_pc = self.typing.mitigate_pc if self.typing else {}
        return execute(
            self.program,
            self.memory(stored, guess),
            environment,
            mitigation=(mitigation if mitigation is not None
                        else MitigationState()),
            mitigate_pc=mitigate_pc,
            max_steps=max_steps,
            recorder=recorder,
        )

    def matches(self, stored: Sequence[int], guess: Sequence[int]) -> bool:
        """Functional result, via the null machine."""
        result = self.run(stored, guess, hardware="null")
        return result.memory.read("match") == 1
