"""The RSA decryption case study (Sec. 8.4).

Efficient RSA implementations leak the private key through timing: in
square-and-multiply modular exponentiation the multiply executes only for
*set* key bits (Kocher's attack; Brumley-Boneh made it remote).  The paper
decrypts a multi-block message where only the per-block exponentiation uses
confidential data; the surrounding pre-/post-processing performs public
assignments whose timing the adversary observes.

The program built here (one mitigate per block -- *language-level*
mitigation)::

    b := 0
    while b < blocks {
        c := text[b]                       -- preprocess (public)
        mitigate (budget, H) {             -- line 4: the confidential part
            result := 1; base := c % n; e := 0
            while e < key_bits {
                if ((d >> e) & 1) == 1 { result := (result * base) % n }
                base := (base * base) % n
                e := e + 1
            }
            plain[b] := result
        }
        progress := b + 1                  -- postprocess (public, observable)
        b := b + 1
    }
    done := 1

Four modes reproduce the paper's comparisons (and one of its related-work
arguments):

* ``language`` -- one mitigate per block (typechecks; Fig. 8 bottom, Fig. 9);
* ``none``     -- no mitigation (ill-typed at the public postprocess
  assignment, run unchecked; Fig. 8 top);
* ``system``   -- the whole body wrapped in a single mitigate, simulating
  system-level predictive mitigation that treats the computation as a black
  box (also ill-typed -- it cannot separate the public block count from the
  secret exponent -- run unchecked; Fig. 9's losing baseline);
* ``balanced`` -- Agat-style branch balancing (Sec. 9's code-transformation
  line): the key-bit branch performs a *dummy* multiply on the zero path so
  both branches execute the same operations.  This empirically equalizes
  the direct channel on an abstract machine, but (a) the type system still
  rejects the program -- it reasons about timing *labels*, not instruction
  counts, exactly because (b) on real hardware the balanced branches touch
  different instructions/locations, so indirect (cache) differences can
  survive.  Run unchecked; compared in ``bench_ablation_balancing``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..lang import ast
from ..lang.builder import B
from ..lang.parser import DEFAULT_LATTICE
from ..lattice import Lattice
from ..machine.memory import Memory
from ..hardware import MachineParams, make_hardware
from ..semantics.full import ExecutionResult, execute
from ..semantics.mitigation import MitigationState
from ..telemetry.recorder import TraceRecorder
from ..typesystem.environment import SecurityEnvironment
from ..typesystem.inference import infer_labels
from ..typesystem.typing import TypingInfo, typecheck
from .rsa_math import RsaKey, decrypt, encrypt_blocks, generate_keypair

MITIGATION_MODES = ("language", "system", "none", "balanced")


@dataclass
class RsaSystem:
    """The multi-block RSA decryption program for a fixed block count."""

    lattice: Lattice = field(default_factory=lambda: DEFAULT_LATTICE)
    key_bits: int = 32
    blocks: int = 4
    mitigation_mode: str = "language"
    budget: int = 1

    def __post_init__(self) -> None:
        if self.mitigation_mode not in MITIGATION_MODES:
            raise ValueError(
                f"mitigation_mode must be one of {MITIGATION_MODES}"
            )
        self.program, self.gamma = self._build()
        infer_labels(self.program, self.gamma)
        self.typing: Optional[TypingInfo] = None
        if self.mitigation_mode == "language":
            self.typing = typecheck(self.program, self.gamma)

    # -- program construction ------------------------------------------------

    def _build(self) -> Tuple[ast.Command, SecurityEnvironment]:
        lat = self.lattice
        high = lat["H"] if "H" in lat else lat.top
        b = B(lat)
        v = b.v
        at = b.at

        if self.mitigation_mode == "balanced":
            # Agat-style: both branches perform a multiply; the zero path
            # throws its result away.
            bit_step = b.if_(
                ((v("d") >> v("e")) & 1) == 1,
                b.assign("result", (v("result") * v("base")) % v("n")),
                b.assign("dummy", (v("result") * v("base")) % v("n")),
            )
        else:
            bit_step = b.if_(
                ((v("d") >> v("e")) & 1) == 1,
                b.assign("result", (v("result") * v("base")) % v("n")),
            )
        modexp = b.seq(
            b.assign("result", 1),
            b.assign("base", v("c") % v("n")),
            b.assign("e", 0),
            b.while_(
                v("e") < self.key_bits,
                b.seq(
                    bit_step,
                    b.assign("base", (v("base") * v("base")) % v("n")),
                    b.assign("e", v("e") + 1),
                ),
            ),
            b.store("plain", v("b"), v("result")),
        )
        decrypt_block: ast.Command = modexp
        if self.mitigation_mode == "language":
            decrypt_block = b.mitigate(
                self.budget, high, modexp, mit_id="rsa_block"
            )

        body = b.seq(
            b.assign("c", at("text", v("b"))),  # preprocess
            decrypt_block,
            b.assign("progress", v("b") + 1),  # postprocess (public)
            b.assign("b", v("b") + 1),
        )
        main = b.seq(
            b.assign("b", 0),
            b.while_(v("b") < self.blocks, body),
            b.assign("done", 1),
        )
        program: ast.Command = main
        if self.mitigation_mode == "system":
            program = b.mitigate(
                self.budget, high, main, mit_id="rsa_whole"
            )

        gamma = SecurityEnvironment(
            lat,
            {
                "text": lat.bottom,
                "c": lat.bottom,
                "n": lat.bottom,
                "b": lat.bottom,
                "progress": lat.bottom,
                "done": lat.bottom,
                "d": high,
                "result": high,
                "base": high,
                "e": high,
                "plain": high,
                "dummy": high,
            },
        )
        return program, gamma

    # -- running -----------------------------------------------------------------

    def memory(self, key: RsaKey, ciphertext: List[int]) -> Memory:
        if len(ciphertext) != self.blocks:
            raise ValueError(
                f"this system decrypts {self.blocks}-block messages, "
                f"got {len(ciphertext)} blocks"
            )
        return Memory(
            {
                "text": list(ciphertext),
                "plain": [0] * self.blocks,
                "n": key.n,
                "d": key.d,
                "c": 0,
                "b": 0,
                "e": 0,
                "base": 0,
                "result": 0,
                "progress": 0,
                "done": 0,
                "dummy": 0,
            }
        )

    def run(
        self,
        key: RsaKey,
        ciphertext: List[int],
        hardware: str = "partitioned",
        params: Optional[MachineParams] = None,
        mitigation: Optional[MitigationState] = None,
        max_steps: int = 50_000_000,
        recorder: Optional[TraceRecorder] = None,
    ) -> ExecutionResult:
        """Decrypt one message; ``result.time`` is the decryption time."""
        environment = make_hardware(hardware, self.lattice, params)
        mitigate_pc = self.typing.mitigate_pc if self.typing else {}
        return execute(
            self.program,
            self.memory(key, ciphertext),
            environment,
            mitigation=(
                mitigation if mitigation is not None else MitigationState()
            ),
            mitigate_pc=mitigate_pc,
            max_steps=max_steps,
            recorder=recorder,
        )

    def decrypt_and_check(
        self,
        key: RsaKey,
        ciphertext: List[int],
        hardware: str = "partitioned",
        params: Optional[MachineParams] = None,
    ) -> Tuple[List[int], ExecutionResult]:
        """Decrypt and verify against the Python reference implementation."""
        result = self.run(key, ciphertext, hardware=hardware, params=params)
        plain = [
            result.memory.read_elem("plain", i) for i in range(self.blocks)
        ]
        expected = [decrypt(c, key) for c in ciphertext]
        if plain != expected:
            raise AssertionError(
                f"language-level decryption disagrees with reference: "
                f"{plain} != {expected}"
            )
        return plain, result

    def calibrate_budget(
        self,
        samples: int = 8,
        hardware: str = "partitioned",
        params: Optional[MachineParams] = None,
        seed: int = 20120612,
        headroom: float = 1.10,
    ) -> int:
        """Sec. 8.2: initial prediction = 110% of the average running time
        of the mitigated region, sampled with randomly generated secrets.

        For language-level mitigation the region is one block's
        exponentiation; for system-level it is the whole decryption.
        """
        rng = random.Random(seed)
        probe = RsaSystem(
            lattice=self.lattice,
            key_bits=self.key_bits,
            blocks=self.blocks,
            mitigation_mode="none",
        )
        durations = []
        for index in range(samples):
            key = generate_keypair(self.key_bits, seed=rng.randrange(1 << 30))
            message = [rng.randrange(1, key.n) for _ in range(self.blocks)]
            cipher = encrypt_blocks(message, key)
            result = probe.run(key, cipher, hardware=hardware, params=params)
            if self.mitigation_mode == "system":
                durations.append(result.time)
            else:
                durations.extend(_block_elapsed(result, self.blocks))
        budget = int(headroom * sum(durations) / len(durations))
        self.budget = max(budget, 1)
        self.__post_init__()
        return self.budget


def _block_elapsed(result: ExecutionResult, blocks: int) -> List[int]:
    """Per-block exponentiation times in an unmitigated run, measured from
    each ``c := text[b]`` preprocess event to the block's ``plain`` store."""
    starts = [e.time for e in result.events if e.name == "c"]
    ends = [e.time for e in result.events if e.name == "plain"]
    if len(starts) != blocks or len(ends) != blocks:
        raise AssertionError("unexpected event structure in RSA run")
    return [end - start for start, end in zip(starts, ends)]


def decryption_times(
    system: RsaSystem,
    keys: List[RsaKey],
    messages: List[List[int]],
    hardware: str = "partitioned",
    params: Optional[MachineParams] = None,
    recorder: Optional[TraceRecorder] = None,
) -> List[List[int]]:
    """Fig. 8's measurement: per-key series of decryption times over a
    shared message stream (each message is encrypted under each key).  An
    optional ``recorder`` observes every decryption (one telemetry "run"
    per message and key)."""
    out = []
    for key in keys:
        series = []
        for message in messages:
            cipher = encrypt_blocks(message, key)
            result = system.run(key, cipher, hardware=hardware,
                                params=params, recorder=recorder)
            series.append(result.time)
        out.append(series)
    return out
