"""An S-box (table-lookup) cipher: the AES cache-attack class.

The paper's introduction motivates indirect timing dependencies with the
cache attacks on AES (Osvik-Shamir-Tromer; Gullasch et al.): AES
implementations look up S-box tables at *key-dependent indices*, so the
cache lines the encryption touches -- observable to a coresident prober --
reveal key bytes.  This case study reproduces that attack class with a
toy byte cipher in the object language::

    i := 0
    mitigate (budget, H) {
        while i < length {
            idx := ptext[i % plen] ^ key[i % klen]   -- secret index
            ctext[i] := sbox[idx]                    -- the leaking lookup
            i := i + 1
        }
    };
    done := 1

The security story exercises the array extension end to end:

* the *index* ``idx`` is key-derived, so the element address of
  ``sbox[idx]`` carries secret bits into cache state.  The type system's
  array rule demands ``label(idx) <= lw`` -- the lookup must run with a
  high write label, which the partitioned hardware maps to the H partition
  (no-fill hardware simply never installs it);
* on ``nopar`` hardware the same program imprints the touched S-box lines
  on the shared cache, and :mod:`repro.attacks.sbox_attack` recovers key
  bits by prime-and-probe, exactly like the AES attacks;
* without the ``mitigate``, the trailing public ``done := 1`` is rejected
  (the loop's timing end-label is high) -- encryption *latency* also
  depends on secrets through cache misses.

The S-box is a fixed, deterministically generated permutation of 0..255
(the attack does not care which permutation; AES's algebraic S-box would
behave identically).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..lang import ast
from ..lang.builder import B
from ..lang.parser import DEFAULT_LATTICE
from ..lattice import Lattice
from ..machine.memory import Memory
from ..hardware import MachineParams, make_hardware
from ..semantics.full import ExecutionResult, execute
from ..semantics.mitigation import MitigationState
from ..telemetry.recorder import TraceRecorder
from ..typesystem.environment import SecurityEnvironment
from ..typesystem.inference import infer_labels
from ..typesystem.typing import TypingInfo, typecheck

SBOX_SIZE = 256
KEY_LENGTH = 16


def standard_sbox(seed: int = 0x5B0C) -> List[int]:
    """A fixed pseudorandom permutation of 0..255 (our stand-in S-box)."""
    table = list(range(SBOX_SIZE))
    random.Random(seed).shuffle(table)
    return table


def reference_encrypt(
    key: List[int], plaintext: List[int], length: int,
    sbox: Optional[List[int]] = None,
) -> List[int]:
    """Python-side reference for cross-checking the language program."""
    sbox = sbox if sbox is not None else standard_sbox()
    return [
        sbox[(plaintext[i % len(plaintext)] ^ key[i % len(key)]) % SBOX_SIZE]
        for i in range(length)
    ]


@dataclass
class SboxCipher:
    """The table-lookup cipher program for a fixed output length."""

    lattice: Lattice = field(default_factory=lambda: DEFAULT_LATTICE)
    length: int = 16
    plaintext_length: int = 16
    mitigated: bool = True
    budget: int = 1
    sbox: List[int] = field(default_factory=standard_sbox)

    def __post_init__(self) -> None:
        if len(self.sbox) != SBOX_SIZE:
            raise ValueError(f"sbox must have {SBOX_SIZE} entries")
        self.program, self.gamma = self._build()
        infer_labels(self.program, self.gamma)
        self.typing: Optional[TypingInfo] = None
        if self.mitigated:
            self.typing = typecheck(self.program, self.gamma)

    def _build(self) -> Tuple[ast.Command, SecurityEnvironment]:
        lat = self.lattice
        high = lat["H"] if "H" in lat else lat.top
        b = B(lat)
        v = b.v
        at = b.at

        loop = b.seq(
            b.assign("i", 0),
            b.while_(
                v("i") < self.length,
                b.seq(
                    b.assign(
                        "idx",
                        (at("ptext", v("i") % self.plaintext_length)
                         ^ at("key", v("i") % KEY_LENGTH)) % SBOX_SIZE,
                    ),
                    b.store("ctext", v("i") % self.length,
                            at("sbox", v("idx"))),
                    b.assign("i", v("i") + 1),
                ),
            ),
        )
        body: ast.Command = loop
        if self.mitigated:
            body = b.mitigate(self.budget, high, loop, mit_id="encrypt")
        program = b.seq(body, b.assign("done", 1))

        gamma = SecurityEnvironment(
            lat,
            {
                "ptext": lat.bottom,
                "sbox": lat.bottom,  # the table itself is public...
                "done": lat.bottom,
                "key": high,  # ...the secret is which entries get touched
                "ctext": high,
                "idx": high,
                "i": high,
            },
        )
        return program, gamma

    def memory(self, key: List[int], plaintext: List[int]) -> Memory:
        if len(key) != KEY_LENGTH:
            raise ValueError(f"key must have {KEY_LENGTH} bytes")
        if len(plaintext) != self.plaintext_length:
            raise ValueError(
                f"plaintext must have {self.plaintext_length} bytes"
            )
        return Memory(
            {
                "ptext": [p % SBOX_SIZE for p in plaintext],
                "key": [k % SBOX_SIZE for k in key],
                "sbox": list(self.sbox),
                "ctext": [0] * self.length,
                "idx": 0,
                "i": 0,
                "done": 0,
            }
        )

    def run(
        self,
        key: List[int],
        plaintext: List[int],
        hardware: str = "partitioned",
        params: Optional[MachineParams] = None,
        mitigation: Optional[MitigationState] = None,
        max_steps: int = 10_000_000,
        recorder: Optional[TraceRecorder] = None,
    ) -> ExecutionResult:
        environment = make_hardware(hardware, self.lattice, params)
        mitigate_pc = self.typing.mitigate_pc if self.typing else {}
        return execute(
            self.program,
            self.memory(key, plaintext),
            environment,
            mitigation=(mitigation if mitigation is not None
                        else MitigationState()),
            mitigate_pc=mitigate_pc,
            max_steps=max_steps,
            recorder=recorder,
        )

    def encrypt_and_check(
        self,
        key: List[int],
        plaintext: List[int],
        hardware: str = "partitioned",
        params: Optional[MachineParams] = None,
    ) -> Tuple[List[int], ExecutionResult]:
        """Encrypt and verify against the Python reference."""
        result = self.run(key, plaintext, hardware=hardware, params=params)
        ctext = [
            result.memory.read_elem("ctext", i) for i in range(self.length)
        ]
        expected = reference_encrypt(key, plaintext, self.length, self.sbox)
        if ctext != expected:
            raise AssertionError(
                f"cipher output disagrees with reference: {ctext} != "
                f"{expected}"
            )
        return ctext, result


def random_key(rng: random.Random) -> List[int]:
    return [rng.randrange(SBOX_SIZE) for _ in range(KEY_LENGTH)]
