"""The web-login case study (Sec. 8.3).

Bortz and Boneh showed adversaries can probe for *valid usernames* through
the timing of a web application's login path: password verification happens
only when the username exists, so valid and invalid attempts take visibly
different time.  The paper reproduces this with a login routine whose
credential table (digests of valid usernames and their passwords) and login
``state`` are secret, while the attempted ``user``/``pass`` and the
``response`` are public -- the response *value* is always 1 on purpose, so
the only channel left is the response's *timing*.

The program built here (in the paper's own source language, via the builder
DSL)::

    uh := fnv1a(user)                        -- public username digest
    found := 0; state := 0; ph := 0; i := 0; k := 0
    mitigate (budget, H) {                   -- omitted when mitigated=False
        while i < N {
            if table[i] == uh {              -- secret table: high guard
                found := 1
                ph := fnv1a(pass)            -- hashing only for valid users:
                if ptable[i] == ph {         -- the Bortz-Boneh channel
                    state := 1
                }
            }
            i := i + 1
        }
    }
    response := 1                            -- public; its timing is the leak

Without the ``mitigate`` the type system rejects the final public assignment
(its timing start-label is H) -- exactly the paper's "type checking fails at
line 11"; with it, the program typechecks and the runtime bounds the leak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang import ast
from ..lang.builder import B
from ..lang.parser import DEFAULT_LATTICE
from ..lattice import Lattice
from ..machine.memory import Memory
from ..hardware import MachineParams, make_hardware
from ..semantics.full import ExecutionResult, execute
from ..semantics.mitigation import MitigationState
from ..telemetry.recorder import TraceRecorder
from ..typesystem.environment import SecurityEnvironment
from ..typesystem.inference import infer_labels
from ..typesystem.typing import TypingInfo, typecheck
from .hashing import encode, fnv1a

USERNAME_LENGTH = 8
PASSWORD_LENGTH = 8


@dataclass
class LoginSystem:
    """The login program plus its security environment.

    ``table_size`` is the credential-table capacity ``N``; the secret is
    *which* entries hold digests of real usernames.  ``mitigated`` selects
    between the type-correct program and the leaky baseline (used for the
    ``nopar``/``moff`` measurements -- the baseline is deliberately
    ill-typed, so it is label-inferred but not typechecked).
    """

    lattice: Lattice = field(default_factory=lambda: DEFAULT_LATTICE)
    table_size: int = 100
    mitigated: bool = True
    budget: int = 1

    def __post_init__(self) -> None:
        self.program, self.gamma = self._build()
        infer_labels(self.program, self.gamma)
        self.typing: Optional[TypingInfo] = None
        if self.mitigated:
            self.typing = typecheck(self.program, self.gamma)

    # -- program construction ----------------------------------------------------

    def _build(self) -> Tuple[ast.Command, SecurityEnvironment]:
        lat = self.lattice
        high = lat["H"] if "H" in lat else lat.top
        b = B(lat)
        v = b.v
        at = b.at

        hash_user = _inline_hash(b, "user", USERNAME_LENGTH, "uh", "j")
        hash_pass = _inline_hash(b, "pass", PASSWORD_LENGTH, "ph", "k")

        password_check = b.if_(
            at("ptable", v("i")) == v("ph"),
            b.assign("state", 1),
        )
        match_body = b.seq(
            b.assign("found", 1),
            hash_pass,
            password_check,
        )
        search_loop = b.while_(
            v("i") < self.table_size,
            b.seq(
                b.if_(at("table", v("i")) == v("uh"), match_body),
                b.assign("i", v("i") + 1),
            ),
        )
        # The initializations write high variables, which raises the timing
        # end-label to H (T-ASGN's end-label is Gamma(x)); they must sit
        # inside the mitigated region, like the paper's high line 1.
        high_block = b.seq(
            b.assign("found", 0),
            b.assign("state", 0),
            b.assign("ph", 0),
            b.assign("i", 0),
            search_loop,
        )
        if self.mitigated:
            high_block = b.mitigate(
                self.budget, high, high_block, mit_id="login_search"
            )

        program = b.seq(
            hash_user,
            high_block,
            b.assign("response", 1),
        )
        gamma = SecurityEnvironment(
            lat,
            {
                "user": lat.bottom,
                "pass": lat.bottom,
                "uh": lat.bottom,
                "j": lat.bottom,
                "response": lat.bottom,
                "table": high,
                "ptable": high,
                "found": high,
                "state": high,
                "ph": high,
                "i": high,
                "k": high,
            },
        )
        return program, gamma

    # -- memory construction ----------------------------------------------------------

    def memory(
        self,
        credentials: "CredentialTable",
        username: str,
        password: str,
    ) -> Memory:
        """Initial memory for one login attempt."""
        return Memory(
            {
                "user": encode(_pad(username, USERNAME_LENGTH)),
                "pass": encode(_pad(password, PASSWORD_LENGTH)),
                "table": credentials.username_digests,
                "ptable": credentials.password_digests,
                "uh": 0,
                "j": 0,
                "ph": 0,
                "k": 0,
                "i": 0,
                "found": 0,
                "state": 0,
                "response": 0,
            }
        )

    def run(
        self,
        credentials: "CredentialTable",
        username: str,
        password: str,
        hardware: str = "partitioned",
        params: Optional[MachineParams] = None,
        mitigation: Optional[MitigationState] = None,
        max_steps: int = 10_000_000,
        recorder: Optional[TraceRecorder] = None,
    ) -> ExecutionResult:
        """One login attempt; ``result.time`` is the paper's login time.

        Pass a shared :class:`MitigationState` to model a long-running
        server: misprediction counters persist across requests, which is
        what makes the Fig. 7 mitigated curves coincide after the first
        inflation.  A shared ``recorder`` likewise aggregates telemetry
        across a whole attempt stream.
        """
        environment = make_hardware(hardware, self.lattice, params)
        mitigate_pc = self.typing.mitigate_pc if self.typing else {}
        return execute(
            self.program,
            self.memory(credentials, username, password),
            environment,
            mitigation=(
                mitigation if mitigation is not None else MitigationState()
            ),
            mitigate_pc=mitigate_pc,
            max_steps=max_steps,
            recorder=recorder,
        )

    def calibrate_budget(
        self,
        attempts: int = 10,
        hardware: str = "partitioned",
        params: Optional[MachineParams] = None,
        seed: int = 20120611,
        headroom: float = 1.10,
    ) -> int:
        """Sec. 8.2's initial-prediction policy: sample the running time of
        the mitigated block with randomly generated secrets and return 110%
        of the average.  Returns the budget and rebuilds the program with it.
        """
        rng = random.Random(seed)
        unmitigated = LoginSystem(
            lattice=self.lattice,
            table_size=self.table_size,
            mitigated=False,
        )
        durations = []
        for index in range(attempts):
            creds = CredentialTable.generate(
                size=self.table_size,
                valid=rng.randrange(1, self.table_size + 1),
                rng=rng,
            )
            # Sample both code paths: random secrets mean random usernames
            # sometimes hit the table and sometimes do not.
            if index % 2 == 0:
                username = creds.usernames[0]
                password = creds.passwords[0]
            else:
                username = _random_name(rng)
                password = _random_name(rng)
            result = unmitigated.run(
                creds, username, password, hardware=hardware, params=params
            )
            durations.append(_search_block_elapsed(result))
        budget = int(headroom * sum(durations) / len(durations))
        self.budget = max(budget, 1)
        self.__post_init__()
        return self.budget


def _search_block_elapsed(result: ExecutionResult) -> int:
    """Time the high block took in an unmitigated run, measured from just
    before its first initialization (``found := 0``) to the final
    ``response`` update."""
    events = list(result.events)
    first = next(i for i, e in enumerate(events) if e.name == "found")
    start = events[first - 1].time if first > 0 else 0
    end = next(e.time for e in events if e.name == "response")
    return end - start


def _pad(text: str, length: int) -> str:
    if len(text) > length:
        return text[:length]
    return text + "\0" * (length - len(text))


def _random_name(rng: random.Random, length: int = USERNAME_LENGTH) -> str:
    letters = "abcdefghijklmnopqrstuvwxyz"
    return "".join(rng.choice(letters) for _ in range(length))


def _inline_hash(b: B, source: str, length: int, digest: str, counter: str):
    from .hashing import hash_loop

    return hash_loop(b, source, length, digest, counter)


@dataclass
class CredentialTable:
    """The secret: which usernames are valid, and their password digests.

    ``username_digests[i]`` is ``fnv1a(username_i)`` for the first ``valid``
    entries and a sentinel (matching no attempt) for the rest;
    ``password_digests`` pairs each valid entry with its password's digest.
    """

    usernames: List[str]
    passwords: List[str]
    valid: int
    username_digests: List[int]
    password_digests: List[int]

    @classmethod
    def generate(
        cls,
        size: int = 100,
        valid: int = 10,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> "CredentialTable":
        """A table with ``valid`` real entries out of ``size`` slots.

        The generated usernames double as the attempt stream for the Fig. 7
        experiment: attempt ``i`` presents ``usernames[i]``, which is valid
        exactly when ``i < valid``.
        """
        rng = rng if rng is not None else random.Random(seed)
        if not 0 <= valid <= size:
            raise ValueError("valid must be between 0 and size")
        usernames = []
        seen = set()
        while len(usernames) < size:
            name = _random_name(rng)
            digest = fnv1a(encode(_pad(name, USERNAME_LENGTH)))
            if digest in seen:
                continue
            seen.add(digest)
            usernames.append(name)
        passwords = [_random_name(rng, PASSWORD_LENGTH) for _ in range(size)]
        username_digests = []
        password_digests = []
        for i in range(size):
            if i < valid:
                username_digests.append(
                    fnv1a(encode(_pad(usernames[i], USERNAME_LENGTH)))
                )
                password_digests.append(
                    fnv1a(encode(_pad(passwords[i], PASSWORD_LENGTH)))
                )
            else:
                # Sentinels: digests of names never attempted.
                while True:
                    sentinel = rng.randrange(1 << 31)
                    if sentinel not in seen:
                        seen.add(sentinel)
                        break
                username_digests.append(sentinel)
                password_digests.append(rng.randrange(1 << 31))
        return cls(
            usernames=usernames,
            passwords=passwords,
            valid=valid,
            username_digests=username_digests,
            password_digests=password_digests,
        )

    def is_valid(self, index: int) -> bool:
        return index < self.valid


def login_attempt_times(
    system: LoginSystem,
    credentials: CredentialTable,
    hardware: str = "partitioned",
    params: Optional[MachineParams] = None,
    correct_password: bool = True,
    recorder: Optional[TraceRecorder] = None,
) -> List[int]:
    """Fig. 7's measurement: login time for each attempt in the stream.

    A single mitigation state persists across attempts, modeling the
    long-running server the paper measures.  An optional ``recorder``
    observes every attempt (one telemetry "run" per login).
    """
    times = []
    mitigation = MitigationState()
    for i, username in enumerate(credentials.usernames):
        password = (
            credentials.passwords[i]
            if correct_password
            else _random_name(random.Random(i), PASSWORD_LENGTH)
        )
        result = system.run(
            credentials, username, password,
            hardware=hardware, params=params, mitigation=mitigation,
            recorder=recorder,
        )
        times.append(result.time)
    return times


def summarize_valid_invalid(
    times: List[int], credentials: CredentialTable
) -> Dict[str, float]:
    """Average login time over valid and invalid attempts (Table 2 rows)."""
    valid = [t for i, t in enumerate(times) if credentials.is_valid(i)]
    invalid = [t for i, t in enumerate(times) if not credentials.is_valid(i)]
    return {
        "valid": sum(valid) / len(valid) if valid else float("nan"),
        "invalid": sum(invalid) / len(invalid) if invalid else float("nan"),
    }
