"""A from-scratch digest, both in Python and in the source language.

The paper's login case study stores MD5 digests of valid usernames and
passwords.  The timing channel does not care which digest is used -- only
that computing and comparing digests takes data-dependent code paths -- so
we substitute a 31-bit FNV-1a-style hash that the source language can
compute with a simple loop over key characters (our language has no
functions, so the loop is inlined by the program builders).

:func:`fnv1a` is the Python reference; :func:`hash_loop` emits the
equivalent source-language fragment.  They agree bit-for-bit, which
``tests/test_apps_hashing.py`` verifies over random strings.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..lang import ast
from ..lang.builder import B
from ..lattice import Label

FNV_OFFSET = 2166136261
FNV_PRIME = 16777619
#: Digests are reduced mod 2^31 so language-level arithmetic mirrors C ints.
DIGEST_MOD = 1 << 31


def fnv1a(data: Iterable[int]) -> int:
    """Python reference digest of a byte/character sequence."""
    digest = FNV_OFFSET % DIGEST_MOD
    for byte in data:
        digest = ((digest ^ (byte % 256)) * FNV_PRIME) % DIGEST_MOD
    return digest


def encode(text: str) -> List[int]:
    """A string as the int array the language programs consume."""
    return [ord(ch) % 256 for ch in text]


def hash_loop(
    builder: B,
    source_array: str,
    length: int,
    digest_var: str,
    counter_var: str,
    read: Optional[Label] = None,
    write: Optional[Label] = None,
) -> ast.Command:
    """Emit ``digest_var := fnv1a(source_array[0..length))`` as a command.

    ``counter_var`` is the loop counter (caller allocates it).  Labels
    default to None so inference can fill them from context.
    """
    v = builder.v
    at = builder.at
    return builder.seq(
        builder.assign(digest_var, FNV_OFFSET % DIGEST_MOD, read, write),
        builder.assign(counter_var, 0, read, write),
        builder.while_(
            v(counter_var) < length,
            builder.seq(
                builder.assign(
                    digest_var,
                    ((v(digest_var) ^ at(source_array, v(counter_var)))
                     * FNV_PRIME) % DIGEST_MOD,
                    read,
                    write,
                ),
                builder.assign(
                    counter_var, v(counter_var) + 1, read, write
                ),
            ),
            read,
            write,
        ),
    )
