"""From-scratch RSA key generation and reference operations (Python side).

The case study of Sec. 8.4 uses the RSA reference implementation; we supply
schoolbook RSA built from first principles -- deterministic Miller-Rabin
primality testing, extended-Euclid modular inverse, and square-and-multiply
modular exponentiation -- so the language-level decryption program can be
cross-checked against an independent implementation.

Key sizes here are deliberately small (tens of bits): the timing channel
under study is the *key-bit-dependent multiply* in square-and-multiply,
which exists at every key size, and the simulated processor interprets one
language command at a time, so small keys keep experiments fast without
changing the channel's structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-ish inputs.

    The witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is known to
    be exact for all n < 3.3 * 10^24, far beyond our key sizes.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _SMALL_PRIMES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """A random prime with exactly ``bits`` bits."""
    if bits < 3:
        raise ValueError("need at least 3 bits for a prime")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns (g, x, y) with a*x + b*y = g = gcd(a, b)."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, m: int) -> int:
    """The inverse of ``a`` modulo ``m``; raises if it does not exist."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m


@dataclass(frozen=True)
class RsaKey:
    """A keypair: public (n, e), private exponent d."""

    n: int
    e: int
    d: int

    @property
    def key_bits(self) -> int:
        return self.n.bit_length()

    def private_bits(self, width: int) -> List[int]:
        """The private exponent as a little-endian bit list of ``width``."""
        return [(self.d >> i) & 1 for i in range(width)]

    def hamming_weight(self) -> int:
        """Number of set bits in d -- the multiply count of square-and-
        multiply, i.e. what the timing channel reveals."""
        return bin(self.d).count("1")


def generate_keypair(bits: int = 32, seed: int = 0) -> RsaKey:
    """A deterministic keypair with an n of roughly ``bits`` bits."""
    rng = random.Random(seed)
    half = max(bits // 2, 4)
    while True:
        p = random_prime(half, rng)
        q = random_prime(half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        for e in (65537, 257, 17, 5, 3):
            if e < phi and egcd(e, phi)[0] == 1:
                d = modinv(e, phi)
                return RsaKey(n=n, e=e, d=d)


def encrypt(message: int, key: RsaKey) -> int:
    """``message^e mod n`` (textbook, no padding -- the channel under study
    is in the exponentiation)."""
    if not 0 <= message < key.n:
        raise ValueError("message must be in [0, n)")
    return pow(message, key.e, key.n)


def decrypt(cipher: int, key: RsaKey) -> int:
    """Reference ``cipher^d mod n`` for cross-checking the language program."""
    return pow(cipher, key.d, key.n)


def encrypt_blocks(blocks: List[int], key: RsaKey) -> List[int]:
    """Encrypt each block independently (the paper's multi-block message)."""
    return [encrypt(block, key) for block in blocks]


def random_message(blocks: int, key: RsaKey, rng: random.Random) -> List[int]:
    """A random multi-block plaintext valid under ``key``."""
    return [rng.randrange(1, key.n) for _ in range(blocks)]
