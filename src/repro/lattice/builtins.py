"""Standard security lattices used throughout the paper and the tests.

* :func:`two_point` -- the classic ``L <= H`` lattice of Sec. 2.2.
* :func:`chain` -- a total order ``L0 <= L1 <= ... <= L{n-1}``; the paper's
  three-level examples (Sec. 3.6, Sec. 6) use ``chain(("L", "M", "H"))``.
* :func:`diamond` -- the smallest lattice with incomparable levels, used to
  exercise genuinely multilevel behaviour.
* :func:`powerset` -- the lattice of subsets of a set of principals, ordered
  by inclusion; the standard "decentralized" multilevel example.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence, Tuple

from .core import Lattice


def two_point() -> Lattice:
    """The two-point lattice ``L <= H`` (public below secret)."""
    return Lattice(("L", "H"), (("L", "H"),))


def chain(names: Sequence[str] = ("L", "M", "H")) -> Lattice:
    """A totally ordered lattice with the given level names, low to high."""
    if not names:
        raise ValueError("a chain needs at least one level")
    covers = [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    return Lattice(names, covers)


def diamond(
    low: str = "L", left: str = "M1", right: str = "M2", high: str = "H"
) -> Lattice:
    """The four-point diamond: ``low`` below two incomparable middles below ``high``."""
    return Lattice(
        (low, left, right, high),
        ((low, left), (low, right), (left, high), (right, high)),
    )


def powerset(principals: Sequence[str]) -> Lattice:
    """The powerset lattice over ``principals``, ordered by subset inclusion.

    The empty set (named ``{}``) is public; the full set is top.  Element
    names look like ``{a,b}`` with principals sorted alphabetically.
    """
    principals = sorted(set(principals))

    def name(subset: Tuple[str, ...]) -> str:
        return "{" + ",".join(subset) + "}"

    subsets = [
        tuple(sorted(c))
        for r in range(len(principals) + 1)
        for c in combinations(principals, r)
    ]
    covers = []
    for a in subsets:
        for b in subsets:
            if a != b and set(a) <= set(b):
                covers.append((name(a), name(b)))
    return Lattice([name(s) for s in subsets], covers)
