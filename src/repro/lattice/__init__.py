"""Security lattices: labels, finite lattices, and the paper's builtin orders."""

from .builtins import chain, diamond, powerset, two_point
from .core import Label, Lattice, LatticeError

__all__ = [
    "Label",
    "Lattice",
    "LatticeError",
    "chain",
    "diamond",
    "powerset",
    "two_point",
]
