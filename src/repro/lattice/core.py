"""Finite security lattices.

The paper associates every piece of information -- program variables, parts
of the machine environment, and the timing of events -- with a *security
label* drawn from a lattice of confidentiality levels (Sec. 2.2).  Labels
``l1`` and ``l2`` are ordered ``l1 <= l2`` when ``l2`` describes a
confidentiality requirement at least as strong as ``l1``; information may
flow from ``l1`` to ``l2`` exactly when ``l1 <= l2``.

This module implements arbitrary *finite* lattices.  A lattice is described
by its carrier set and a covering ("flows directly to") relation; the partial
order is the reflexive-transitive closure.  Joins and meets are computed once
at construction time and validated, so an ill-formed poset (one that is not a
lattice) is rejected eagerly.

The quantitative definitions of Sec. 6 need two derived operators, both
provided here:

* ``exclude_observable(levels, adversary)`` -- the set ``L_{lA}`` of levels in
  ``L`` *not* observable to the adversary (``l !<= lA``).
* ``upward_closure(levels)`` -- ``L^`` in the paper: every level at least as
  restrictive as some member of ``L``.
"""

from __future__ import annotations

from itertools import product as _cartesian
from typing import Dict, FrozenSet, Iterable, Iterator, Tuple


class LatticeError(ValueError):
    """Raised when a label set and order do not form a lattice."""


class Label:
    """A security level: an element of a specific :class:`Lattice`.

    Labels are interned per lattice, so identity comparison is safe within
    one lattice, and rich comparisons implement the information-flow order
    (``a <= b`` means "information at ``a`` may flow to ``b``").
    """

    __slots__ = ("name", "lattice", "_index")

    def __init__(self, name: str, lattice: "Lattice", index: int):
        self.name = name
        self.lattice = lattice
        self._index = index

    def flows_to(self, other: "Label") -> bool:
        """True when information at this level may flow to ``other``."""
        return self.lattice.leq(self, other)

    def join(self, other: "Label") -> "Label":
        """Least upper bound of the two labels."""
        return self.lattice.join(self, other)

    def meet(self, other: "Label") -> "Label":
        """Greatest lower bound of the two labels."""
        return self.lattice.meet(self, other)

    # Rich comparisons mirror the lattice order.  Note this is a *partial*
    # order: ``not (a <= b)`` does not imply ``b <= a``.
    def __le__(self, other: "Label") -> bool:
        return self.lattice.leq(self, other)

    def __lt__(self, other: "Label") -> bool:
        return self is not other and self.lattice.leq(self, other)

    def __ge__(self, other: "Label") -> bool:
        return self.lattice.leq(other, self)

    def __gt__(self, other: "Label") -> bool:
        return self is not other and self.lattice.leq(other, self)

    def __or__(self, other: "Label") -> "Label":
        return self.join(other)

    def __and__(self, other: "Label") -> "Label":
        return self.meet(other)

    def __repr__(self) -> str:
        return f"Label({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash((id(self.lattice), self.name))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self.lattice is other.lattice and self.name == other.name


class Lattice:
    """A finite security lattice.

    Parameters
    ----------
    elements:
        Names of the levels.
    covers:
        Pairs ``(lo, hi)`` meaning information flows directly from ``lo`` to
        ``hi``.  The full order is the reflexive-transitive closure of these
        edges.

    Raises
    ------
    LatticeError
        If the order has a cycle, or some pair of elements lacks a unique
        least upper bound or greatest lower bound.
    """

    def __init__(self, elements: Iterable[str], covers: Iterable[Tuple[str, str]]):
        names = list(dict.fromkeys(elements))
        if not names:
            raise LatticeError("a lattice needs at least one element")
        self._labels: Dict[str, Label] = {
            name: Label(name, self, i) for i, name in enumerate(names)
        }
        n = len(names)
        index = {name: i for i, name in enumerate(names)}
        # Reachability closure over the cover edges gives the partial order.
        leq = [[False] * n for _ in range(n)]
        for i in range(n):
            leq[i][i] = True
        for lo, hi in covers:
            if lo not in index or hi not in index:
                unknown = lo if lo not in index else hi
                raise LatticeError(f"cover edge mentions unknown element {unknown!r}")
            leq[index[lo]][index[hi]] = True
        # Floyd-Warshall style transitive closure.
        for k in range(n):
            row_k = leq[k]
            for i in range(n):
                if leq[i][k]:
                    row_i = leq[i]
                    for j in range(n):
                        if row_k[j]:
                            row_i[j] = True
        for i in range(n):
            for j in range(n):
                if i != j and leq[i][j] and leq[j][i]:
                    raise LatticeError(
                        f"order contains a cycle through {names[i]!r} and {names[j]!r}"
                    )
        self._names = names
        self._leq = leq
        self._join_table = self._build_bound_table(upper=True)
        self._meet_table = self._build_bound_table(upper=False)
        self._bottom = self._find_extremum(least=True)
        self._top = self._find_extremum(least=False)

    def _build_bound_table(self, upper: bool):
        n = len(self._names)
        leq = self._leq
        table = [[-1] * n for _ in range(n)]
        for i in range(n):
            for j in range(i, n):
                if upper:
                    candidates = [
                        k for k in range(n) if leq[i][k] and leq[j][k]
                    ]
                    best = [
                        k
                        for k in candidates
                        if all(leq[k][c] for c in candidates)
                    ]
                else:
                    candidates = [
                        k for k in range(n) if leq[k][i] and leq[k][j]
                    ]
                    best = [
                        k
                        for k in candidates
                        if all(leq[c][k] for c in candidates)
                    ]
                if len(best) != 1:
                    kind = "join" if upper else "meet"
                    raise LatticeError(
                        f"elements {self._names[i]!r} and {self._names[j]!r} "
                        f"have no unique {kind}; this poset is not a lattice"
                    )
                table[i][j] = table[j][i] = best[0]
        return table

    def _find_extremum(self, least: bool) -> Label:
        n = len(self._names)
        for i in range(n):
            if all(
                (self._leq[i][j] if least else self._leq[j][i]) for j in range(n)
            ):
                return self._labels[self._names[i]]
        raise LatticeError("lattice has no bottom/top element")  # pragma: no cover

    # -- basic access ------------------------------------------------------

    def __getitem__(self, name: str) -> Label:
        try:
            return self._labels[name]
        except KeyError:
            raise KeyError(
                f"no level named {name!r}; levels are {self._names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._labels

    def __iter__(self) -> Iterator[Label]:
        return iter(self._labels.values())

    def __len__(self) -> int:
        return len(self._names)

    @property
    def bottom(self) -> Label:
        """The least restrictive level (public), written ⊥ in the paper."""
        return self._bottom

    @property
    def top(self) -> Label:
        """The most restrictive level, written ⊤ in the paper."""
        return self._top

    def levels(self) -> Tuple[Label, ...]:
        """All levels, in declaration order."""
        return tuple(self._labels.values())

    # -- order and bounds ---------------------------------------------------

    def leq(self, a: Label, b: Label) -> bool:
        """The information-flow order: may ``a`` flow to ``b``?"""
        self._check(a)
        self._check(b)
        return self._leq[a._index][b._index]

    def join(self, a: Label, *rest: Label) -> Label:
        """Least upper bound of one or more labels."""
        self._check(a)
        result = a
        for b in rest:
            self._check(b)
            result = self._labels[
                self._names[self._join_table[result._index][b._index]]
            ]
        return result

    def meet(self, a: Label, *rest: Label) -> Label:
        """Greatest lower bound of one or more labels."""
        self._check(a)
        result = a
        for b in rest:
            self._check(b)
            result = self._labels[
                self._names[self._meet_table[result._index][b._index]]
            ]
        return result

    def join_all(self, labels: Iterable[Label]) -> Label:
        """Join of an iterable of labels; bottom for the empty iterable."""
        result = self._bottom
        for lab in labels:
            result = self.join(result, lab)
        return result

    def meet_all(self, labels: Iterable[Label]) -> Label:
        """Meet of an iterable of labels; top for the empty iterable."""
        result = self._top
        for lab in labels:
            result = self.meet(result, lab)
        return result

    def _check(self, label: Label) -> None:
        if label.lattice is not self:
            raise LatticeError(
                f"label {label.name!r} belongs to a different lattice"
            )

    # -- derived operators for the quantitative definitions (Sec. 6) --------

    def observable_by(self, adversary: Label) -> FrozenSet[Label]:
        """Levels an adversary at ``adversary`` observes directly: all l <= lA."""
        return frozenset(l for l in self if self.leq(l, adversary))

    def exclude_observable(
        self, levels: Iterable[Label], adversary: Label
    ) -> FrozenSet[Label]:
        """``L_{lA}``: the members of ``levels`` not observable by ``adversary``.

        Sec. 6.2: because an adversary at ``lA`` already sees every level
        below ``lA``, those levels carry no *new* information and are
        excluded before leakage is measured.
        """
        return frozenset(l for l in levels if not self.leq(l, adversary))

    def upward_closure(self, levels: Iterable[Label]) -> FrozenSet[Label]:
        """``L^``: every level above (at least as restrictive as) some l in L."""
        base = list(levels)
        return frozenset(
            l for l in self if any(self.leq(b, l) for b in base)
        )

    def downward_closure(self, levels: Iterable[Label]) -> FrozenSet[Label]:
        """Dual of :meth:`upward_closure`; useful for adversary views."""
        base = list(levels)
        return frozenset(
            l for l in self if any(self.leq(l, b) for b in base)
        )

    # -- structure ----------------------------------------------------------

    def product(self, other: "Lattice", sep: str = "*") -> "Lattice":
        """The product lattice; elements are named ``a{sep}b``."""
        elements = [
            f"{a.name}{sep}{b.name}"
            for a, b in _cartesian(self.levels(), other.levels())
        ]
        covers = []
        for a1, b1 in _cartesian(self.levels(), other.levels()):
            for a2, b2 in _cartesian(self.levels(), other.levels()):
                if (a1, b1) == (a2, b2):
                    continue
                if self.leq(a1, a2) and other.leq(b1, b2):
                    covers.append(
                        (f"{a1.name}{sep}{b1.name}", f"{a2.name}{sep}{b2.name}")
                    )
        return Lattice(elements, covers)

    def is_chain(self) -> bool:
        """True when the order is total."""
        labels = self.levels()
        return all(
            self.leq(a, b) or self.leq(b, a)
            for a in labels
            for b in labels
        )

    def __repr__(self) -> str:
        return f"Lattice({self._names})"
