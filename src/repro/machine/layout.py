"""Address layout: the compiler-like pass that places a program in memory.

The paper's evaluation runs compiled C on a simulated processor, so data and
instruction *addresses* -- not language-level names -- drive the cache and
TLB.  This pass plays the compiler's role: every scalar gets a word, every
array a contiguous block, and every labeled command an instruction slot, so
that the hardware models see realistic spatial locality (several commands per
instruction-cache block, array walks striding through data-cache blocks).

The layout is purely static: it depends only on declared names and the
program text, never on values.  That is essential for the security
properties -- if layout depended on confidential values it would itself be a
channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..lang import ast
from .memory import Memory

WORD_BYTES = 4
#: Bytes reserved per labeled command; 8 bytes approximates a couple of
#: machine instructions, so a 32-byte I-cache block holds 4 commands.
INSTR_BYTES = 8
DATA_BASE = 0x1000_0000
CODE_BASE = 0x0040_0000


@dataclass(frozen=True)
class DataAccess:
    """A resolved data access: a name plus an element index (0 for scalars)."""

    name: str
    index: int = 0


@dataclass(frozen=True)
class AccessTrace:
    """The addresses one evaluation step touches.

    ``instruction`` is the fetch address of the executing command;
    ``reads``/``writes`` are data addresses; ``taken`` is the resolved
    branch outcome for ``if``/``while`` guard steps (None otherwise) -- it
    drives the optional branch-predictor component.  This is the only
    information about a step (besides its read/write labels and any sleep
    duration) that reaches the hardware model.  The branch outcome is a
    function of ``vars1`` values, so including it preserves Property 6's
    discipline: two runs whose ``vars1`` values agree produce identical
    traces.
    """

    instruction: int
    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    taken: Optional[bool] = None


@dataclass
class Layout:
    """Static addresses for a (program, memory-shape) pair."""

    var_addr: Dict[str, int] = field(default_factory=dict)
    array_addr: Dict[str, int] = field(default_factory=dict)
    array_len: Dict[str, int] = field(default_factory=dict)
    instr_addr: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def build(cls, program: ast.Command, memory: Memory) -> "Layout":
        """Lay out ``memory``'s names and ``program``'s commands.

        Scalars come first (sorted, one word each), then arrays (sorted,
        contiguous).  Labeled commands get consecutive instruction slots in
        preorder, mirroring how a compiler would emit them.
        """
        layout = cls()
        addr = DATA_BASE
        for name in sorted(n for n in memory.names() if memory.is_scalar(n)):
            layout.var_addr[name] = addr
            addr += WORD_BYTES
        for name in sorted(n for n in memory.names() if memory.is_array(n)):
            layout.array_addr[name] = addr
            layout.array_len[name] = memory.array_length(name)
            addr += WORD_BYTES * memory.array_length(name)
        code = CODE_BASE
        for cmd in program.walk():
            if isinstance(cmd, ast.LabeledCommand):
                layout.instr_addr[cmd.node_id] = code
                code += INSTR_BYTES
        return layout

    def data_address(self, access: DataAccess) -> int:
        """The byte address of a resolved data access."""
        if access.name in self.var_addr:
            return self.var_addr[access.name]
        if access.name in self.array_addr:
            return self.array_addr[access.name] + WORD_BYTES * access.index
        raise KeyError(f"name {access.name!r} has no address in this layout")

    def instruction_address(self, node_id: int) -> int:
        """The fetch address of a labeled command, by node id."""
        try:
            return self.instr_addr[node_id]
        except KeyError:
            raise KeyError(
                f"command node {node_id} was not part of the laid-out program"
            ) from None
