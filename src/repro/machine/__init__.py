"""Program memory, equivalence relations, and static address layout."""

from .layout import (
    CODE_BASE,
    DATA_BASE,
    INSTR_BYTES,
    WORD_BYTES,
    AccessTrace,
    DataAccess,
    Layout,
)
from .memory import (
    Memory,
    MemoryError_,
    equivalent,
    memories_agreeing_on,
    projected_equivalent,
)

__all__ = [
    "AccessTrace",
    "CODE_BASE",
    "DATA_BASE",
    "DataAccess",
    "INSTR_BYTES",
    "Layout",
    "Memory",
    "MemoryError_",
    "WORD_BYTES",
    "equivalent",
    "memories_agreeing_on",
    "projected_equivalent",
]
