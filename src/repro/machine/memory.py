"""Program memory: the ``m`` component of configurations.

Memory maps scalar variable names to integers and array names to fixed-length
integer sequences.  Sec. 3.4 of the paper defines two relations on memories,
both implemented here against a security environment Gamma (a map from names
to labels):

* ``l``-equivalence ``m1 ~l m2``: agreement on every location at level
  ``l`` *or below* -- what an observer at ``l`` can tell apart.
* projected equivalence ``m1 =l= m2``: agreement on locations at *exactly*
  level ``l`` -- the building block of the quantitative definitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

from ..lattice import Label

ValueSpec = Union[int, Sequence[int]]


class MemoryError_(KeyError):
    """Raised on access to an undeclared variable or an out-of-bounds index."""


class Memory:
    """A store for scalars and arrays.

    The set of names and the array lengths are fixed at construction --
    programs cannot allocate.  This matches the paper's while-language, where
    the variable set is implicit in the program, and keeps the address layout
    (:mod:`repro.machine.layout`) static.
    """

    def __init__(self, values: Mapping[str, ValueSpec] = ()):
        self._scalars: Dict[str, int] = {}
        self._arrays: Dict[str, list] = {}
        for name, spec in dict(values).items():
            if isinstance(spec, bool):
                self._scalars[name] = int(spec)
            elif isinstance(spec, int):
                self._scalars[name] = spec
            else:
                self._arrays[name] = [int(v) for v in spec]

    # -- declaration queries -------------------------------------------------

    def is_scalar(self, name: str) -> bool:
        """Is ``name`` a declared scalar?"""
        return name in self._scalars

    def is_array(self, name: str) -> bool:
        """Is ``name`` a declared array?"""
        return name in self._arrays

    def names(self) -> Tuple[str, ...]:
        """All declared names, scalars then arrays, each sorted."""
        return tuple(sorted(self._scalars)) + tuple(sorted(self._arrays))

    def array_length(self, name: str) -> int:
        """The fixed length of array ``name``."""
        self._require_array(name)
        return len(self._arrays[name])

    # -- reads and writes -------------------------------------------------------

    def read(self, name: str) -> int:
        """The current value of scalar ``name``."""
        if name not in self._scalars:
            raise MemoryError_(f"undeclared scalar variable {name!r}")
        return self._scalars[name]

    def write(self, name: str, value: int) -> None:
        """Set scalar ``name`` to ``value``."""
        if name not in self._scalars:
            raise MemoryError_(f"undeclared scalar variable {name!r}")
        self._scalars[name] = int(value)

    def read_elem(self, name: str, index: int) -> int:
        """The value of ``name[index]`` (bounds-checked)."""
        self._check_index(name, index)
        return self._arrays[name][index]

    def write_elem(self, name: str, index: int, value: int) -> None:
        """Set ``name[index]`` to ``value`` (bounds-checked)."""
        self._check_index(name, index)
        self._arrays[name][index] = int(value)

    def _require_array(self, name: str) -> None:
        if name not in self._arrays:
            raise MemoryError_(f"undeclared array {name!r}")

    def _check_index(self, name: str, index: int) -> None:
        self._require_array(name)
        if not 0 <= index < len(self._arrays[name]):
            raise MemoryError_(
                f"index {index} out of bounds for array {name!r} "
                f"of length {len(self._arrays[name])}"
            )

    # -- copying and comparison ---------------------------------------------------

    def copy(self) -> "Memory":
        """An independent deep copy of the store."""
        clone = Memory()
        clone._scalars = dict(self._scalars)
        clone._arrays = {k: list(v) for k, v in self._arrays.items()}
        return clone

    def snapshot(self) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
        """An immutable, hashable view of the whole store."""
        items = [(k, (v,)) for k, v in self._scalars.items()]
        items += [(k, tuple(v)) for k, v in self._arrays.items()]
        return tuple(sorted(items))

    def value_of(self, name: str) -> ValueSpec:
        """The value of a scalar, or an array's contents as a tuple."""
        if name in self._scalars:
            return self._scalars[name]
        if name in self._arrays:
            return tuple(self._arrays[name])
        raise MemoryError_(f"undeclared name {name!r}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __hash__(self) -> int:
        return hash(self.snapshot())

    def __repr__(self) -> str:
        parts = [f"{k}={v}" for k, v in self._scalars.items()]
        parts += [f"{k}={v}" for k, v in self._arrays.items()]
        return f"Memory({', '.join(parts)})"


def equivalent(
    m1: Memory, m2: Memory, gamma: Mapping[str, Label], level: Label
) -> bool:
    """``m1 ~l m2``: agreement on all locations at ``level`` or below."""
    names = set(m1.names()) | set(m2.names())
    for name in names:
        label = gamma.get(name)
        if label is None:
            raise KeyError(f"no security label for {name!r}")
        if label.flows_to(level) and m1.value_of(name) != m2.value_of(name):
            return False
    return True


def projected_equivalent(
    m1: Memory, m2: Memory, gamma: Mapping[str, Label], level: Label
) -> bool:
    """``m1 =l= m2``: agreement on locations at exactly ``level``."""
    names = set(m1.names()) | set(m2.names())
    for name in names:
        label = gamma.get(name)
        if label is None:
            raise KeyError(f"no security label for {name!r}")
        if label == level and m1.value_of(name) != m2.value_of(name):
            return False
    return True


def memories_agreeing_on(
    m1: Memory, m2: Memory, names: Iterable[str]
) -> bool:
    """Do the two memories agree on the given names (Property 6 premise)?"""
    return all(m1.value_of(name) == m2.value_of(name) for name in names)
