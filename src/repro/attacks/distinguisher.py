"""Timing distinguishers: the Sec. 3.4 adversary, made concrete.

The paper's threat model is a strong coresident adversary who observes
public memory locations and *when* they change.  Given the timing series an
execution produces, the questions an attacker asks are statistical:

* Can two secret values be told apart from timing?
  (:func:`distinguishable`, exact: disjoint observation sets.)
* Given labeled timing samples, how accurately does the best
  single-threshold classifier separate them?
  (:func:`threshold_classifier` -- this is the Bortz-Boneh username probe:
  valid and invalid logins separate cleanly on unmitigated systems.)
* How much does timing covary with a secret-derived quantity?
  (:func:`pearson_correlation` -- Kocher-style key-weight recovery.)
* Is an observed timing difference statistically *significant*, or noise?
  (:func:`advantage` -- Welch's t-test over the two labeled samples, the
  question every over-the-wire attack has to answer before promoting a
  candidate.)

The benchmarks use these to show each attack *succeeding* on the ``nopar``
baseline and *failing* (accuracy at chance, correlation near zero,
observation sets identical) under mitigation on secure hardware.  The
red-team campaign (:mod:`repro.adversary`) shares the same module: its
concurrent median-of-N measurements feed :func:`advantage`, so the
in-process probes and the served-system adversaries report one statistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple


def distinguishable(times_a: Sequence[int], times_b: Sequence[int]) -> bool:
    """Exact distinguishability: do the two observation sets differ at all?

    With deterministic execution (Property 2), any difference between the
    sets of observed times is a reliable channel.
    """
    return set(times_a) != set(times_b)


@dataclass
class ThresholdResult:
    """The best single-threshold separation of two labeled samples."""

    threshold: float
    accuracy: float
    low_class: str

    def separates(self, confidence: float = 0.95) -> bool:
        """Does the classifier beat ``confidence`` accuracy?"""
        return self.accuracy >= confidence


def threshold_classifier(
    times_a: Sequence[int],
    times_b: Sequence[int],
    label_a: str = "a",
    label_b: str = "b",
) -> ThresholdResult:
    """The best threshold classifier between two timing samples.

    Scans every candidate threshold (midpoints of adjacent observed values)
    and both orientations; returns the highest achievable accuracy.  Chance
    level is ``max(|a|, |b|) / (|a| + |b|)``.
    """
    if not times_a or not times_b:
        raise ValueError("both samples must be non-empty")
    points = sorted(set(times_a) | set(times_b))
    candidates = [points[0] - 1.0]
    candidates += [
        (points[i] + points[i + 1]) / 2.0 for i in range(len(points) - 1)
    ]
    candidates.append(points[-1] + 1.0)
    total = len(times_a) + len(times_b)
    best = ThresholdResult(threshold=candidates[0], accuracy=0.0,
                           low_class=label_a)
    for threshold in candidates:
        a_low = sum(1 for t in times_a if t <= threshold)
        b_low = sum(1 for t in times_b if t <= threshold)
        # Orientation 1: a below the threshold, b above.
        acc1 = (a_low + (len(times_b) - b_low)) / total
        # Orientation 2: b below the threshold, a above.
        acc2 = (b_low + (len(times_a) - a_low)) / total
        if acc1 > best.accuracy:
            best = ThresholdResult(threshold, acc1, label_a)
        if acc2 > best.accuracy:
            best = ThresholdResult(threshold, acc2, label_b)
    return best


def chance_accuracy(times_a: Sequence[int], times_b: Sequence[int]) -> float:
    """The accuracy of always guessing the majority class."""
    total = len(times_a) + len(times_b)
    return max(len(times_a), len(times_b)) / total


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson's r; 0.0 when either sample is constant."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def partition_by(
    times: Sequence[int], labels: Sequence[object]
) -> Dict[object, List[int]]:
    """Group a timing series by per-sample labels."""
    if len(times) != len(labels):
        raise ValueError("times and labels must align")
    groups: Dict[object, List[int]] = {}
    for t, label in zip(times, labels):
        groups.setdefault(label, []).append(t)
    return groups


def username_probe(
    times: Sequence[int], validity: Sequence[bool]
) -> ThresholdResult:
    """The Bortz-Boneh probe: classify attempts as valid/invalid by time."""
    groups = partition_by(times, validity)
    if True not in groups or False not in groups:
        raise ValueError("need both valid and invalid attempts")
    return threshold_classifier(
        groups[False], groups[True], label_a="invalid", label_b="valid"
    )


def median(values: Sequence[float]) -> float:
    """The sample median; the average of the middle pair for even sizes."""
    if not values:
        raise ValueError("median of an empty sample")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def median_of_n(sample: Callable[[], float], n: int) -> float:
    """Draw ``n`` observations from ``sample()`` and return their median.

    This is the noise-rejection idiom every over-the-wire timing attack
    uses: a handful of repeated measurements, reduced by the median so a
    single scheduling outlier cannot flip a candidate ranking.
    """
    if n < 1:
        raise ValueError("need at least one sample")
    return median([float(sample()) for _ in range(n)])


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta function."""
    tiny = 1e-30
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-12:
            break
    return h


def _reg_incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta I_x(a, b), stdlib math only."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _student_t_sf(t: float, dof: float) -> float:
    """P(T >= t) for Student's t with ``dof`` degrees of freedom."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    x = dof / (dof + t * t)
    p = 0.5 * _reg_incomplete_beta(dof / 2.0, 0.5, x)
    return p if t >= 0 else 1.0 - p


@dataclass
class AdvantageResult:
    """Welch's t-test verdict on two labeled timing samples.

    ``advantage`` is the best threshold classifier's edge over chance
    (0 means indistinguishable, 0.5 means perfect separation of balanced
    samples); ``p_value`` is the two-sided Welch probability that the
    observed mean difference arose from one distribution.
    """

    advantage: float
    accuracy: float
    chance: float
    mean_a: float
    mean_b: float
    samples_a: int
    samples_b: int
    t_stat: float
    dof: float
    p_value: float

    def significant(self, alpha: float = 0.01) -> bool:
        """Is the timing difference statistically significant at ``alpha``?"""
        return self.p_value < alpha

    def as_dict(self) -> Dict[str, float]:
        return {
            "advantage": self.advantage,
            "accuracy": self.accuracy,
            "chance": self.chance,
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
            "samples_a": self.samples_a,
            "samples_b": self.samples_b,
            "t_stat": self.t_stat,
            "dof": self.dof,
            "p_value": self.p_value,
        }


def welch_t(
    times_a: Sequence[float], times_b: Sequence[float]
) -> Tuple[float, float]:
    """Welch's t statistic and Welch-Satterthwaite degrees of freedom.

    Degenerate zero-variance samples are handled the way an attacker
    reads them: identical constants give ``t = 0`` (no signal), distinct
    constants give ``t = inf`` (deterministically distinguishable).
    """
    n_a, n_b = len(times_a), len(times_b)
    if n_a < 2 or n_b < 2:
        raise ValueError("Welch's t-test needs >= 2 samples per class")
    mean_a = sum(times_a) / n_a
    mean_b = sum(times_b) / n_b
    var_a = sum((t - mean_a) ** 2 for t in times_a) / (n_a - 1)
    var_b = sum((t - mean_b) ** 2 for t in times_b) / (n_b - 1)
    se_sq = var_a / n_a + var_b / n_b
    if se_sq == 0.0:
        if mean_a == mean_b:
            return 0.0, float(n_a + n_b - 2)
        return math.copysign(math.inf, mean_a - mean_b), float(n_a + n_b - 2)
    t_stat = (mean_a - mean_b) / math.sqrt(se_sq)
    dof = se_sq ** 2 / (
        (var_a / n_a) ** 2 / (n_a - 1) + (var_b / n_b) ** 2 / (n_b - 1)
    )
    return t_stat, dof


def advantage(
    times_a: Sequence[float],
    times_b: Sequence[float],
    label_a: str = "a",
    label_b: str = "b",
) -> AdvantageResult:
    """Distinguisher advantage with a Welch's t-test significance verdict.

    Combines the two questions an adversary must answer: *how well* do
    the samples separate (threshold classifier accuracy over chance) and
    *should I believe it* (two-sided Welch p-value on the means).
    """
    best = threshold_classifier(times_a, times_b, label_a, label_b)
    chance = chance_accuracy(times_a, times_b)
    t_stat, dof = welch_t(times_a, times_b)
    if math.isinf(t_stat):
        p_value = 0.0
    elif t_stat == 0.0:
        p_value = 1.0
    else:
        p_value = 2.0 * _student_t_sf(abs(t_stat), dof)
        p_value = min(1.0, max(0.0, p_value))
    mean_a = sum(times_a) / len(times_a)
    mean_b = sum(times_b) / len(times_b)
    return AdvantageResult(
        advantage=max(0.0, best.accuracy - chance),
        accuracy=best.accuracy,
        chance=chance,
        mean_a=mean_a,
        mean_b=mean_b,
        samples_a=len(times_a),
        samples_b=len(times_b),
        t_stat=t_stat,
        dof=dof,
        p_value=p_value,
    )
