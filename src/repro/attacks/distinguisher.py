"""Timing distinguishers: the Sec. 3.4 adversary, made concrete.

The paper's threat model is a strong coresident adversary who observes
public memory locations and *when* they change.  Given the timing series an
execution produces, the questions an attacker asks are statistical:

* Can two secret values be told apart from timing?
  (:func:`distinguishable`, exact: disjoint observation sets.)
* Given labeled timing samples, how accurately does the best
  single-threshold classifier separate them?
  (:func:`threshold_classifier` -- this is the Bortz-Boneh username probe:
  valid and invalid logins separate cleanly on unmitigated systems.)
* How much does timing covary with a secret-derived quantity?
  (:func:`pearson_correlation` -- Kocher-style key-weight recovery.)

The benchmarks use these to show each attack *succeeding* on the ``nopar``
baseline and *failing* (accuracy at chance, correlation near zero,
observation sets identical) under mitigation on secure hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def distinguishable(times_a: Sequence[int], times_b: Sequence[int]) -> bool:
    """Exact distinguishability: do the two observation sets differ at all?

    With deterministic execution (Property 2), any difference between the
    sets of observed times is a reliable channel.
    """
    return set(times_a) != set(times_b)


@dataclass
class ThresholdResult:
    """The best single-threshold separation of two labeled samples."""

    threshold: float
    accuracy: float
    low_class: str

    def separates(self, confidence: float = 0.95) -> bool:
        """Does the classifier beat ``confidence`` accuracy?"""
        return self.accuracy >= confidence


def threshold_classifier(
    times_a: Sequence[int],
    times_b: Sequence[int],
    label_a: str = "a",
    label_b: str = "b",
) -> ThresholdResult:
    """The best threshold classifier between two timing samples.

    Scans every candidate threshold (midpoints of adjacent observed values)
    and both orientations; returns the highest achievable accuracy.  Chance
    level is ``max(|a|, |b|) / (|a| + |b|)``.
    """
    if not times_a or not times_b:
        raise ValueError("both samples must be non-empty")
    points = sorted(set(times_a) | set(times_b))
    candidates = [points[0] - 1.0]
    candidates += [
        (points[i] + points[i + 1]) / 2.0 for i in range(len(points) - 1)
    ]
    candidates.append(points[-1] + 1.0)
    total = len(times_a) + len(times_b)
    best = ThresholdResult(threshold=candidates[0], accuracy=0.0,
                           low_class=label_a)
    for threshold in candidates:
        a_low = sum(1 for t in times_a if t <= threshold)
        b_low = sum(1 for t in times_b if t <= threshold)
        # Orientation 1: a below the threshold, b above.
        acc1 = (a_low + (len(times_b) - b_low)) / total
        # Orientation 2: b below the threshold, a above.
        acc2 = (b_low + (len(times_a) - a_low)) / total
        if acc1 > best.accuracy:
            best = ThresholdResult(threshold, acc1, label_a)
        if acc2 > best.accuracy:
            best = ThresholdResult(threshold, acc2, label_b)
    return best


def chance_accuracy(times_a: Sequence[int], times_b: Sequence[int]) -> float:
    """The accuracy of always guessing the majority class."""
    total = len(times_a) + len(times_b)
    return max(len(times_a), len(times_b)) / total


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson's r; 0.0 when either sample is constant."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def partition_by(
    times: Sequence[int], labels: Sequence[object]
) -> Dict[object, List[int]]:
    """Group a timing series by per-sample labels."""
    if len(times) != len(labels):
        raise ValueError("times and labels must align")
    groups: Dict[object, List[int]] = {}
    for t, label in zip(times, labels):
        groups.setdefault(label, []).append(t)
    return groups


def username_probe(
    times: Sequence[int], validity: Sequence[bool]
) -> ThresholdResult:
    """The Bortz-Boneh probe: classify attempts as valid/invalid by time."""
    groups = partition_by(times, validity)
    if True not in groups or False not in groups:
        raise ValueError("need both valid and invalid attempts")
    return threshold_classifier(
        groups[False], groups[True], label_a="invalid", label_b="valid"
    )
