"""A coresident cache-probing adversary (prime-and-probe).

Sec. 2.1's threat model lets the adversary *probe timing using the shared
cache*: after the victim runs, the attacker touches chosen addresses with
public (bottom-labeled) accesses and measures which are fast (cached -- the
victim touched that set) and which are slow.  This is the attack pattern
behind the AES cache attacks the paper cites (Osvik-Shamir-Tromer,
Gullasch et al.).

On :class:`~repro.hardware.standard.StandardHardware` the probe vector leaks
the victim's secret-dependent access pattern.  On the secure designs it
cannot: no-fill never lets high contexts install lines, and the partitioned
design confines them to partitions a bottom-labeled probe does not read
(Property 6 is precisely the guarantee that the probe cost is a function of
bottom state only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..machine.layout import AccessTrace
from ..hardware.interface import MachineEnvironment, StepKind
from ..telemetry.recorder import TraceRecorder


@dataclass
class ProbeResult:
    """Per-address probe costs, in probe order."""

    addresses: Tuple[int, ...]
    costs: Tuple[int, ...]

    def hits(self, hit_threshold: int) -> Tuple[bool, ...]:
        """Which probes were fast (cost <= threshold)?"""
        return tuple(cost <= hit_threshold for cost in self.costs)


def probe(
    environment: MachineEnvironment,
    addresses: Sequence[int],
    probe_instruction: int = 0x7FFF_0000,
    recorder: Optional[TraceRecorder] = None,
    attack: str = "cache_probe",
) -> ProbeResult:
    """Time a public access to each address on (a clone of) the environment.

    Each probe runs against its own clone so probes do not disturb each
    other -- the attacker's strongest (simultaneous) variant.  ``recorder``
    receives one ``attack_sample`` per probed address (the access cost the
    adversary timed), tagged with ``attack``.
    """
    observing = recorder is not None and recorder.active
    lattice = environment.lattice
    bottom = lattice.bottom
    costs = []
    for address in addresses:
        clone = environment.clone()
        cost = clone.step(
            StepKind.ASSIGN,
            AccessTrace(
                instruction=probe_instruction, reads=(address,), writes=()
            ),
            bottom,
            bottom,
        )
        costs.append(cost)
        if observing:
            recorder.on_attack_sample(attack, f"addr{address:#x}", cost)
    return ProbeResult(addresses=tuple(addresses), costs=tuple(costs))


def probe_distinguishes(
    env_a: MachineEnvironment,
    env_b: MachineEnvironment,
    addresses: Sequence[int],
) -> bool:
    """Can a public probe tell the two post-victim environments apart?

    This is a direct empirical test of Property 6 at the bottom level:
    if the victim's secrets only reached non-bottom state, every public
    probe must cost the same against both environments.
    """
    return probe(env_a, addresses).costs != probe(env_b, addresses).costs


def eviction_set(
    base_address: int, sets: int, block_bytes: int, ways: int, stride_sets: int = 0
) -> List[int]:
    """Addresses that all land in one cache set (a classic eviction set).

    ``stride_sets`` picks which set (offset from the base's set); the
    returned ``ways + 1`` addresses are guaranteed to overflow the set on
    any LRU cache of the given geometry.
    """
    set_stride = sets * block_bytes
    start = base_address + stride_sets * block_bytes
    return [start + i * set_stride for i in range(ways + 1)]
