"""The adaptive prefix-recovery attack on early-exit comparison.

Response time of an early-exit compare grows with the matching prefix, so
an attacker recovers the secret position by position: at each position, try
every symbol and keep the guess that takes *longest* (it matched and pushed
the comparison one position deeper).  Cost: ``length x alphabet`` guesses
instead of ``alphabet ^ length`` -- the exponential-to-linear collapse that
makes timing channels devastating.

Because the channel is direct (loop trip count), the attack works on every
hardware design including the paper's secure ones; only language-level
mitigation defeats it, by collapsing all prefix lengths onto the same
padded duration so the argmax is uninformative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..apps.password import PasswordChecker
from ..hardware import MachineParams
from ..telemetry.recorder import TraceRecorder


@dataclass
class PrefixAttackResult:
    """Outcome of an adaptive recovery attempt."""

    recovered: List[int]
    true_secret: Tuple[int, ...]
    guesses_used: int

    @property
    def correct_prefix(self) -> int:
        """How many leading positions were recovered correctly."""
        count = 0
        for mine, theirs in zip(self.recovered, self.true_secret):
            if mine != theirs:
                break
            count += 1
        return count

    @property
    def succeeded(self) -> bool:
        return tuple(self.recovered) == self.true_secret


def _response_time(
    checker: PasswordChecker,
    stored: Sequence[int],
    guess: Sequence[int],
    hardware: str,
    params: Optional[MachineParams],
    recorder: Optional[TraceRecorder] = None,
) -> int:
    result = checker.run(stored, guess, hardware=hardware, params=params,
                         recorder=recorder)
    # The attacker observes the public 'done' update.
    return next(e.time for e in result.events if e.name == "done")


def recover_password(
    checker: PasswordChecker,
    stored: Sequence[int],
    alphabet: int = 16,
    hardware: str = "partitioned",
    params: Optional[MachineParams] = None,
    filler: int = 0,
    recorder: Optional[TraceRecorder] = None,
) -> PrefixAttackResult:
    """Adaptive position-by-position recovery via response timing.

    ``alphabet`` is the symbol range [0, alphabet); ``filler`` pads the
    yet-unknown tail of each probe.  On an unmitigated checker this
    recovers the whole secret with ``length * alphabet`` probes; on a
    mitigated one the timings are flat and the recovered string is
    garbage (the argmax ties break arbitrarily toward the first symbol).

    ``recorder`` (see :mod:`repro.telemetry`) observes every victim run
    and receives one ``attack_sample`` per guess -- the response time the
    adversary saw -- plus summary ``attack_stat`` records at the end.
    """
    observing = recorder is not None and recorder.active
    length = checker.length
    recovered: List[int] = []
    guesses = 0
    for position in range(length):
        # Signal direction: a correct symbol at positions 0..length-2 pushes
        # the loop deeper (slower).  At the final position the trip count
        # is the same either way, but a *mismatch* executes the extra
        # ``ok := 0`` -- so there the correct symbol is the fastest.
        want_max = position < length - 1
        best_symbol = 0
        best_time: Optional[int] = None
        for symbol in range(alphabet):
            probe = list(recovered) + [symbol]
            probe += [filler] * (length - len(probe))
            elapsed = _response_time(checker, stored, probe, hardware,
                                     params, recorder=recorder)
            guesses += 1
            if observing:
                recorder.on_attack_sample(
                    "prefix", f"pos{position}.sym{symbol}", elapsed
                )
            better = (
                best_time is None
                or (elapsed > best_time if want_max else elapsed < best_time)
            )
            if better:
                best_time = elapsed
                best_symbol = symbol
        recovered.append(best_symbol)
    outcome = PrefixAttackResult(
        recovered=recovered,
        true_secret=tuple(stored),
        guesses_used=guesses,
    )
    if observing:
        recorder.on_attack_stat("prefix", "guesses", outcome.guesses_used)
        recorder.on_attack_stat("prefix", "correct_prefix",
                                outcome.correct_prefix)
        recorder.on_attack_stat("prefix", "succeeded",
                                int(outcome.succeeded))
    return outcome
