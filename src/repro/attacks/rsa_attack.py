"""Kocher-style timing analysis of the RSA case study.

Square-and-multiply executes one modular multiply per *set* bit of the
private exponent, so unmitigated decryption time is an affine function of
the key's Hamming weight.  Measuring a few keys of known weight calibrates
the line; the secret key's weight then falls out of a single timing
measurement.  (Full Kocher bit-by-bit recovery additionally conditions on
message values; recovering the weight already demonstrates the channel and
is what the Fig. 8 experiment visualizes.)

Under language-level mitigation the decryption time is constant, the fitted
slope carries no signal, and :func:`recover_hamming_weight` degrades to
guessing -- which the benchmarks verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..apps.rsa import RsaSystem
from ..apps.rsa_math import RsaKey, encrypt_blocks
from ..telemetry.recorder import TraceRecorder
from .distinguisher import pearson_correlation


@dataclass
class WeightModel:
    """An affine model ``time = intercept + slope * hamming_weight``."""

    slope: float
    intercept: float
    correlation: float

    def predict_weight(self, observed_time: float) -> float:
        if self.slope == 0:
            return float("nan")
        return (observed_time - self.intercept) / self.slope


def fit_weight_model(
    weights: Sequence[int], times: Sequence[int]
) -> WeightModel:
    """Least-squares fit of decryption time against key Hamming weight."""
    if len(weights) != len(times) or len(weights) < 2:
        raise ValueError("need two aligned samples of size >= 2")
    n = len(weights)
    mean_w = sum(weights) / n
    mean_t = sum(times) / n
    var_w = sum((w - mean_w) ** 2 for w in weights)
    if var_w == 0:
        return WeightModel(slope=0.0, intercept=mean_t, correlation=0.0)
    cov = sum(
        (w - mean_w) * (t - mean_t) for w, t in zip(weights, times)
    )
    slope = cov / var_w
    intercept = mean_t - slope * mean_w
    corr = pearson_correlation([float(w) for w in weights],
                               [float(t) for t in times])
    return WeightModel(slope=slope, intercept=intercept, correlation=corr)


def measure_key_times(
    system: RsaSystem,
    keys: Sequence[RsaKey],
    message: List[int],
    hardware: str = "partitioned",
    params=None,
    recorder: Optional[TraceRecorder] = None,
) -> List[int]:
    """Decryption time of one shared message under each key.

    ``recorder`` observes every decryption and receives one
    ``attack_sample`` per key: the total time the adversary measured.
    """
    observing = recorder is not None and recorder.active
    times = []
    for index, key in enumerate(keys):
        cipher = encrypt_blocks(message, key)
        result = system.run(key, cipher, hardware=hardware, params=params,
                            recorder=recorder)
        times.append(result.time)
        if observing:
            recorder.on_attack_sample(
                "rsa", f"key{index}.weight{key.hamming_weight()}",
                result.time,
            )
    return times


@dataclass
class AttackOutcome:
    """Result of a weight-recovery attack on one target key."""

    true_weight: int
    recovered_weight: Optional[float]
    model: WeightModel

    @property
    def error(self) -> float:
        if self.recovered_weight is None or self.recovered_weight != \
                self.recovered_weight:  # NaN check
            return float("inf")
        return abs(self.recovered_weight - self.true_weight)

    def succeeded(self, tolerance: float = 1.0) -> bool:
        """Did the attack land within ``tolerance`` bits of the truth?"""
        return self.error <= tolerance


def hamming_weight_attack(
    system: RsaSystem,
    calibration_keys: Sequence[RsaKey],
    target_key: RsaKey,
    message: List[int],
    hardware: str = "partitioned",
    params=None,
    recorder: Optional[TraceRecorder] = None,
) -> AttackOutcome:
    """Calibrate on known keys, then recover the target key's weight.

    On an unmitigated system the recovered weight is essentially exact; on
    a mitigated one the calibration line is flat and recovery fails.
    ``recorder`` observes every measurement and receives the fitted
    model's slope/correlation and the recovery error as ``attack_stat``
    records.
    """
    cal_times = measure_key_times(
        system, calibration_keys, message, hardware=hardware, params=params,
        recorder=recorder,
    )
    model = fit_weight_model(
        [k.hamming_weight() for k in calibration_keys], cal_times
    )
    target_time = measure_key_times(
        system, [target_key], message, hardware=hardware, params=params,
        recorder=recorder,
    )[0]
    recovered = model.predict_weight(target_time)
    outcome = AttackOutcome(
        true_weight=target_key.hamming_weight(),
        recovered_weight=recovered,
        model=model,
    )
    if recorder is not None and recorder.active:
        recorder.on_attack_stat("rsa", "slope", model.slope)
        recorder.on_attack_stat("rsa", "correlation", model.correlation)
        if recovered == recovered:  # skip the NaN of a flat model
            recorder.on_attack_stat("rsa", "recovered_weight", recovered)
        recorder.on_attack_stat("rsa", "true_weight", outcome.true_weight)
        recorder.on_attack_stat("rsa", "succeeded", int(outcome.succeeded()))
    return outcome
