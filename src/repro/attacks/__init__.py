"""Timing adversaries: distinguishers, cache probing, and RSA key analysis."""

from .cache_probe import ProbeResult, eviction_set, probe, probe_distinguishes
from .distinguisher import (
    AdvantageResult,
    ThresholdResult,
    advantage,
    chance_accuracy,
    distinguishable,
    median,
    median_of_n,
    partition_by,
    pearson_correlation,
    threshold_classifier,
    username_probe,
    welch_t,
)
from .prefix_attack import PrefixAttackResult, recover_password
from .sbox_attack import SboxAttackResult, recover_key_byte
from .rsa_attack import (
    AttackOutcome,
    WeightModel,
    fit_weight_model,
    hamming_weight_attack,
    measure_key_times,
)

__all__ = [
    "AdvantageResult",
    "AttackOutcome",
    "ProbeResult",
    "PrefixAttackResult",
    "SboxAttackResult",
    "ThresholdResult",
    "WeightModel",
    "advantage",
    "chance_accuracy",
    "distinguishable",
    "eviction_set",
    "fit_weight_model",
    "hamming_weight_attack",
    "measure_key_times",
    "median",
    "median_of_n",
    "partition_by",
    "pearson_correlation",
    "probe",
    "probe_distinguishes",
    "recover_key_byte",
    "recover_password",
    "threshold_classifier",
    "username_probe",
    "welch_t",
]
