"""Prime-and-probe key recovery against the S-box cipher.

The classic one-round AES cache analysis (Osvik-Shamir-Tromer): each
encryption touches the S-box cache line indexed by ``p ^ k``; probing which
lines are warm after an encryption with known plaintext byte ``p`` confines
the key byte ``k`` to the entries of the hot lines, and intersecting the
candidate sets over a handful of chosen plaintexts converges.

Line granularity is the attack's resolution limit, exactly as in the
literature: ``(p ^ k) >> 3 = (p >> 3) ^ (k >> 3)`` (XOR is bitwise), so
probing 32-byte lines of 4-byte entries reveals the key byte's top 5 bits
and can never see the bottom 3 (full AES attacks proceed to second-round
analysis for those).  Expect ``bits_learned() >= 5`` against
:class:`~repro.hardware.standard.StandardHardware` after a few chosen
plaintexts, and exactly 0 against the paper's secure designs: no-fill never
installs the victim's lookups, and the partitioned design installs them in
the H partition, which a bottom-labeled probe cannot observe (Property 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..apps.sbox_cipher import KEY_LENGTH, SBOX_SIZE, SboxCipher
from ..machine.layout import WORD_BYTES, Layout
from ..hardware import MachineParams
from ..telemetry.recorder import TraceRecorder
from .cache_probe import probe


@dataclass
class SboxAttackResult:
    """Outcome of a key-byte recovery attempt."""

    candidates: Set[int]
    true_byte: int
    probes_used: int

    @property
    def recovered(self) -> bool:
        return self.candidates == {self.true_byte}

    @property
    def learned_anything(self) -> bool:
        return len(self.candidates) < SBOX_SIZE

    def bits_learned(self) -> float:
        import math

        if not self.candidates:
            return 0.0
        return math.log2(SBOX_SIZE / len(self.candidates))


def _sbox_blocks(layout: Layout, block_bytes: int) -> List[int]:
    """The distinct cache-block base addresses covering the S-box."""
    base = layout.array_addr["sbox"]
    blocks = sorted(
        {
            ((base + WORD_BYTES * e) // block_bytes) * block_bytes
            for e in range(SBOX_SIZE)
        }
    )
    return blocks


def _entries_in_block(
    layout: Layout, block_addr: int, block_bytes: int
) -> Set[int]:
    base = layout.array_addr["sbox"]
    return {
        e
        for e in range(SBOX_SIZE)
        if (base + WORD_BYTES * e) // block_bytes == block_addr // block_bytes
    }


def recover_key_byte(
    cipher: SboxCipher,
    key: Sequence[int],
    chosen_plaintexts: Sequence[int],
    byte_index: int = 0,
    hardware: str = "nopar",
    params: Optional[MachineParams] = None,
    block_bytes: int = 32,
    recorder: Optional[TraceRecorder] = None,
) -> SboxAttackResult:
    """Recover ``key[byte_index]`` by prime-and-probe over the S-box lines.

    ``cipher`` should encrypt a single byte at position ``byte_index``
    (``length = byte_index + 1`` works); each chosen plaintext byte drives
    one victim run on a fresh environment, after which the attacker times a
    public read of every S-box block.  ``recorder`` observes every victim
    run, receives one ``attack_sample`` per probed block, and summary
    ``attack_stat`` records (probes, surviving candidates, bits learned).
    """
    observing = recorder is not None and recorder.active
    candidates: Set[int] = set(range(SBOX_SIZE))
    probes = 0
    plaintext_template = [0] * cipher.plaintext_length
    # Static layout: the attacker derives addresses exactly as the loader
    # does.  (Address-space randomization is out of scope, as in the paper.)
    layout = Layout.build(
        cipher.program, cipher.memory(list(key), plaintext_template)
    )
    blocks = _sbox_blocks(layout, block_bytes)

    for p in chosen_plaintexts:
        plaintext = list(plaintext_template)
        plaintext[byte_index % cipher.plaintext_length] = p % SBOX_SIZE
        result = cipher.run(list(key), plaintext, hardware=hardware,
                            params=params, recorder=recorder)
        probes += 1
        costs = probe(result.environment, blocks, recorder=recorder,
                      attack="sbox").costs
        fast = min(costs)
        slow = max(costs)
        if fast == slow:
            continue  # no contrast: the probe learned nothing this round
        hot = [addr for addr, cost in zip(blocks, costs) if cost == fast]
        allowed: Set[int] = set()
        for addr in hot:
            for entry in _entries_in_block(layout, addr, block_bytes):
                allowed.add((entry ^ (p % SBOX_SIZE)) % SBOX_SIZE)
        candidates &= allowed
        if len(candidates) <= 1:
            break

    outcome = SboxAttackResult(
        candidates=candidates,
        true_byte=key[byte_index % KEY_LENGTH] % SBOX_SIZE,
        probes_used=probes,
    )
    if observing:
        recorder.on_attack_stat("sbox", "probes", outcome.probes_used)
        recorder.on_attack_stat("sbox", "candidates",
                                len(outcome.candidates))
        recorder.on_attack_stat("sbox", "bits_learned",
                                outcome.bits_learned())
        recorder.on_attack_stat("sbox", "recovered", int(outcome.recovered))
    return outcome
