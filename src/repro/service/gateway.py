"""The mitigated request gateway: a deterministic virtual-clock server.

The gateway is a discrete-event simulation of the paper's motivating
deployment (Sec. 1, Fig. 7/8): many clients, one shared server, response
*times* as the channel.  Everything advances on one global virtual clock
measured in hardware cycles, so a workload spec plus a seed fully
determines every release time -- the property the leakage audit and the
reproducibility tests lean on.

Per request, the life cycle is::

    arrival --admit--> tenant queue --dispatch--> execute --release--> client
        \\-- queue full: retry with jitter (bounded), then reject
        \\-- waited past the timeout at dispatch: drop as timed out

and the pieces that make it *timing-safe* rather than merely functional:

* every handler invocation runs under the existing predictive-mitigation
  runtime with a **tenant-owned**
  :class:`~repro.semantics.mitigation.MitigationState` -- tenant A's
  mispredictions inflate only A's predictions, so one tenant's ``Miss``
  trajectory can never become another tenant's timing oracle;
* each tenant also owns a
  :class:`~repro.telemetry.leakage.DynamicLeakageMeter`, fed one
  deadline sequence per request, so the Theorem 2 account is kept *per
  tenant* end to end;
* the release discipline is the scheduler policy's
  (:mod:`repro.service.scheduler`): under the quantized policy both
  starts and releases snap to quantum boundaries, TIFC-style.

Admission control keeps overload from deadlocking anything: queues are
bounded per tenant (backpressure), a full queue bounces the arrival into a
seeded retry-with-jitter loop, and requests that waited past the timeout
are dropped at dispatch instead of occupying a worker.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
import random
from typing import Any, Dict, List, Optional, Tuple

from ..semantics.mitigation import MitigationState, make_scheme
from ..telemetry.leakage import DynamicLeakageMeter
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.profiling import Profiler
from ..telemetry.recorder import (
    RecordingTraceRecorder,
    TeeRecorder,
    TraceRecorder,
)
from .handlers import Handler
from .scheduler import SchedulerPolicy, make_policy, new_queues
from .workload import LoadGenerator, Request, WorkloadSpec

#: Event priorities: at equal clock values, arrivals enter queues before
#: freed workers re-dispatch, and alignment ticks run last.  Any fixed
#: order works; fixing one keeps runs bit-for-bit reproducible.
_ARRIVAL, _FREE, _TICK = 0, 1, 2


@dataclass
class Response:
    """The terminal record of one request."""

    request: Request
    status: str  # "ok" | "rejected" | "timeout"
    start: Optional[int] = None
    completion: Optional[int] = None
    release: Optional[int] = None
    service: Optional[int] = None  # padded program cycles

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def latency(self) -> Optional[int]:
        """Arrival-to-release latency (queueing + service + hold)."""
        if self.release is None:
            return None
        return self.release - self.request.arrival

    @property
    def observable(self) -> Optional[int]:
        """The start-to-release duration -- what a client that knows when
        its request was picked up observes.  This is the quantity the
        per-tenant release audit counts distinct values of."""
        if self.release is None or self.start is None:
            return None
        return self.release - self.start


@dataclass
class TenantStats:
    """Live per-tenant accounting (summarized into the service section)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    timed_out: int = 0
    latencies: List[int] = field(default_factory=list)
    observables: List[int] = field(default_factory=list)
    services: List[int] = field(default_factory=list)


@dataclass
class ServiceResult:
    """Everything one gateway run produces."""

    spec: WorkloadSpec
    policy: SchedulerPolicy
    responses: List[Response]
    makespan: int
    registry: MetricsRegistry
    tenant_registries: Dict[str, MetricsRegistry]
    meters: Dict[str, DynamicLeakageMeter]
    states: Dict[str, MitigationState]
    stats: Dict[str, TenantStats]
    handlers: Dict[str, Handler]
    retries: int

    def completed(self) -> List[Response]:
        return [r for r in self.responses if r.status == "ok"]

    def release_times(self) -> List[int]:
        """Every release time, in completion order -- the determinism
        fingerprint the tests compare across runs."""
        return [r.release for r in self.responses if r.release is not None]

    def throughput_per_mcycle(self) -> float:
        """Completed requests per million cycles of makespan."""
        if not self.makespan:
            return 0.0
        return len(self.completed()) * 1e6 / self.makespan


class Gateway:
    """One configured serving instance; :meth:`serve` runs the workload."""

    def __init__(self, spec: WorkloadSpec,
                 recorder: Optional[TraceRecorder] = None,
                 profiler: Optional[Profiler] = None,
                 source: Optional[Any] = None):
        self.spec = spec
        # The programmatic injection seam: any object with ``initial()``
        # and ``on_response(response, time)`` (the LoadGenerator
        # protocol) can drive the gateway -- the adversary harness
        # (:mod:`repro.adversary`) submits its probe clients through
        # here, interleaved with whatever background load it composes.
        self._source = source
        # The profiling seam resolves to None when off (zero-overhead
        # default, same discipline as the interpreter's).
        self._profiler = (
            profiler if profiler is not None and profiler.active else None
        )
        self.handlers = spec.build_handlers()
        names = [t.name for t in spec.tenants]
        self.policy = make_policy(spec.policy, names, spec.quantum)
        self.registry = MetricsRegistry()
        self._global_recorder = RecordingTraceRecorder(registry=self.registry)
        self._extra_recorder = recorder
        scheme = make_scheme(spec.scheme)
        self.states: Dict[str, MitigationState] = {}
        self.meters: Dict[str, DynamicLeakageMeter] = {}
        self.tenant_registries: Dict[str, MetricsRegistry] = {}
        self._tenant_recorders: Dict[str, RecordingTraceRecorder] = {}
        lattice = spec.lattice()
        for name in names:
            handler = self.handlers[name]
            self.states[name] = MitigationState(scheme=scheme,
                                                policy=spec.penalty)
            self.meters[name] = DynamicLeakageMeter(
                lattice, levels=handler.levels
            )
            self.tenant_registries[name] = MetricsRegistry()
            self._tenant_recorders[name] = RecordingTraceRecorder(
                registry=self.tenant_registries[name],
                meter=self.meters[name],
            )
        self._queues = new_queues(names)
        self._stats = {name: TenantStats() for name in names}
        self._retry_rng = random.Random(spec.seed ^ 0x5EED5EED)
        self._responses: List[Response] = []
        self._heap: List[Tuple[int, int, int, Optional[Request]]] = []
        self._seq = 0
        self._idle: List[int] = []
        self._ticks: set = set()
        self._generator: Optional[Any] = None  # the active request source
        self._retries = 0
        self._clock = 0

    def use_source(self, source: Any) -> "Gateway":
        """Install a request source after construction (the adversary
        harness builds its source from this gateway's handlers)."""
        self._source = source
        return self

    # -- event plumbing ------------------------------------------------------

    def _push(self, time: int, priority: int,
              item: Optional[Request]) -> None:
        heapq.heappush(self._heap, (time, priority, self._seq, item))
        self._seq += 1

    def _schedule_tick(self, time: int) -> None:
        if time not in self._ticks:
            self._ticks.add(time)
            self._push(time, _TICK, None)

    def _queued(self) -> bool:
        return any(self._queues.values())

    # -- request life cycle --------------------------------------------------

    def _admit(self, request: Request, now: int) -> None:
        if request.attempts == 0:
            # First sighting of this request (retries re-enter with
            # attempts > 0): count the submission exactly once.
            self.registry.inc("service.requests.submitted")
            self.tenant_registries[request.tenant].inc(
                "service.requests.submitted"
            )
            self._stats[request.tenant].submitted += 1
        queue = self._queues[request.tenant]
        if len(queue) < self.spec.queue_depth:
            queue.append(request)
            return
        # Backpressure: bounce, retry with seeded jitter, give up after
        # max_retries so overload sheds load instead of deadlocking.
        if request.attempts < self.spec.max_retries:
            request.attempts += 1
            backoff = self.spec.retry_backoff * request.attempts
            jitter = self._retry_rng.randrange(
                max(self.spec.retry_backoff, 1)
            )
            self._retries += 1
            self.registry.inc("service.retries")
            self._push(now + max(backoff + jitter, 1), _ARRIVAL, request)
            return
        self._finish(Response(request=request, status="rejected"), now)

    def _finish(self, response: Response, now: int) -> None:
        """Record a terminal state and let the generator react."""
        self._responses.append(response)
        stats = self._stats[response.tenant]
        registry = self.tenant_registries[response.tenant]
        for reg in (self.registry, registry):
            reg.inc(f"service.requests.{response.status}")
        if response.status == "ok":
            stats.completed += 1
            stats.latencies.append(response.latency)
            stats.observables.append(response.observable)
            stats.services.append(response.service)
            registry.observe("hist.service.observable", response.observable)
            profiler = self._profiler
            if profiler is not None:
                profiler.observe_latency("gateway.latency", response.latency)
                profiler.observe_latency(
                    f"gateway.latency.{response.tenant}", response.latency
                )
                meter = self.meters[response.tenant]
                profiler.burn(response.tenant, meter.observed_bits,
                              meter.static_bound_bits())
        elif response.status == "rejected":
            stats.rejected += 1
        else:
            stats.timed_out += 1
        time = response.release if response.release is not None else now
        follow_up = self._generator.on_response(response, time)
        if follow_up is None:
            return
        for request in (follow_up if isinstance(follow_up, list)
                        else [follow_up]):
            self._push(request.arrival, _ARRIVAL, request)

    def _execute(self, request: Request) -> Any:
        handler = self.handlers[request.tenant]
        recorder = TeeRecorder(
            self._global_recorder,
            self._tenant_recorders[request.tenant],
            self._extra_recorder,
        )
        profiler = self._profiler
        if profiler is None:
            return handler.run(
                request.payload,
                self.states[request.tenant],
                recorder,
                self.spec.hardware,
            )
        started = profiler.clock()
        result = handler.run(
            request.payload,
            self.states[request.tenant],
            recorder,
            self.spec.hardware,
        )
        profiler.add_wall("gateway.handlers", profiler.clock() - started,
                          calls=1)
        profiler.add_cycles("gateway.handlers", result.time)
        return result

    def _dispatch(self, now: int) -> None:
        while self._idle and self._queued():
            start = self.policy.dispatch_time(now)
            if start > now:
                self._schedule_tick(start)
                return
            request = self.policy.select(self._queues)
            if request is None:
                return
            if (self.spec.timeout
                    and now - request.arrival > self.spec.timeout):
                self._finish(Response(request=request, status="timeout"),
                             now)
                continue
            self._idle.pop()
            result = self._execute(request)
            completion = now + result.time
            release = self.policy.release_time(now, completion)
            self._push(completion, _FREE, None)
            self._finish(
                Response(
                    request=request, status="ok", start=now,
                    completion=completion, release=release,
                    service=result.time,
                ),
                now,
            )

    # -- driving -------------------------------------------------------------

    def serve(self) -> ServiceResult:
        """Run the whole workload to completion and return the result."""
        self._generator = (
            self._source if self._source is not None
            else LoadGenerator(self.spec, self.handlers)
        )
        profiler = self._profiler
        if profiler is not None:
            handlers_before = profiler.wall_ns.get("gateway.handlers", 0)
            loop_started = profiler.clock()
        for request in self._generator.initial():
            self._push(request.arrival, _ARRIVAL, request)
        self._idle = list(range(self.spec.workers))
        while self._heap:
            time, priority, _, item = heapq.heappop(self._heap)
            self._clock = max(self._clock, time)
            if priority == _ARRIVAL and item is not None:
                self._admit(item, time)
            elif priority == _FREE:
                self._idle.append(0)
            self._dispatch(time)
        makespan = max(
            [self._clock] + [r.release for r in self._responses
                             if r.release is not None]
        )
        if profiler is not None:
            # The event loop's own wall-time: total serve time minus the
            # nested handler runs.  Every pushed event was popped by the
            # time the heap drains, so _seq counts processed events.
            loop_wall = profiler.clock() - loop_started
            handler_wall = (profiler.wall_ns.get("gateway.handlers", 0)
                            - handlers_before)
            profiler.add_wall("gateway.loop",
                              max(loop_wall - handler_wall, 0),
                              calls=self._seq)
        return ServiceResult(
            spec=self.spec,
            policy=self.policy,
            responses=self._responses,
            makespan=makespan,
            registry=self.registry,
            tenant_registries=self.tenant_registries,
            meters=self.meters,
            states=self.states,
            stats=self._stats,
            handlers=self.handlers,
            retries=self._retries,
        )


def serve_workload(
    spec_or_dict, recorder: Optional[TraceRecorder] = None,
    profiler: Optional[Profiler] = None,
) -> ServiceResult:
    """Convenience: build a gateway from a spec (or raw dict) and serve."""
    spec = (
        spec_or_dict
        if isinstance(spec_or_dict, WorkloadSpec)
        else WorkloadSpec.from_dict(spec_or_dict)
    )
    return Gateway(spec, recorder=recorder, profiler=profiler).serve()
