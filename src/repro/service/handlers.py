"""Request handlers: the ``apps/`` case studies behind a service facade.

A :class:`Handler` owns one tenant's compiled labeled program plus that
tenant's *secret state* (credential table, stored password, private key,
cipher key) and knows two things:

* how to mint a fresh request payload from the workload RNG
  (:meth:`Handler.new_payload`), tagging it with a ``secret_class`` when
  the payload's *timing-relevant relation to the secret* is meaningful
  (valid vs invalid username, matching vs mismatching guess) -- the
  service audit's distinguisher probes classify observed response times
  by this tag;
* how to execute one request under the full semantics
  (:meth:`Handler.run`), threading through the *tenant-owned*
  :class:`~repro.semantics.mitigation.MitigationState` and the gateway's
  telemetry recorder.

Handlers never share mutable state across tenants: two tenants running the
same app get independent secrets and independent programs, so the only
coupling between them is the gateway's shared clock and queue -- exactly
the channel the scheduler policies are designed to close.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..apps.hashing import fnv1a
from ..apps.login import CredentialTable, LoginSystem, _random_name
from ..apps.password import PasswordChecker
from ..apps.rsa import RsaSystem
from ..apps.rsa_math import encrypt, generate_keypair
from ..apps.sbox_cipher import KEY_LENGTH, SBOX_SIZE, SboxCipher
from ..lattice import Label, Lattice
from ..semantics.full import ExecutionResult
from ..semantics.mitigation import MitigationState
from ..telemetry.recorder import TraceRecorder


class Payload:
    """One request's handler-specific arguments plus its secret class.

    ``secret_class`` is ``None`` when the payload carries no
    secret-dependent distinction an adversary could classify by (the
    RSA/sbox tenants: the per-tenant key is fixed, so every request
    relates to the secret the same way).
    """

    __slots__ = ("args", "secret_class")

    def __init__(self, args: Mapping[str, Any],
                 secret_class: Optional[str] = None):
        self.args = dict(args)
        self.secret_class = secret_class

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Payload({self.args!r}, secret_class={self.secret_class!r})"


class Handler(ABC):
    """One tenant's application endpoint."""

    #: Registry name (the workload spec's ``app`` field).
    app: str = ""

    def __init__(self, lattice: Lattice, config: Mapping[str, Any]):
        self.lattice = lattice
        self.config = dict(config)

    @property
    def levels(self) -> Tuple[Label, ...]:
        """The varied level set for this tenant's leakage meter (the
        levels whose data the tenant keeps secret)."""
        high = self.lattice["H"] if "H" in self.lattice else self.lattice.top
        return (high,)

    def _int(self, key: str, default: int) -> int:
        value = self.config.get(key, default)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value <= 0:
            raise ValueError(f"handler config {key!r} must be a positive "
                             f"int, got {value!r}")
        return value

    def _bool(self, key: str, default: bool) -> bool:
        value = self.config.get(key, default)
        if not isinstance(value, bool):
            raise ValueError(f"handler config {key!r} must be a bool, "
                             f"got {value!r}")
        return value

    @abstractmethod
    def new_payload(self, rng: random.Random) -> Payload:
        """Mint one request payload from the workload RNG."""

    @abstractmethod
    def run(
        self,
        payload: Payload,
        mitigation: MitigationState,
        recorder: Optional[TraceRecorder],
        hardware: str,
    ) -> ExecutionResult:
        """Execute one request; ``result.time`` is the service duration."""

    def describe(self) -> str:
        """Human-readable handler summary for reports."""
        return self.app


class LoginHandler(Handler):
    """The Sec. 8.3 web login: the tenant's secret is which usernames are
    valid.  Payload classes: ``valid`` / ``invalid`` attempts."""

    app = "login"

    def __init__(self, lattice: Lattice, config: Mapping[str, Any],
                 seed: int):
        super().__init__(lattice, config)
        table_size = self._int("table_size", 8)
        valid = self.config.get("valid", max(1, table_size // 2))
        budget = self._int("budget", 1)
        self.system = LoginSystem(
            lattice=lattice, table_size=table_size, mitigated=True,
            budget=budget,
        )
        self.credentials = CredentialTable.generate(
            size=table_size, valid=valid, rng=random.Random(seed)
        )

    def new_payload(self, rng: random.Random) -> Payload:
        if rng.random() < 0.5 and self.credentials.valid:
            index = rng.randrange(self.credentials.valid)
            return Payload(
                {
                    "username": self.credentials.usernames[index],
                    "password": self.credentials.passwords[index],
                },
                secret_class="valid",
            )
        return Payload(
            {"username": _random_name(rng), "password": _random_name(rng)},
            secret_class="invalid",
        )

    def run(self, payload, mitigation, recorder, hardware):
        return self.system.run(
            self.credentials,
            payload.args["username"],
            payload.args["password"],
            hardware=hardware,
            mitigation=mitigation,
            recorder=recorder,
        )


class PasswordHandler(Handler):
    """The early-exit password check: the tenant's secret is the stored
    password.  Payload classes: ``match`` / ``mismatch`` guesses.

    Config knobs beyond ``length``/``budget``: ``alphabet`` bounds the
    symbol range (small alphabets make the red-team crack tractable) and
    ``mitigated: false`` deploys the ill-typed unmitigated program -- the
    vulnerable victim the adversary campaign attacks, whose Theorem 2
    budget is honestly zero bits.
    """

    app = "password"

    def __init__(self, lattice: Lattice, config: Mapping[str, Any],
                 seed: int):
        super().__init__(lattice, config)
        length = self._int("length", 6)
        budget = self._int("budget", 1)
        self.alphabet = self._int("alphabet", 256)
        self.mitigated = self._bool("mitigated", True)
        self.checker = PasswordChecker(
            lattice=lattice, length=length, mitigated=self.mitigated,
            budget=budget,
        )
        secret_rng = random.Random(seed)
        self.stored = [secret_rng.randrange(self.alphabet)
                       for _ in range(length)]

    def new_payload(self, rng: random.Random) -> Payload:
        if rng.random() < 0.4:
            return Payload({"guess": list(self.stored)},
                           secret_class="match")
        # A wrong guess with a random matching prefix: the shape the
        # adaptive prefix attack probes with.
        prefix = rng.randrange(len(self.stored))
        guess = list(self.stored[:prefix])
        while len(guess) < len(self.stored):
            wrong = rng.randrange(self.alphabet)
            if len(guess) == prefix and wrong == self.stored[prefix]:
                wrong = (wrong + 1) % self.alphabet
            guess.append(wrong)
        return Payload({"guess": guess}, secret_class="mismatch")

    def run(self, payload, mitigation, recorder, hardware):
        return self.checker.run(
            self.stored,
            payload.args["guess"],
            hardware=hardware,
            mitigation=mitigation,
            recorder=recorder,
        )


class RsaHandler(Handler):
    """The Sec. 8.4 RSA decryption service: the tenant's secret is the
    private exponent.  Payloads are ciphertexts of random messages."""

    app = "rsa"

    def __init__(self, lattice: Lattice, config: Mapping[str, Any],
                 seed: int):
        super().__init__(lattice, config)
        key_bits = self._int("key_bits", 10)
        blocks = self._int("blocks", 1)
        budget = self._int("budget", 1)
        self.key = generate_keypair(bits=key_bits, seed=seed)
        self.system = RsaSystem(
            lattice=lattice, key_bits=self.key.key_bits, blocks=blocks,
            mitigation_mode="language", budget=budget,
        )
        self.blocks = blocks

    def new_payload(self, rng: random.Random) -> Payload:
        messages = [rng.randrange(2, self.key.n - 1)
                    for _ in range(self.blocks)]
        return Payload(
            {"ciphertext": [encrypt(m, self.key) for m in messages]}
        )

    def run(self, payload, mitigation, recorder, hardware):
        return self.system.run(
            self.key,
            payload.args["ciphertext"],
            hardware=hardware,
            mitigation=mitigation,
            recorder=recorder,
        )


class SboxHandler(Handler):
    """The S-box table-lookup cipher: the tenant's secret is the cipher
    key.  Payloads are random plaintext blocks."""

    app = "sbox"

    def __init__(self, lattice: Lattice, config: Mapping[str, Any],
                 seed: int):
        super().__init__(lattice, config)
        length = self._int("length", 8)
        budget = self._int("budget", 1)
        self.cipher = SboxCipher(
            lattice=lattice, length=length, plaintext_length=length,
            mitigated=True, budget=budget,
        )
        secret_rng = random.Random(seed)
        self.key = [secret_rng.randrange(SBOX_SIZE)
                    for _ in range(KEY_LENGTH)]
        self.length = length

    def new_payload(self, rng: random.Random) -> Payload:
        return Payload(
            {"plaintext": [rng.randrange(SBOX_SIZE)
                           for _ in range(self.length)]}
        )

    def run(self, payload, mitigation, recorder, hardware):
        return self.cipher.run(
            self.key,
            payload.args["plaintext"],
            hardware=hardware,
            mitigation=mitigation,
            recorder=recorder,
        )


class TagHandler(Handler):
    """A keyed-hash tag verifier: the tenant's secret is the MAC key.

    The endpoint authenticates a message by recomputing
    ``fnv1a(message || key)``, rendering it as hex nibbles, and comparing
    against the client-supplied tag nibble by nibble with early exit --
    the oscar230-style insecure compare whose response time reveals the
    length of the matching tag prefix.  Payload classes: ``valid`` (the
    correct tag) / ``forged`` (a random wrong tag).

    Config knobs: ``nibbles`` (tag length, <= 7 since the digest is 31
    bits), ``mitigated`` (wrap the compare in ``mitigate``; ``false``
    deploys the vulnerable program), ``budget``.
    """

    app = "tag"

    #: Bytes of message covered by the tag.
    MESSAGE_LEN = 4

    def __init__(self, lattice: Lattice, config: Mapping[str, Any],
                 seed: int):
        super().__init__(lattice, config)
        self.nibbles = self._int("nibbles", 6)
        if self.nibbles > 7:
            raise ValueError("handler config 'nibbles' must be <= 7 "
                             "(the digest is 31 bits)")
        budget = self._int("budget", 1)
        self.mitigated = self._bool("mitigated", True)
        # The nibble-wise compare is the same early-exit program as the
        # password check, over a 16-symbol alphabet.
        self.checker = PasswordChecker(
            lattice=lattice, length=self.nibbles, mitigated=self.mitigated,
            budget=budget,
        )
        secret_rng = random.Random(seed)
        self.key = [secret_rng.randrange(256) for _ in range(8)]

    def tag_for(self, message: List[int]) -> List[int]:
        """The true tag: hex nibbles of the keyed digest, most
        significant first."""
        digest = fnv1a(list(message) + self.key)
        return [(digest >> (4 * (self.nibbles - 1 - i))) & 0xF
                for i in range(self.nibbles)]

    def new_payload(self, rng: random.Random) -> Payload:
        message = [rng.randrange(256) for _ in range(self.MESSAGE_LEN)]
        true_tag = self.tag_for(message)
        if rng.random() < 0.4:
            return Payload({"message": message, "tag": true_tag},
                           secret_class="valid")
        forged = [rng.randrange(16) for _ in range(self.nibbles)]
        if forged == true_tag:
            forged[0] = (forged[0] + 1) % 16
        return Payload({"message": message, "tag": forged},
                       secret_class="forged")

    def run(self, payload, mitigation, recorder, hardware):
        true_tag = self.tag_for(payload.args["message"])
        return self.checker.run(
            true_tag,
            payload.args["tag"],
            hardware=hardware,
            mitigation=mitigation,
            recorder=recorder,
        )


HANDLERS: Dict[str, type] = {
    cls.app: cls
    for cls in (LoginHandler, PasswordHandler, RsaHandler, SboxHandler,
                TagHandler)
}


def make_handler(app: str, lattice: Lattice, config: Mapping[str, Any],
                 seed: int) -> Handler:
    """Instantiate the handler registered under ``app`` with a
    tenant-specific secret seed."""
    if app not in HANDLERS:
        raise ValueError(
            f"unknown app {app!r}; available: {sorted(HANDLERS)}"
        )
    return HANDLERS[app](lattice, config, seed)
