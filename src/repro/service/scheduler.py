"""Scheduler policies: who runs next, and when responses are released.

The gateway keeps one bounded FIFO queue per tenant; a policy decides (a)
which queued request a freed worker picks up, (b) when a dispatch decision
made "now" may actually start, and (c) when a completed response is
*released* to the client.  The release time is the adversary-observable
event, so (c) is where the TIFC-style mitigation lives:

* :class:`FifoPolicy` -- global arrival order, release at completion: the
  throughput-optimal baseline, and the leakiest (release times carry the
  full service-time variation plus cross-tenant queueing interference);
* :class:`RoundRobinPolicy` -- cycle over tenants so no tenant can starve
  another (queueing fairness), release still at completion;
* :class:`QuantizedPolicy` -- Ford's timing-information-flow-control
  discipline: requests *start* only on quantum boundaries and responses
  are released only on quantum boundaries, so the observable
  start-to-release duration collapses to ``ceil(service/q) * q`` -- a
  handful of distinct values regardless of how the handler's padded times
  vary beneath.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, Mapping, Optional, Sequence

from .workload import Request


class SchedulerPolicy(ABC):
    """Selection + alignment + release discipline, pluggable."""

    name: str = ""

    @abstractmethod
    def select(
        self, queues: Mapping[str, Deque[Request]]
    ) -> Optional[Request]:
        """Pop and return the next request to serve, or None when every
        queue is empty."""

    def dispatch_time(self, now: int) -> int:
        """The earliest clock at which a dispatch decided at ``now`` may
        start (identity unless the policy batches starts)."""
        return now

    def release_time(self, start: int, completion: int) -> int:
        """When the response becomes observable (default: immediately on
        completion)."""
        return completion

    def describe(self) -> str:
        return self.name


def _earliest(queues: Mapping[str, Deque[Request]]) -> Optional[str]:
    """The tenant whose head-of-queue request arrived first (ties broken
    by request id, which is globally unique and monotone)."""
    best: Optional[str] = None
    best_key = None
    for tenant in sorted(queues):
        queue = queues[tenant]
        if not queue:
            continue
        key = (queue[0].arrival, queue[0].req_id)
        if best_key is None or key < best_key:
            best, best_key = tenant, key
    return best


class FifoPolicy(SchedulerPolicy):
    """Global first-come-first-served across all tenants."""

    name = "fifo"

    def select(self, queues):
        tenant = _earliest(queues)
        return queues[tenant].popleft() if tenant is not None else None


class RoundRobinPolicy(SchedulerPolicy):
    """Cycle through tenants (sorted order), skipping empty queues; each
    tenant's own queue drains FIFO.  A backlogged tenant cannot monopolize
    the workers."""

    name = "rr"

    def __init__(self, tenants: Sequence[str]):
        self._order = sorted(tenants)
        self._cursor = 0

    def select(self, queues):
        for offset in range(len(self._order)):
            tenant = self._order[(self._cursor + offset) % len(self._order)]
            queue = queues.get(tenant)
            if queue:
                self._cursor = (
                    self._cursor + offset + 1
                ) % len(self._order)
                return queue.popleft()
        return None


class QuantizedPolicy(SchedulerPolicy):
    """TIFC-style batched starts and quantized releases.

    Starts happen only at multiples of ``quantum``; a completed response
    is held until the next boundary after completion.  The observable
    start-to-release duration is therefore always a whole number of
    quanta, collapsing the handler's padded-time variation (and
    cross-tenant completion jitter) onto a coarse grid.
    """

    name = "quantized"

    def __init__(self, quantum: int):
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum

    def select(self, queues):
        tenant = _earliest(queues)
        return queues[tenant].popleft() if tenant is not None else None

    def _align(self, time: int) -> int:
        return ((time + self.quantum - 1) // self.quantum) * self.quantum

    def dispatch_time(self, now: int) -> int:
        return self._align(now)

    def release_time(self, start: int, completion: int) -> int:
        # Hold at least one quantum so a same-boundary completion is
        # still released on the grid, never instantaneously.
        return max(self._align(completion), start + self.quantum)

    def describe(self) -> str:
        return f"quantized(q={self.quantum})"


def make_policy(name: str, tenants: Sequence[str],
                quantum: int = 4096) -> SchedulerPolicy:
    """Build a policy by spec name (``fifo``, ``rr``, ``quantized``)."""
    if name == "fifo":
        return FifoPolicy()
    if name == "rr":
        return RoundRobinPolicy(tenants)
    if name == "quantized":
        return QuantizedPolicy(quantum)
    raise ValueError(f"unknown scheduler policy {name!r}")


def new_queues(tenants: Sequence[str]) -> "dict[str, Deque[Request]]":
    """One empty bounded-by-the-gateway queue per tenant."""
    return {name: deque() for name in tenants}
