"""The timing-safe serving layer: a multi-tenant mitigated gateway.

See ``docs/SERVICE.md``.  The pieces:

* :mod:`~repro.service.workload` -- workload specs (JSON) and the
  deterministic load generator (open-/closed-loop arrivals);
* :mod:`~repro.service.handlers` -- the ``apps/`` case studies behind a
  request/response facade, one secret per tenant;
* :mod:`~repro.service.scheduler` -- pluggable policies: FIFO,
  round-robin, and TIFC-style quantized release;
* :mod:`~repro.service.gateway` -- the virtual-clock discrete-event
  server with bounded admission, backpressure, and per-tenant mitigation
  state;
* :mod:`~repro.service.audit` -- observed-vs-Theorem-2-bound accounting
  plus the adversarial distinguisher probes.
"""

from .audit import (
    CrossTenantProbe,
    ProbeResult,
    ServiceAudit,
    TenantAudit,
    audit_service,
    service_document,
)
from .gateway import Gateway, Response, ServiceResult, serve_workload
from .handlers import HANDLERS, Handler, Payload, make_handler
from .scheduler import (
    FifoPolicy,
    QuantizedPolicy,
    RoundRobinPolicy,
    SchedulerPolicy,
    make_policy,
)
from .workload import (
    ARRIVAL_KINDS,
    POLICY_CHOICES,
    LoadGenerator,
    Request,
    TenantSpec,
    WorkloadError,
    WorkloadSpec,
)

__all__ = [
    "ARRIVAL_KINDS",
    "CrossTenantProbe",
    "FifoPolicy",
    "Gateway",
    "HANDLERS",
    "Handler",
    "LoadGenerator",
    "POLICY_CHOICES",
    "Payload",
    "ProbeResult",
    "QuantizedPolicy",
    "Request",
    "Response",
    "RoundRobinPolicy",
    "SchedulerPolicy",
    "ServiceAudit",
    "ServiceResult",
    "TenantAudit",
    "TenantSpec",
    "WorkloadError",
    "WorkloadSpec",
    "audit_service",
    "make_handler",
    "make_policy",
    "serve_workload",
    "service_document",
]
