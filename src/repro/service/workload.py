"""Workload specs and deterministic load generation.

A workload is a JSON document (see ``docs/SERVICE.md`` and
``examples/service/basic.json``) naming the tenants (each an ``apps/``
handler with its own secret seed), the arrival process, and the gateway
configuration (scheduler policy, worker count, admission limits).  All
randomness -- tenant mix, payload contents, arrival gaps, retry jitter --
derives from the spec's single ``seed``, so one spec always produces the
same request stream and (because the gateway runs on a virtual clock) the
same release times.

Two arrival processes, the standard pair from the load-testing
literature:

* **open loop** (``{"kind": "open", "mean_gap": G}``): requests arrive on
  an exponential-gap process with mean ``G`` cycles, independent of how
  the server is doing -- the overload-honest model (arrivals do not slow
  down when the server backs up);
* **closed loop** (``{"kind": "closed", "clients": N, "think": Z}``):
  ``N`` clients each keep exactly one request outstanding and issue the
  next one ``Z`` cycles after receiving (or losing) the previous
  response -- the throughput-vs-concurrency model the service benchmark
  sweeps.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..hardware import REGISTRY
from ..lang.parser import DEFAULT_LATTICE
from ..lattice import Lattice, chain
from .handlers import Handler, Payload, make_handler

#: Scheduler policy names accepted by specs and the CLI.
POLICY_CHOICES = ("fifo", "rr", "quantized")
ARRIVAL_KINDS = ("open", "closed")


class WorkloadError(ValueError):
    """The workload spec is malformed (bad JSON shape, unknown app or
    policy, nonsensical limits)."""


@dataclass
class TenantSpec:
    """One tenant: a named handler instance with its own secret seed."""

    name: str
    app: str
    weight: float = 1.0
    config: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "TenantSpec":
        if not isinstance(raw, Mapping):
            raise WorkloadError(f"tenant entries must be objects, got {raw!r}")
        unknown = set(raw) - {"name", "app", "weight", "config"}
        if unknown:
            raise WorkloadError(f"unknown tenant keys: {sorted(unknown)}")
        name = raw.get("name")
        app = raw.get("app")
        if not name or not isinstance(name, str):
            raise WorkloadError("every tenant needs a string 'name'")
        if not app or not isinstance(app, str):
            raise WorkloadError(f"tenant {name!r} needs a string 'app'")
        weight = raw.get("weight", 1.0)
        if not isinstance(weight, (int, float)) or weight <= 0:
            raise WorkloadError(f"tenant {name!r}: weight must be positive")
        config = raw.get("config", {})
        if not isinstance(config, Mapping):
            raise WorkloadError(f"tenant {name!r}: config must be an object")
        return cls(name=name, app=app, weight=float(weight),
                   config=dict(config))


@dataclass
class WorkloadSpec:
    """A parsed, validated workload document."""

    tenants: List[TenantSpec]
    seed: int = 0
    requests: int = 100
    policy: str = "fifo"
    quantum: int = 4096
    workers: int = 2
    queue_depth: int = 8
    timeout: int = 0  # 0 disables queue-wait timeouts
    max_retries: int = 3
    retry_backoff: int = 256
    arrival: Dict[str, Any] = field(
        default_factory=lambda: {"kind": "open", "mean_gap": 1024}
    )
    hardware: str = "partitioned"
    levels: Optional[Tuple[str, ...]] = None
    scheme: str = "doubling"
    penalty: str = "local"

    _KEYS = {
        "tenants", "seed", "requests", "policy", "quantum", "workers",
        "queue_depth", "timeout", "max_retries", "retry_backoff",
        "arrival", "hardware", "levels", "scheme", "penalty",
    }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "WorkloadSpec":
        if not isinstance(raw, Mapping):
            raise WorkloadError("workload spec must be a JSON object")
        unknown = set(raw) - cls._KEYS
        if unknown:
            raise WorkloadError(f"unknown spec keys: {sorted(unknown)}")
        tenants_raw = raw.get("tenants")
        if not tenants_raw or not isinstance(tenants_raw, list):
            raise WorkloadError("spec needs a non-empty 'tenants' list")
        tenants = [TenantSpec.from_dict(t) for t in tenants_raw]
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise WorkloadError("tenant names must be unique")
        spec = cls(
            tenants=tenants,
            seed=int(raw.get("seed", 0)),
            requests=int(raw.get("requests", 100)),
            policy=raw.get("policy", "fifo"),
            quantum=int(raw.get("quantum", 4096)),
            workers=int(raw.get("workers", 2)),
            queue_depth=int(raw.get("queue_depth", 8)),
            timeout=int(raw.get("timeout", 0)),
            max_retries=int(raw.get("max_retries", 3)),
            retry_backoff=int(raw.get("retry_backoff", 256)),
            arrival=dict(raw.get("arrival",
                                 {"kind": "open", "mean_gap": 1024})),
            hardware=raw.get("hardware", "partitioned"),
            levels=tuple(raw["levels"]) if raw.get("levels") else None,
            scheme=raw.get("scheme", "doubling"),
            penalty=raw.get("penalty", "local"),
        )
        spec.validate()
        return spec

    @classmethod
    def load(cls, path: str) -> "WorkloadSpec":
        """Parse a spec file (``-`` reads stdin via the CLI, not here)."""
        with open(path) as handle:
            try:
                raw = json.load(handle)
            except json.JSONDecodeError as err:
                raise WorkloadError(f"{path}: not valid JSON ({err})")
        return cls.from_dict(raw)

    def validate(self) -> None:
        if self.hardware not in REGISTRY:
            raise WorkloadError(
                f"hardware must be one of {list(REGISTRY.choices())}, "
                f"got {self.hardware!r}"
            )
        if self.policy not in POLICY_CHOICES:
            raise WorkloadError(
                f"policy must be one of {POLICY_CHOICES}, got {self.policy!r}"
            )
        if self.requests < 1:
            raise WorkloadError("requests must be >= 1")
        if self.workers < 1:
            raise WorkloadError("workers must be >= 1")
        if self.queue_depth < 1:
            raise WorkloadError("queue_depth must be >= 1")
        if self.quantum < 1:
            raise WorkloadError("quantum must be >= 1")
        if self.timeout < 0 or self.max_retries < 0 or self.retry_backoff < 0:
            raise WorkloadError(
                "timeout, max_retries, and retry_backoff must be >= 0"
            )
        kind = self.arrival.get("kind")
        if kind not in ARRIVAL_KINDS:
            raise WorkloadError(
                f"arrival.kind must be one of {ARRIVAL_KINDS}, got {kind!r}"
            )
        if kind == "open" and int(self.arrival.get("mean_gap", 0)) < 1:
            raise WorkloadError("open arrivals need mean_gap >= 1")
        if kind == "closed":
            if int(self.arrival.get("clients", 0)) < 1:
                raise WorkloadError("closed arrivals need clients >= 1")
            if int(self.arrival.get("think", -1)) < 0:
                raise WorkloadError("closed arrivals need think >= 0")
        if self.scheme not in ("doubling", "polynomial"):
            raise WorkloadError("scheme must be 'doubling' or 'polynomial'")
        if self.penalty not in ("local", "global"):
            raise WorkloadError("penalty must be 'local' or 'global'")

    def lattice(self) -> Lattice:
        return chain(self.levels) if self.levels else DEFAULT_LATTICE

    def with_policy(
        self,
        policy: Optional[str] = None,
        quantum: Optional[int] = None,
        scheme: Optional[str] = None,
        penalty: Optional[str] = None,
    ) -> "WorkloadSpec":
        """A validated copy with the mitigation knobs replaced -- the seam
        ``repro tune`` uses to graft its recommended policy fragment onto
        an existing workload before re-running the gateway."""
        import copy

        spec = copy.deepcopy(self)
        if policy is not None:
            spec.policy = policy
        if quantum is not None:
            spec.quantum = quantum
        if scheme is not None:
            spec.scheme = scheme
        if penalty is not None:
            spec.penalty = penalty
        spec.validate()
        return spec

    def build_handlers(self) -> Dict[str, Handler]:
        """One handler per tenant, each with a secret seed derived from
        the spec seed and the tenant name (stable across runs)."""
        lattice = self.lattice()
        handlers = {}
        for tenant in self.tenants:
            seed = _tenant_seed(self.seed, tenant.name)
            try:
                handlers[tenant.name] = make_handler(
                    tenant.app, lattice, tenant.config, seed
                )
            except ValueError as err:
                raise WorkloadError(f"tenant {tenant.name!r}: {err}")
        return handlers


def _tenant_seed(seed: int, name: str) -> int:
    """A stable per-tenant secret seed (FNV-1a over the tenant name,
    folded with the spec seed -- no hash() so it survives PYTHONHASHSEED)."""
    digest = 2166136261
    for byte in name.encode():
        digest = ((digest ^ byte) * 16777619) & 0xFFFFFFFF
    return (seed * 0x9E3779B1 + digest) & 0x7FFFFFFF


@dataclass
class Request:
    """One in-flight request as the gateway sees it."""

    req_id: int
    tenant: str
    arrival: int
    payload: Payload
    client: int = 0
    attempts: int = 0

    @property
    def secret_class(self) -> Optional[str]:
        return self.payload.secret_class


class LoadGenerator:
    """Produces the request stream for one gateway run.

    :meth:`initial` yields the requests known before the simulation
    starts; :meth:`on_done` is called by the gateway every time a request
    reaches a terminal state (released, rejected, or timed out) and may
    return a follow-up request (the closed-loop think cycle).

    This class is also the reference implementation of the gateway's
    *request source* protocol: anything with ``initial()`` and
    ``on_response(response, time)`` can drive the gateway
    (``Gateway(spec, source=...)``) -- the seam the red-team adversary
    clients (:mod:`repro.adversary`) inject through.  ``on_response``
    receives the full terminal :class:`~repro.service.gateway.Response`
    (so a source can read release times, the adversary's observable) and
    may return ``None``, one follow-up :class:`Request`, or a list of
    them.
    """

    def __init__(self, spec: WorkloadSpec, handlers: Mapping[str, Handler]):
        self.spec = spec
        self.handlers = handlers
        self.rng = random.Random(spec.seed)
        self.names = [t.name for t in spec.tenants]
        self.weights = [t.weight for t in spec.tenants]
        self.issued = 0

    def _next_request(self, arrival: int, client: int = 0) -> Request:
        tenant = self.rng.choices(self.names, weights=self.weights, k=1)[0]
        payload = self.handlers[tenant].new_payload(self.rng)
        request = Request(
            req_id=self.issued, tenant=tenant, arrival=arrival,
            payload=payload, client=client,
        )
        self.issued += 1
        return request

    def initial(self) -> List[Request]:
        kind = self.spec.arrival["kind"]
        if kind == "open":
            mean_gap = int(self.spec.arrival["mean_gap"])
            clock = 0
            out = []
            for _ in range(self.spec.requests):
                clock += 1 + int(self.rng.expovariate(1.0 / mean_gap))
                out.append(self._next_request(clock))
            return out
        clients = int(self.spec.arrival["clients"])
        # Stagger the first wave so clients do not all collide at clock 0.
        return [
            self._next_request(self.rng.randrange(64), client=c)
            for c in range(min(clients, self.spec.requests))
        ]

    def on_done(self, request: Request, time: int) -> Optional[Request]:
        """A request reached a terminal state at ``time``; closed-loop
        clients think for a bit and come back."""
        if self.spec.arrival["kind"] != "closed":
            return None
        if self.issued >= self.spec.requests:
            return None
        think = int(self.spec.arrival["think"])
        return self._next_request(time + think, client=request.client)

    def on_response(self, response: Any, time: int) -> Optional[Request]:
        """Request-source protocol entry point: the load generator only
        needs the request identity, not the response timing."""
        return self.on_done(response.request, time)
