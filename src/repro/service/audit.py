"""The service audit: observed release-time leakage vs the Theorem 2 bound.

Two accounts are kept per tenant, and the audit passes only when both hold:

* **release account** -- what a client of *this* tenant can learn from its
  own response times.  The adversary-observable quantity is the
  start-to-release duration of each completed request; ``log2`` of the
  number of *distinct* values it took is the observed leakage in bits
  (same counting argument as Theorem 2's ``log |V|``).  It must not exceed
  the tenant's static bound
  ``|L^| * log2(K+1) * (1 + log2 T)`` from
  :func:`repro.quantitative.bounds.leakage_bound`, evaluated by the
  tenant's :class:`~repro.telemetry.leakage.DynamicLeakageMeter`;
* **deadline account** -- the meter's own check that the mitigation
  deadline *sequences* inside the handler stayed within the same bound
  (:meth:`~repro.telemetry.leakage.DynamicLeakageMeter.holds`).

On top of the bound check, the audit runs the adversarial client: the best
threshold distinguisher from :mod:`repro.attacks.distinguisher` is pointed

* at each tenant's own responses, split by the payload's ``secret_class``
  (valid vs invalid login, matching vs mismatching guess) -- can a client
  classify the tenant's secret-dependent behavior from response times?
* **across tenants**: each observer tenant's response times are labeled
  with the secret class of the *victim* tenant's most recently released
  request -- can tenant B's clients tell what tenant A was just serving?
  Under FIFO the shared queue makes this correlation visible; quantized
  release is designed to collapse it.

``advantage`` is accuracy minus chance (majority-class) accuracy; a value
near zero means the distinguisher did no better than guessing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..attacks.distinguisher import advantage as welch_advantage
from ..telemetry.leakage import EPSILON
from .gateway import Response, ServiceResult

#: Minimum samples per class before a distinguisher probe is attempted.
MIN_PROBE_SAMPLES = 2


def quantile(values: List[int], q: float) -> int:
    """Nearest-rank quantile (deterministic, no interpolation)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class ProbeResult:
    """One threshold-distinguisher probe over labeled response times.

    Beyond the accuracy-over-chance advantage, the probe carries the
    Welch's t-test verdict (:func:`repro.attacks.distinguisher.advantage`)
    so the metrics document reports not just *how well* the classes
    separate but whether the separation is statistically real --
    ``repro report`` renders the observed advantage, raw sample counts,
    and p-value next to the tenant's Theorem 2 budget.
    """

    class_a: str
    class_b: str
    samples_a: int
    samples_b: int
    accuracy: float
    chance: float
    t_stat: float = 0.0
    dof: float = 0.0
    p_value: float = 1.0

    @property
    def advantage(self) -> float:
        return self.accuracy - self.chance

    @property
    def significant(self) -> bool:
        """Is the separation statistically significant (alpha = 0.01)?"""
        return self.p_value < 0.01

    def as_dict(self) -> Dict[str, Any]:
        return {
            "classes": [self.class_a, self.class_b],
            "samples": [self.samples_a, self.samples_b],
            "accuracy": round(self.accuracy, 4),
            "chance": round(self.chance, 4),
            "advantage": round(self.advantage, 4),
            # JSON has no infinity: a zero-variance, distinct-means
            # channel (deterministically distinguishable) is null here.
            "t_stat": (None if math.isinf(self.t_stat)
                       else round(self.t_stat, 4)),
            "dof": round(self.dof, 2),
            "p_value": self.p_value,
            "significant": self.significant,
        }


@dataclass
class TenantAudit:
    """One tenant's full leakage account."""

    tenant: str
    app: str
    observed_values: int
    observed_bits: float
    bound_bits: float
    deadline_bits: float
    deadline_within: bool
    probe: Optional[ProbeResult] = None
    meter: Dict[str, Any] = field(default_factory=dict)

    @property
    def release_within(self) -> bool:
        return self.observed_bits <= self.bound_bits + EPSILON

    @property
    def within_bound(self) -> bool:
        return self.release_within and self.deadline_within

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "app": self.app,
            "release": {
                "observed_values": self.observed_values,
                "observed_bits": round(self.observed_bits, 4),
                "bound_bits": round(self.bound_bits, 4),
                "within_bound": self.release_within,
            },
            "deadlines": self.meter,
            "within_bound": self.within_bound,
            "probe": self.probe.as_dict() if self.probe else None,
        }


@dataclass
class CrossTenantProbe:
    """Observer-vs-victim distinguisher result."""

    observer: str
    victim: str
    probe: ProbeResult

    def as_dict(self) -> Dict[str, Any]:
        out = {"observer": self.observer, "victim": self.victim}
        out.update(self.probe.as_dict())
        return out


@dataclass
class ServiceAudit:
    """The whole service's audit verdict."""

    tenants: Dict[str, TenantAudit]
    cross_tenant: List[CrossTenantProbe]

    @property
    def ok(self) -> bool:
        return all(t.within_bound for t in self.tenants.values())

    def max_observed_bits(self) -> float:
        """The worst tenant's observed release-time leakage (the 'leaked
        bits' column of the throughput benchmark)."""
        if not self.tenants:
            return 0.0
        return max(t.observed_bits for t in self.tenants.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "tenants": {
                name: audit.as_dict()
                for name, audit in sorted(self.tenants.items())
            },
            "cross_tenant": [p.as_dict() for p in self.cross_tenant],
        }


def _probe(grouped: Dict[str, List[int]]) -> Optional[ProbeResult]:
    """Best-threshold probe over the two largest classes with enough
    samples; None when the labeling cannot support a distinguisher."""
    eligible = sorted(
        (
            (name, times)
            for name, times in grouped.items()
            if len(times) >= MIN_PROBE_SAMPLES
        ),
        key=lambda item: (-len(item[1]), item[0]),
    )
    if len(eligible) < 2:
        return None
    (name_a, times_a), (name_b, times_b) = eligible[0], eligible[1]
    result = welch_advantage(times_a, times_b, name_a, name_b)
    return ProbeResult(
        class_a=name_a,
        class_b=name_b,
        samples_a=len(times_a),
        samples_b=len(times_b),
        accuracy=result.accuracy,
        chance=result.chance,
        t_stat=result.t_stat,
        dof=result.dof,
        p_value=result.p_value,
    )


def _tenant_probe(responses: List[Response]) -> Optional[ProbeResult]:
    grouped: Dict[str, List[int]] = {}
    for response in responses:
        label = response.request.secret_class
        if label is None:
            continue
        grouped.setdefault(label, []).append(response.observable)
    return _probe(grouped)


def _cross_probes(result: ServiceResult) -> List[CrossTenantProbe]:
    """For each (observer, victim) pair: label the observer's response
    times by the victim's most recently *released* secret class."""
    completed = sorted(
        result.completed(), key=lambda r: (r.release, r.request.req_id)
    )
    names = sorted(result.stats)
    probes: List[CrossTenantProbe] = []
    for victim in names:
        victim_timeline = [
            (r.release, r.request.secret_class)
            for r in completed
            if r.tenant == victim and r.request.secret_class is not None
        ]
        if not victim_timeline:
            continue
        for observer in names:
            if observer == victim:
                continue
            grouped: Dict[str, List[int]] = {}
            cursor = 0
            last_class: Optional[str] = None
            for response in completed:
                if response.tenant != observer:
                    continue
                while (cursor < len(victim_timeline)
                       and victim_timeline[cursor][0] <= response.release):
                    last_class = victim_timeline[cursor][1]
                    cursor += 1
                if last_class is not None:
                    grouped.setdefault(last_class, []).append(
                        response.observable
                    )
            probe = _probe(grouped)
            if probe is not None:
                probes.append(
                    CrossTenantProbe(observer=observer, victim=victim,
                                     probe=probe)
                )
    return probes


def audit_service(result: ServiceResult) -> ServiceAudit:
    """Run the full audit over one gateway run, recording the adversarial
    probes into the global metrics registry as ``attack.service.*``."""
    by_tenant: Dict[str, List[Response]] = {name: [] for name in result.stats}
    for response in result.completed():
        by_tenant[response.tenant].append(response)

    tenants: Dict[str, TenantAudit] = {}
    for name in sorted(result.stats):
        meter = result.meters[name]
        responses = by_tenant[name]
        distinct = len({r.observable for r in responses})
        observed_bits = math.log2(distinct) if distinct else 0.0
        probe = _tenant_probe(responses)
        tenants[name] = TenantAudit(
            tenant=name,
            app=result.handlers[name].app,
            observed_values=distinct,
            observed_bits=observed_bits,
            bound_bits=meter.static_bound_bits(),
            deadline_bits=meter.observed_bits,
            deadline_within=meter.holds(),
            probe=probe,
            meter=meter.as_dict(),
        )

    cross = _cross_probes(result)

    # Surface the adversarial-client results through the standard
    # telemetry attack channel so `repro report` prints them alongside
    # everything else.
    registry = result.registry
    for name, audit in tenants.items():
        if audit.probe is not None:
            registry.set_gauge(
                f"attack.service.{name}.advantage",
                round(audit.probe.advantage, 4),
            )
    for probe in cross:
        registry.set_gauge(
            f"attack.service.{probe.observer}<-{probe.victim}.advantage",
            round(probe.probe.advantage, 4),
        )
    return ServiceAudit(tenants=tenants, cross_tenant=cross)


def service_document(result: ServiceResult,
                     audit: Optional[ServiceAudit] = None) -> Dict[str, Any]:
    """The full ``repro.telemetry/1`` metrics document for one gateway
    run: the global registry plus a ``service`` section with per-tenant
    latency/throughput stats and the audit."""
    if audit is None:
        audit = audit_service(result)
    spec = result.spec
    tenants: Dict[str, Any] = {}
    for name in sorted(result.stats):
        stats = result.stats[name]
        latencies = stats.latencies
        tenants[name] = {
            "app": result.handlers[name].app,
            "requests": {
                "submitted": stats.submitted,
                "completed": stats.completed,
                "rejected": stats.rejected,
                "timed_out": stats.timed_out,
            },
            "latency": {
                "p50": quantile(latencies, 0.50),
                "p99": quantile(latencies, 0.99),
                "mean": (round(sum(latencies) / len(latencies), 1)
                         if latencies else 0),
            },
            "observable": {
                "p50": quantile(stats.observables, 0.50),
                "p99": quantile(stats.observables, 0.99),
                "distinct": len(set(stats.observables)),
            },
            "mitigation": result.states[name].describe(),
            "audit": audit.tenants[name].as_dict(),
        }
    doc = result.registry.as_dict()
    doc["service"] = {
        "policy": result.policy.describe(),
        "scheme": spec.scheme,
        "penalty": spec.penalty,
        "workers": spec.workers,
        "queue_depth": spec.queue_depth,
        "arrival": dict(spec.arrival),
        "seed": spec.seed,
        "makespan": result.makespan,
        "throughput_per_mcycle": round(result.throughput_per_mcycle(), 3),
        "retries": result.retries,
        "requests": {
            "submitted": result.registry.counter("service.requests.submitted"),
            "completed": result.registry.counter("service.requests.ok"),
            "rejected": result.registry.counter("service.requests.rejected"),
            "timed_out": result.registry.counter("service.requests.timeout"),
        },
        "tenants": tenants,
        "cross_tenant": [p.as_dict() for p in audit.cross_tenant],
        "audit_ok": audit.ok,
    }
    return doc
