"""Random program generation for property-based testing.

Theorem 1 (noninterference) and the faithfulness properties are universally
quantified over programs; the property tests approximate that quantifier
with seeded random program families.  Two constraints shape the generator:

* **termination** -- every ``while`` loop is generated in the bounded shape
  ``while v > 0 do { ...; v := v - 1 }`` where the body never otherwise
  writes ``v``, so all generated programs terminate;
* **typability** -- the generator tracks the typing state (pc and the
  timing start-label) the same way the checker does and only emits
  assignments the Fig. 4 rules allow, so almost every generated program is
  well-typed by construction (the tests still run the real checker and
  discard the rare miss, e.g. when a loop-body join defeats the tracker).

Generated programs use scalars only: array addresses are value-dependent and
the hardware contract is stated over equal traces (see
:mod:`repro.hardware.contract`), so scalar programs are the right family for
end-to-end noninterference runs.  Array behaviour is covered by dedicated
tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .lang import ast
from .lattice import Label, Lattice
from .machine.memory import Memory
from .typesystem.environment import SecurityEnvironment


@dataclass
class GeneratorConfig:
    """Knobs for the random program generator."""

    max_depth: int = 3
    max_block_length: int = 4
    max_literal: int = 8
    max_loop_counter: int = 3
    allow_sleep: bool = True
    allow_mitigate: bool = True
    #: Probability weights for command kinds at each draw.
    weights: Dict[str, float] = field(
        default_factory=lambda: {
            "assign": 0.40,
            "skip": 0.10,
            "sleep": 0.10,
            "if": 0.20,
            "while": 0.10,
            "mitigate": 0.10,
        }
    )


class ProgramGenerator:
    """Generates terminating, (almost always) well-typed scalar programs."""

    def __init__(
        self,
        gamma: SecurityEnvironment,
        rng: random.Random,
        config: Optional[GeneratorConfig] = None,
    ):
        self.gamma = gamma
        self.lattice: Lattice = gamma.lattice
        self.rng = rng
        self.config = config if config is not None else GeneratorConfig()
        self.scalars = sorted(gamma)
        self._loop_counter_seq = 0

    # -- expressions -----------------------------------------------------------

    def expr(self, max_label: Optional[Label] = None, depth: int = 2) -> ast.Expr:
        """A random expression over variables at or below ``max_label``."""
        choices = ["lit"]
        usable = [
            name
            for name in self.scalars
            if max_label is None or self.gamma[name].flows_to(max_label)
        ]
        if usable:
            choices.append("var")
        if depth > 0:
            choices += ["bin", "bin"]
        kind = self.rng.choice(choices)
        if kind == "lit":
            return ast.IntLit(self.rng.randrange(self.config.max_literal + 1))
        if kind == "var":
            return ast.Var(self.rng.choice(usable))
        op = self.rng.choice(["+", "-", "*", "==", "<", "%"])
        return ast.BinOp(
            op=op,
            left=self.expr(max_label, depth - 1),
            right=self.expr(max_label, depth - 1),
        )

    # -- commands -----------------------------------------------------------------

    def program(self) -> ast.Command:
        """A whole random program (labels unannotated; run inference)."""
        cmd, _ = self._block(
            pc=self.lattice.bottom,
            taint=self.lattice.bottom,
            depth=self.config.max_depth,
            writable_cap=None,
            frozen=frozenset(),
        )
        return cmd

    def _writable(self, pc: Label, taint: Label, cap: Optional[Label],
                  frozen: frozenset):
        """Variables assignable under the tracked typing state.  Loop
        counters of enclosing loops are frozen so termination is assured."""
        need = self.lattice.join(pc, taint)
        out = []
        for name in self.scalars:
            if name in frozen:
                continue
            label = self.gamma[name]
            if not need.flows_to(label):
                continue
            if cap is not None and not label.flows_to(cap):
                continue
            out.append(name)
        return out

    def _block(
        self,
        pc: Label,
        taint: Label,
        depth: int,
        writable_cap: Optional[Label],
        frozen: frozenset,
    ) -> Tuple[ast.Command, Label]:
        length = self.rng.randrange(1, self.config.max_block_length + 1)
        parts: List[ast.Command] = []
        for _ in range(length):
            cmd, taint = self._command(pc, taint, depth, writable_cap, frozen)
            parts.append(cmd)
        return ast.seq(*parts), taint

    def _command(
        self,
        pc: Label,
        taint: Label,
        depth: int,
        writable_cap: Optional[Label],
        frozen: frozenset,
    ) -> Tuple[ast.Command, Label]:
        cfg = self.config
        weights = dict(cfg.weights)
        if depth <= 0:
            weights["if"] = weights["while"] = weights["mitigate"] = 0.0
        if not cfg.allow_sleep:
            weights["sleep"] = 0.0
        if not cfg.allow_mitigate:
            weights["mitigate"] = 0.0
        writable = self._writable(pc, taint, writable_cap, frozen)
        if not writable:
            weights["assign"] = 0.0
            weights["while"] = 0.0
        kinds = [k for k, w in weights.items() if w > 0]
        kind = self.rng.choices(
            kinds, [weights[k] for k in kinds], k=1
        )[0]

        if kind == "skip":
            return ast.Skip(), taint
        if kind == "sleep":
            # Sleep raises the timing label by the duration's label; keep
            # the duration under the cap so loops stay typeable.
            bound = writable_cap
            duration = self.expr(bound)
            new_taint = self.lattice.join(
                taint, self.gamma.label_of_expr(duration)
            )
            return ast.Sleep(duration=duration), new_taint
        if kind == "assign":
            target = self.rng.choice(writable)
            target_label = self.gamma[target]
            value = self.expr(target_label)
            return (
                ast.Assign(target=target, expr=value),
                target_label,  # T-ASGN: end label is Gamma(x)
            )
        if kind == "if":
            guard_cap = writable_cap
            guard = self.expr(guard_cap)
            guard_label = self.gamma.label_of_expr(guard)
            inner_pc = self.lattice.join(pc, guard_label)
            inner_taint = self.lattice.join(taint, guard_label)
            then_branch, t1 = self._block(
                inner_pc, inner_taint, depth - 1, writable_cap, frozen
            )
            else_branch, t2 = self._block(
                inner_pc, inner_taint, depth - 1, writable_cap, frozen
            )
            return (
                ast.If(
                    cond=guard,
                    then_branch=then_branch,
                    else_branch=else_branch,
                ),
                self.lattice.join(t1, t2),
            )
        if kind == "while":
            counter = self.rng.choice(writable)
            counter_label = self.gamma[counter]
            inner_pc = self.lattice.join(pc, counter_label)
            # Everything in the body stays at or below the counter's label
            # so the loop's timing fixpoint is the counter label itself.
            body, _ = self._block(
                inner_pc,
                self.lattice.join(taint, counter_label),
                depth - 1,
                counter_label,
                frozen | {counter},
            )
            decrement = ast.Assign(
                target=counter,
                expr=ast.BinOp(
                    op="-", left=ast.Var(counter), right=ast.IntLit(1)
                ),
            )
            loop = ast.While(
                cond=ast.BinOp(
                    op=">", left=ast.Var(counter), right=ast.IntLit(0)
                ),
                body=ast.seq(body, decrement),
            )
            init = ast.Assign(
                target=counter,
                expr=ast.IntLit(
                    self.rng.randrange(cfg.max_loop_counter + 1)
                ),
            )
            # The init writes the counter, which needs pc|taint <= label;
            # guaranteed because counter is drawn from writable.
            return ast.seq(init, loop), counter_label
        if kind == "mitigate":
            body, _ = self._block(pc, taint, depth - 1, writable_cap, frozen)
            budget = ast.IntLit(1 + self.rng.randrange(16))
            # Top always bounds the body's end label, so the command
            # typechecks regardless of what the body did.
            return (
                ast.Mitigate(
                    budget=budget, level=self.lattice.top, body=body
                ),
                taint,
            )
        raise AssertionError(f"unknown kind {kind}")  # pragma: no cover

    # -- memories ----------------------------------------------------------------

    def memory(self) -> Memory:
        """A random memory binding every Gamma name to a small value."""
        return Memory(
            {
                name: self.rng.randrange(self.config.max_literal + 1)
                for name in self.scalars
            }
        )

    def memory_pair(self, level: Label) -> Tuple[Memory, Memory]:
        """Two memories equal at and below ``level``, random elsewhere."""
        base = self.memory()
        other = base.copy()
        for name in self.scalars:
            if not self.gamma[name].flows_to(level):
                other.write(name, self.rng.randrange(self.config.max_literal + 1))
        return base, other


def standard_gamma(lattice: Lattice, per_level: int = 2) -> SecurityEnvironment:
    """A Gamma with ``per_level`` scalars at every lattice level, named
    ``<level>0``, ``<level>1``, ... (lowercased)."""
    bindings = {}
    for level in lattice.levels():
        stem = "".join(ch for ch in level.name.lower() if ch.isalnum()) or "v"
        for i in range(per_level):
            bindings[f"{stem}{i}"] = level
    return SecurityEnvironment(lattice, bindings)
