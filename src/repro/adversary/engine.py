"""The concurrent measurement engine: adversary clients inside the gateway.

The related repos' over-the-wire attacks (ROADMAP: DorFerenc's threaded
``attack.py``, oscar230's ``program.py``) share one measurement shape: a
pool of concurrent clients submits probe requests, each probe is repeated
and reduced to a median, the first few responses are discarded as warm-up,
and candidate promotion is two-stage (cheap rank, careful verify).  This
module reproduces that shape *inside* the gateway's deterministic event
loop, via the request-source seam (``Gateway(spec, source=...)``):

* :class:`ProbeSource` runs a *strategy generator* -- an adaptive attack
  that yields batches of :class:`Probe` descriptors and receives the
  measured times back -- over a pool of ``clients`` closed-loop adversary
  workers, interleaved with the spec's ordinary background load;
* :class:`ContentionSource` runs the cross-tenant contention probe: one
  set of clients modulates a victim tenant's load in timed phases while a
  receiver client on another tenant measures its own latency shift.

Adversary requests live in their own id space (:data:`ADVERSARY_ID_BASE`)
so they can never collide with the background generator's ids, and every
client's request stream derives from :func:`worker_seed` -- the
``seed ^ crc32(point)`` discipline of ``hardware/verify.py`` -- so a
campaign replays bit-for-bit from its seed.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple
from zlib import crc32

from ..service.handlers import Handler, Payload
from ..service.workload import LoadGenerator, Request, WorkloadSpec

#: Adversary request ids start here; the background LoadGenerator issues
#: at most ``spec.requests`` ids from zero, so the scheduler's
#: (arrival, req_id) tie-break stays deterministic across the two streams.
ADVERSARY_ID_BASE = 1_000_000


def worker_seed(campaign_seed: int, point: str) -> int:
    """A stable derived seed for one attack cell or worker.

    Same pattern as ``hardware.verify.point_seed``: xor the campaign seed
    with a CRC of the point's name, so every (attack, policy, clients,
    worker) tuple gets an independent but replayable stream.
    """
    return campaign_seed ^ crc32(point.encode())


@dataclass
class Probe:
    """One probe the strategy wants measured.

    ``key`` identifies the measurement in the results dict fed back to
    the strategy (``None`` marks warm-up probes whose times are
    discarded); ``repeats`` requests that many independent submissions of
    the same payload -- their times come back as one list, ready for
    :func:`repro.attacks.distinguisher.median`.
    """

    key: Any
    args: Dict[str, Any]
    repeats: int = 1


#: The strategy protocol: yield probe batches, receive ``{key: [times]}``,
#: return findings (any object) via StopIteration.
Strategy = Generator[List[Probe], Dict[Any, List[int]], Any]


class ProbeSource:
    """Drives one adaptive probe attack through the gateway.

    A request source (the ``LoadGenerator`` protocol) composing:

    * the spec's ordinary background load (other tenants' traffic keeps
      the queues realistic -- the adversary never measures an idle
      server);
    * ``clients`` adversary workers, each keeping one probe request
      outstanding against the ``victim`` tenant, thinking ``think``
      cycles (plus a small per-worker seeded jitter) between probes.

    The attack itself is the ``strategy`` generator.  Its probe batches
    are expanded into a work queue the workers drain concurrently; when
    the last in-flight probe of a batch lands, the measured times go back
    into the generator and the next batch (re)fills the pool.  The first
    ``warmup`` probes replay the first batch's first payload and are
    discarded -- they absorb cache warm-up and the mitigation scheme's
    initial prediction staircase.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        handlers: Dict[str, Handler],
        victim: str,
        strategy: Strategy,
        clients: int = 4,
        warmup: int = 4,
        think: int = 64,
        seed: int = 0,
        background: bool = True,
        metric: str = "observable",
    ):
        if victim not in handlers:
            raise ValueError(f"unknown victim tenant {victim!r}")
        if clients < 1:
            raise ValueError("need at least one adversary client")
        self.victim = victim
        self.clients = clients
        self.think = think
        self.metric = metric
        self.strategy = strategy
        self.findings: Any = None
        self.probes_sent = 0
        self.warmup_discarded = 0
        self._background = (
            LoadGenerator(spec, handlers) if background else None
        )
        self._jitter = [
            random.Random(worker_seed(seed, f"worker:{i}"))
            for i in range(clients)
        ]
        self._work: deque = deque()
        self._inflight: Dict[int, Tuple[Any, Dict[str, Any]]] = {}
        self._batch_keys: List[Any] = []
        self._results: Dict[Any, List[int]] = {}
        self._next_id = ADVERSARY_ID_BASE
        self._done = False
        self._prime(warmup)

    # -- batch plumbing ------------------------------------------------------

    def _prime(self, warmup: int) -> None:
        try:
            batch = next(self.strategy)
        except StopIteration as stop:
            self.findings = stop.value
            self._done = True
            return
        if batch and warmup:
            for _ in range(warmup):
                self._work.append((None, batch[0].args))
        self._queue_batch(batch)

    def _queue_batch(self, batch: List[Probe]) -> None:
        self._batch_keys = [probe.key for probe in batch]
        for probe in batch:
            for _ in range(probe.repeats):
                self._work.append((probe.key, probe.args))

    def _advance(self) -> None:
        """The batch is fully measured: feed times back, get the next."""
        results = {
            key: self._results.get(key, []) for key in self._batch_keys
        }
        self._results = {}
        try:
            batch = self.strategy.send(results)
        except StopIteration as stop:
            self.findings = stop.value
            self._done = True
            return
        self._queue_batch(batch)

    def _issue(self, item: Tuple[Any, Dict[str, Any]], arrival: int,
               worker: int) -> Request:
        key, args = item
        request = Request(
            req_id=self._next_id, tenant=self.victim, arrival=arrival,
            payload=Payload(args, None), client=worker,
        )
        self._next_id += 1
        self._inflight[request.req_id] = item
        self.probes_sent += 1
        return request

    def _observe(self, response: Any) -> Optional[int]:
        if self.metric == "latency":
            return response.latency
        return response.observable

    # -- request-source protocol ---------------------------------------------

    def initial(self) -> List[Request]:
        out = self._background.initial() if self._background else []
        for worker in range(self.clients):
            if not self._work:
                break
            # Staggered starts, one cycle apart: concurrent but ordered.
            out.append(self._issue(self._work.popleft(), worker, worker))
        return out

    def on_response(self, response: Any, time: int) -> Optional[List[Request]]:
        request = response.request
        if request.req_id < ADVERSARY_ID_BASE:
            follow = (
                self._background.on_response(response, time)
                if self._background else None
            )
            return [follow] if follow is not None else None
        key, args = self._inflight.pop(request.req_id)
        worker = request.client
        gap = self.think + self._jitter[worker].randrange(16)
        if response.status != "ok":
            # Dropped by admission control: the probe was not measured;
            # resubmit it after the think gap.
            return [self._issue((key, args), time + gap, worker)]
        if key is None:
            self.warmup_discarded += 1
        else:
            measured = self._observe(response)
            if measured is not None:
                self._results.setdefault(key, []).append(measured)
        out: List[Request] = []
        if self._work:
            out.append(self._issue(self._work.popleft(), time + gap, worker))
        elif not self._inflight and not self._done:
            self._advance()
            # Refill the whole pool: workers that idled at the tail of
            # the previous batch come back for the new one.
            for idle in range(self.clients):
                if not self._work:
                    break
                out.append(
                    self._issue(self._work.popleft(), time + gap + idle,
                                idle)
                )
        return out or None


@dataclass
class ContentionSample:
    """One receiver measurement: when it arrived and what it cost."""

    arrival: int
    latency: int


class ContentionSource:
    """The cross-tenant contention probe.

    ``senders`` closed-loop clients drive the ``sender`` tenant only
    during *burst* phases (odd multiples of ``phase_len`` on the virtual
    clock) and go silent in between; one receiver client keeps a request
    outstanding against the ``receiver`` tenant the whole run and records
    its own arrival-to-release latency.  If the receiver's latency
    distribution differs between burst and quiet phases, the scheduler is
    propagating one tenant's load into another tenant's timing -- the
    cross-tenant channel the quantized policy must close.

    The receiver measures *latency* (not the start-to-release
    observable): a tenant always knows when it sent its own request, and
    queue wait is exactly the quantity contention modulates.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        handlers: Dict[str, Handler],
        sender: str,
        receiver: str,
        phases: int = 8,
        phase_len: int = 16384,
        think_send: int = 256,
        think_recv: int = 64,
        senders: int = 1,
        seed: int = 0,
    ):
        for tenant in (sender, receiver):
            if tenant not in handlers:
                raise ValueError(f"unknown tenant {tenant!r}")
        if phases < 4 or phases % 2:
            raise ValueError("need an even number of phases >= 4")
        self.sender = sender
        self.receiver = receiver
        self.phases = phases
        self.phase_len = phase_len
        self.think_send = think_send
        self.think_recv = think_recv
        self.senders = senders
        self.horizon = phases * phase_len
        self.samples: List[ContentionSample] = []
        self._handlers = handlers
        self._rngs = {
            "recv": random.Random(worker_seed(seed, "worker:recv")),
        }
        for i in range(senders):
            self._rngs[f"send:{i}"] = random.Random(
                worker_seed(seed, f"worker:send:{i}")
            )
        self._next_id = ADVERSARY_ID_BASE
        self._roles: Dict[int, str] = {}

    def _burst_start_after(self, time: int) -> Optional[int]:
        """The first cycle >= ``time`` inside a burst phase (odd phase
        index), or None when no burst remains before the horizon."""
        clock = max(time, self.phase_len)
        while clock < self.horizon:
            if (clock // self.phase_len) % 2 == 1:
                return clock
            clock = ((clock // self.phase_len) + 1) * self.phase_len
        return None

    def _issue(self, tenant: str, role: str, arrival: int) -> Request:
        rng = self._rngs[role]
        payload = self._handlers[tenant].new_payload(rng)
        request = Request(
            req_id=self._next_id, tenant=tenant, arrival=arrival,
            payload=payload,
        )
        self._next_id += 1
        self._roles[request.req_id] = role
        return request

    def initial(self) -> List[Request]:
        out = [self._issue(self.receiver, "recv", 0)]
        first_burst = self._burst_start_after(0)
        if first_burst is not None:
            for i in range(self.senders):
                out.append(
                    self._issue(self.sender, f"send:{i}", first_burst + i)
                )
        return out

    def on_response(self, response: Any, time: int) -> Optional[List[Request]]:
        role = self._roles.pop(response.request.req_id, None)
        if role is None:
            return None
        if role == "recv":
            if (response.status == "ok" and response.latency is not None
                    and response.request.arrival < self.horizon):
                self.samples.append(ContentionSample(
                    arrival=response.request.arrival,
                    latency=response.latency,
                ))
            nxt = time + self.think_recv
            if nxt >= self.horizon:
                return None
            return [self._issue(self.receiver, "recv", nxt)]
        nxt = time + self.think_send
        if (nxt // self.phase_len) % 2 != 1:
            burst = self._burst_start_after(nxt)
            if burst is None:
                return None
            nxt = burst
        if nxt >= self.horizon:
            return None
        return [self._issue(self.sender, role, nxt)]
