"""The registered adversaries: strategies the measurement engine hosts.

Each strategy is a generator following the :data:`~.engine.Strategy`
protocol -- yield a batch of :class:`~.engine.Probe` descriptors, receive
``{key: [times]}`` back, finish by returning :class:`AttackFindings`.
They re-home the repo's in-process attack entry points onto the served
system:

* :func:`password_crack` generalizes
  ``repro.attacks.prefix_attack.recover_password`` -- per-character
  recovery against the early-exit compare, upgraded to the DorFerenc
  two-stage shape: a *quick rank* of every symbol from one cheap sample
  each, then a *verify* pass that re-measures only the promoted
  candidates with median-of-N and distinct suffix fillers;
* :func:`tag_forge` is the oscar230 hex sweep -- the same prefix crack
  over the 16-symbol nibble alphabet of a keyed-hash tag, forging a
  valid tag for a message the adversary chose;
* :func:`analyze_contention` scores the cross-tenant contention probe's
  receiver samples (collected by :class:`~.engine.ContentionSource`).

Extraction is *strict-signal gated*: a position only counts as extracted
when the best candidate's median beats the runner-up's strictly, in the
direction the early-exit compare predicts.  On the virtual clock the
quantized policy collapses every observable onto quantum boundaries, so
all medians tie exactly and the gate reports zero positions -- the
adversary cannot luck its way into "extracting" bits from a flat channel.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..attacks.distinguisher import (
    AdvantageResult,
    advantage,
    median,
    threshold_classifier,
)
from .engine import ContentionSample, Probe, Strategy


@dataclass
class AttackFindings:
    """What one adversary run learned, before scoring against the truth."""

    #: Recovered secret symbols, in position order (may be partial).
    recovered: List[int]
    #: Positions where the strict-signal gate held.
    extracted: int
    #: ``extracted * log2(alphabet)`` -- the adversary's claimed haul.
    bits_extracted: float
    #: Welch verdict from the first position's verify samples: the
    #: statistical evidence that the channel exists at all.
    evidence: Optional[AdvantageResult]
    #: Attack-specific context (e.g. the forged message) for scoring.
    extra: Dict[str, Any] = field(default_factory=dict)


def _verify_fillers(alphabet: int, repeats: int) -> List[int]:
    """Distinct first-filler symbols for the verify pass.

    Each verify repeat pads the guess with a different symbol at the
    position after the candidate, so at most one repeat can accidentally
    extend the matching prefix -- the median over ``repeats`` distinct
    fillers is immune to that contamination.
    """
    return [fv % alphabet for fv in range(repeats)]


def prefix_crack(
    length: int,
    alphabet: int,
    make_args: Callable[[List[int]], Dict[str, Any]],
    quick_top: int = 3,
    verify_repeats: int = 3,
) -> Strategy:
    """The shared per-position crack against an early-exit compare.

    For each position: rank all symbols from one sample each, promote the
    ``quick_top`` best, verify each with ``verify_repeats`` median-of-N
    measurements, and accept the winner only through the strict-signal
    gate.  Signal direction follows the compare's structure: a longer
    matching prefix runs *longer*, except at the final position where a
    mismatch executes the extra ``ok := 0`` and the full match is
    fastest.

    At the first position the crack also runs a *confirmation batch* --
    repeated measurements of the winner vs the runner-up with identical
    payloads -- whose Welch verdict becomes the findings' ``evidence``:
    the statistical claim that the channel exists, free of the verify
    pass's filler variation.
    """
    recovered: List[int] = []
    extracted = 0
    evidence: Optional[AdvantageResult] = None
    confirm_repeats = max(3, verify_repeats)
    for pos in range(length):
        want_max = pos < length - 1
        filler_len = length - pos - 1

        def guess_for(symbol: int, filler: int) -> List[int]:
            return (recovered + [symbol]
                    + [filler % alphabet] * filler_len)

        # Stage 1: quick rank, one sample per symbol, one shared filler.
        quick = [
            Probe(key=("q", pos, s), args=make_args(guess_for(s, 0)))
            for s in range(alphabet)
        ]
        times = yield quick
        ranked = sorted(
            range(alphabet),
            key=lambda s: (
                -median(times[("q", pos, s)]) if want_max
                else median(times[("q", pos, s)]),
                s,
            ),
        )
        promoted = ranked[:max(2, quick_top)]
        # Stage 2: verify the promoted candidates, median over distinct
        # fillers (or plain repeats at the final position).
        batch: List[Probe] = []
        for s in promoted:
            if filler_len:
                for fv in _verify_fillers(alphabet, verify_repeats):
                    batch.append(Probe(
                        key=("v", pos, s, fv),
                        args=make_args(guess_for(s, fv)),
                    ))
            else:
                batch.append(Probe(
                    key=("v", pos, s, 0),
                    args=make_args(guess_for(s, 0)),
                    repeats=verify_repeats,
                ))
        times = yield batch

        def samples_of(s: int) -> List[int]:
            out: List[int] = []
            for (tag, p, sym, fv), values in times.items():
                if sym == s:
                    out.extend(values)
            return out

        medians = {s: median(samples_of(s)) for s in promoted}
        order = sorted(
            promoted,
            key=lambda s: (-medians[s] if want_max else medians[s], s),
        )
        best, runner = order[0], order[1]
        if pos == 0:
            confirm = yield [
                Probe(key=("c", pos, s), args=make_args(guess_for(s, 0)),
                      repeats=confirm_repeats)
                for s in (best, runner)
            ]
            evidence = advantage(
                confirm[("c", pos, best)], confirm[("c", pos, runner)],
                label_a="best", label_b="runner-up",
            )
        strict = (
            medians[best] > medians[runner] if want_max
            else medians[best] < medians[runner]
        )
        if not strict:
            # Flat channel: every promoted candidate measures the same.
            # Claiming a symbol here would be reading tie-break noise.
            break
        recovered.append(best)
        extracted += 1
    return AttackFindings(
        recovered=recovered,
        extracted=extracted,
        bits_extracted=extracted * math.log2(alphabet),
        evidence=evidence,
    )


def password_crack(profile: Dict[str, Any], rng: random.Random,
                   samples: int = 3) -> Strategy:
    """Crack the password tenant's stored secret, symbol by symbol."""
    length = int(profile["length"])
    alphabet = int(profile["alphabet"])
    return prefix_crack(
        length, alphabet, lambda guess: {"guess": guess},
        verify_repeats=samples,
    )


def tag_forge(profile: Dict[str, Any], rng: random.Random,
              samples: int = 3) -> Strategy:
    """Forge the keyed-hash tag for an adversary-chosen message.

    The message is drawn from the attack's seeded RNG and fixed for the
    whole sweep (the tag depends on it); the findings carry it so the
    campaign can score the forgery against the true tag.
    """
    nibbles = int(profile["nibbles"])
    message = [rng.randrange(256)
               for _ in range(int(profile["message_len"]))]

    def run() -> Strategy:
        findings = yield from prefix_crack(
            nibbles, 16,
            lambda guess: {"message": list(message), "tag": guess},
            verify_repeats=samples,
        )
        findings.extra["message"] = message
        return findings

    return run()


def analyze_contention(
    samples: Sequence[ContentionSample],
    phase_len: int,
    phases: int,
    warm_phases: int = 2,
) -> AttackFindings:
    """Score the contention probe: did load modulation move latency?

    The receiver's samples are labeled by the phase parity of their
    arrival (odd = burst).  The first ``warm_phases`` phases are
    discarded as warm-up.  The probe extracts one bit per analyzed phase
    -- "was the other tenant busy?" -- and the haul is gated the same
    strict way as the cracks: bits count only when the Welch verdict is
    significant *and* every phase's median latency lands on the correct
    side of the best threshold.
    """
    window = [
        s for s in samples
        if warm_phases * phase_len <= s.arrival < phases * phase_len
    ]
    by_phase: Dict[int, List[int]] = {}
    for s in window:
        by_phase.setdefault(s.arrival // phase_len, []).append(s.latency)
    quiet = [s.latency for s in window
             if (s.arrival // phase_len) % 2 == 0]
    burst = [s.latency for s in window
             if (s.arrival // phase_len) % 2 == 1]
    if len(quiet) < 2 or len(burst) < 2:
        raise ValueError(
            f"contention probe needs >= 2 receiver samples per phase "
            f"class, got quiet={len(quiet)} burst={len(burst)}"
        )
    evidence = advantage(quiet, burst, label_a="quiet", label_b="burst")
    quiet_medians = [median(v) for p, v in sorted(by_phase.items())
                     if p % 2 == 0]
    burst_medians = [median(v) for p, v in sorted(by_phase.items())
                     if p % 2 == 1]
    separated = threshold_classifier(
        quiet_medians, burst_medians, "quiet", "burst"
    )
    n_phases = len(by_phase)
    extracted = (
        n_phases
        if evidence.significant() and separated.accuracy == 1.0
        else 0
    )
    return AttackFindings(
        recovered=[1 if m > median(quiet) else 0 for m in burst_medians],
        extracted=extracted,
        bits_extracted=float(extracted),
        evidence=evidence,
        extra={
            "phase_medians": {
                str(p): median(v) for p, v in sorted(by_phase.items())
            },
            "receiver_samples": len(window),
        },
    )
