"""The attack registry: every adversary the red-team campaign knows.

Mirrors :mod:`repro.hardware.registry`: each entry records not just a
factory but the *expected verdict* -- which scheduler policies are
supposed to defeat the attack (hold it at or below the victim's Theorem 2
budget).  The campaign (:mod:`repro.adversary.campaign`) treats that
metadata as falsifiable in both directions: an attack beating its budget
under a policy in ``defeated_by`` is a gateway bug, and an attack that
extracts nothing under *any* policy means the harness is vacuous (the
positive-control check).

Registered attacks
------------------

==========================  ========  ======================================
name                        defeated  mechanism
==========================  ========  ======================================
password-crack              quantized per-character crack of an unmitigated
                                      early-exit compare (service-time
                                      observable)
password-crack-mitigated    all       the same crack against a ``mitigate``d
                                      victim: the language-level defense,
                                      effective under every policy
tag-forge                   quantized hex-nibble sweep forging a keyed-hash
                                      tag (oscar230's insecure compare)
contention-probe            quantized cross-tenant load modulation read
                                      through the receiver's queue wait
==========================  ========  ======================================

Each spec's ``workload`` factory returns the tenant mix and gateway shape
the attack runs against; the campaign fills in policy, seed, and quantum.
Victims of the crack attacks are deliberately *unmitigated* -- their
static Theorem 2 budget is therefore zero bits (no mitigate sites means
``K = 0``), which is exactly the claim under test: fifo lets the
adversary extract bits it was never budgeted, the quantized release
policy does not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterator, Optional, Tuple

from .attacks import password_crack, tag_forge
from .engine import Strategy


class AttackRegistryError(ValueError):
    """An unknown attack name, or a conflicting registration."""


#: A strategy factory:
#: ``(victim_profile, rng, samples) -> strategy generator``.
StrategyFactory = Callable[[Dict[str, Any], random.Random, int], Strategy]


@dataclass(frozen=True)
class AttackSpec:
    """One registered adversary plus its expected-verdict metadata."""

    #: Canonical attack name (CLI-facing).
    name: str
    #: One-line description for catalogs and ``repro attack --list``.
    summary: str
    #: ``probe`` (adaptive strategy over the ProbeSource engine) or
    #: ``contention`` (the phased cross-tenant ContentionSource).
    kind: str
    #: The handler app the victim tenant runs.
    target_app: str
    #: The in-process ``attacks/`` entry point this adversary re-homes
    #: onto the served system.
    rehomes: str
    #: Policies expected to hold the attack at/below the victim's budget.
    #: A policy *not* listed here is expected to leak (fifo/rr for the
    #: unmitigated victims) -- the campaign's positive control.
    defeated_by: FrozenSet[str]
    #: Which Response quantity the adversary measures:
    #: ``observable`` (start-to-release) or ``latency``
    #: (arrival-to-release, the contention probe's signal).
    metric: str
    #: Worker-pool sizes the campaign sweeps for this attack.
    client_counts: Tuple[int, ...]
    #: Partial workload document: tenants, workers, arrival, background
    #: request count.  The campaign merges in policy/seed/quantum.
    workload: Callable[[], Dict[str, Any]]
    #: The tenant under attack.
    victim: str = "victim"
    #: Probe attacks: builds the strategy from the victim's public
    #: profile and the cell's seeded RNG.
    strategy: Optional[StrategyFactory] = None
    #: Probe attacks: extracts the victim's *public* parameters (lengths,
    #: alphabets) from its handler -- never the secret itself.
    profile: Optional[Callable[[Any], Dict[str, Any]]] = None
    #: Scoring: the ground-truth symbol sequence, from the victim handler
    #: and the attack's findings context (e.g. the forged message).
    truth: Optional[Callable[[Any, Dict[str, Any]], list]] = None
    #: Contention attacks: sender/receiver roles, phase geometry, and
    #: client think times (ContentionSource keyword arguments).
    contention: Optional[Dict[str, Any]] = None

    def expected_word(self, policy: str) -> str:
        """``defeated`` or ``leaks`` -- the expectation, for output."""
        return "defeated" if policy in self.defeated_by else "leaks"


class AttackRegistry:
    """Name -> :class:`AttackSpec`, iteration in registration order."""

    def __init__(self) -> None:
        self._specs: Dict[str, AttackSpec] = {}

    def register(self, spec: AttackSpec) -> AttackSpec:
        if spec.name in self._specs:
            raise AttackRegistryError(
                f"attack name {spec.name!r} is already registered"
            )
        if spec.kind not in ("probe", "contention"):
            raise AttackRegistryError(
                f"{spec.name}: unknown attack kind {spec.kind!r}"
            )
        if spec.kind == "probe" and (
                spec.strategy is None or spec.profile is None):
            raise AttackRegistryError(
                f"{spec.name}: probe attacks need strategy and profile"
            )
        if spec.kind == "contention" and spec.contention is None:
            raise AttackRegistryError(
                f"{spec.name}: contention attacks need phase parameters"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> AttackSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise AttackRegistryError(
                f"unknown attack {name!r}; choose from {list(self.names())}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[AttackSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def specs(self) -> Tuple[AttackSpec, ...]:
        return tuple(self._specs.values())


def _crack_workload() -> Dict[str, Any]:
    """The crack victims' serving shape: the vulnerable tenant plus a
    login tenant supplying realistic background traffic."""
    return {
        "tenants": [
            {"name": "victim", "app": "password",
             "config": {"mitigated": False, "length": 4, "alphabet": 8}},
            {"name": "mixer", "app": "login",
             "config": {"table_size": 4}},
        ],
        "workers": 2,
        "queue_depth": 16,
        "requests": 40,
        "arrival": {"kind": "closed", "clients": 2, "think": 512},
    }


def _mitigated_workload() -> Dict[str, Any]:
    """The same shape with the language-level defense on: the victim's
    compare runs under ``mitigate`` with a budget covering its
    worst-case cost, so the padded duration is constant from the first
    request."""
    spec = _crack_workload()
    spec["tenants"][0]["config"] = {
        "mitigated": True, "length": 4, "alphabet": 8, "budget": 4096,
    }
    return spec


def _tag_workload() -> Dict[str, Any]:
    return {
        "tenants": [
            {"name": "victim", "app": "tag",
             "config": {"mitigated": False, "nibbles": 5}},
            {"name": "mixer", "app": "login",
             "config": {"table_size": 4}},
        ],
        "workers": 2,
        "queue_depth": 16,
        "requests": 40,
        "arrival": {"kind": "closed", "clients": 2, "think": 512},
    }


def _contention_workload() -> Dict[str, Any]:
    """One worker, two constant-service tenants: the only timing left is
    queue wait, which is exactly what the probe modulates."""
    return {
        "tenants": [
            {"name": "observer", "app": "password",
             "config": {"mitigated": True, "length": 4, "budget": 512}},
            {"name": "bursty", "app": "password",
             "config": {"mitigated": True, "length": 4, "budget": 512}},
        ],
        "workers": 1,
        "queue_depth": 16,
        "requests": 1,
        "arrival": {"kind": "closed", "clients": 1, "think": 1024},
    }


def _password_profile(handler: Any) -> Dict[str, Any]:
    return {"length": handler.checker.length, "alphabet": handler.alphabet}


def _tag_profile(handler: Any) -> Dict[str, Any]:
    return {"nibbles": handler.nibbles,
            "message_len": handler.MESSAGE_LEN}


def _default_registry() -> AttackRegistry:
    registry = AttackRegistry()
    registry.register(AttackSpec(
        name="password-crack",
        summary="per-character crack of an unmitigated early-exit "
                "compare: quick-rank all symbols, verify promoted "
                "candidates with median-of-N",
        kind="probe",
        target_app="password",
        rehomes="repro.attacks.prefix_attack.recover_password",
        defeated_by=frozenset({"quantized"}),
        metric="observable",
        client_counts=(1, 4),
        workload=_crack_workload,
        strategy=password_crack,
        profile=_password_profile,
        truth=lambda handler, extra: list(handler.stored),
    ))
    registry.register(AttackSpec(
        name="password-crack-mitigated",
        summary="the same crack against a mitigate-wrapped victim: the "
                "language-level defense holds under every policy",
        kind="probe",
        target_app="password",
        rehomes="repro.attacks.prefix_attack.recover_password",
        defeated_by=frozenset({"fifo", "rr", "quantized"}),
        metric="observable",
        client_counts=(4,),
        workload=_mitigated_workload,
        strategy=password_crack,
        profile=_password_profile,
        truth=lambda handler, extra: list(handler.stored),
    ))
    registry.register(AttackSpec(
        name="tag-forge",
        summary="hex-prefix sweep forging a keyed-hash tag nibble by "
                "nibble through the early-exit compare",
        kind="probe",
        target_app="tag",
        rehomes="repro.attacks.prefix_attack.recover_password "
                "(16-symbol nibble alphabet)",
        defeated_by=frozenset({"quantized"}),
        metric="observable",
        client_counts=(1, 4),
        workload=_tag_workload,
        strategy=tag_forge,
        profile=_tag_profile,
        truth=lambda handler, extra: handler.tag_for(extra["message"]),
    ))
    registry.register(AttackSpec(
        name="contention-probe",
        summary="cross-tenant contention: modulate one tenant's load in "
                "timed phases, read the other tenant's queue wait",
        kind="contention",
        target_app="password",
        rehomes="repro.attacks.distinguisher.advantage "
                "(cross-tenant latency classes)",
        defeated_by=frozenset({"quantized"}),
        metric="latency",
        client_counts=(2,),
        workload=_contention_workload,
        victim="observer",
        contention={
            "sender": "bursty",
            "receiver": "observer",
            "phases": 8,
            "phase_len": 16384,
            "think_send": 256,
            "think_recv": 64,
            "senders": 1,
        },
    ))
    return registry


#: The process-wide default registry.  Tests that want isolation build
#: their own :class:`AttackRegistry` instead of mutating this one.
REGISTRY = _default_registry()
