"""The red-team adversary subsystem: empirical attacks on the gateway.

PRs 1-8 compute and audit the *static* Theorem 2 leakage bound; this
package measures the *empirical* side of the same claim.  It drives the
``repro serve`` gateway as tenants -- concurrent worker-pool clients,
median-of-N timing, warm-up discard, two-stage candidate promotion, all
on the deterministic virtual clock -- and reports each attack's measured
distinguisher advantage and extracted bits against the victim tenant's
budget, per scheduler policy.  See ``docs/ATTACKS.md`` and the
``repro attack`` subcommand.
"""

from .attacks import (
    AttackFindings,
    analyze_contention,
    password_crack,
    prefix_crack,
    tag_forge,
)
from .campaign import (
    SCHEMA,
    CampaignCell,
    CampaignError,
    cell_seed,
    render_campaign,
    run_campaign,
    run_cell,
)
from .engine import (
    ADVERSARY_ID_BASE,
    ContentionSample,
    ContentionSource,
    Probe,
    ProbeSource,
    worker_seed,
)
from .registry import (
    REGISTRY,
    AttackRegistry,
    AttackRegistryError,
    AttackSpec,
)

__all__ = [
    "ADVERSARY_ID_BASE",
    "AttackFindings",
    "AttackRegistry",
    "AttackRegistryError",
    "AttackSpec",
    "CampaignCell",
    "CampaignError",
    "ContentionSample",
    "ContentionSource",
    "Probe",
    "ProbeSource",
    "REGISTRY",
    "SCHEMA",
    "analyze_contention",
    "cell_seed",
    "password_crack",
    "prefix_crack",
    "render_campaign",
    "run_campaign",
    "run_cell",
    "tag_forge",
    "worker_seed",
]
