"""The red-team campaign: every attack x policy x client-count cell.

One cell = one deterministic gateway run: the attack's workload is built
with the cell's derived seed (``campaign_seed ^ crc32("attack:policy:N")``,
the ``hardware/verify.py`` discipline), the adversary source drives the
event loop, and the findings are scored against two references:

* the victim's **ground truth** (recovered-secret accuracy -- the
  campaign may read the secret; the attack never does);
* the victim's **Theorem 2 budget** -- the tenant leakage meter's static
  bound after the run.  The crack victims are unmitigated, so their
  budget is honestly zero bits; the cross-tenant probe's budget is zero
  by the isolation claim itself (no mitigate site spans tenants).

Verdict logic mirrors ``verify-hw``'s falsifiable-in-both-directions
stance: a policy listed in the attack's ``defeated_by`` must hold the
measured haul at/below budget (a beat is a gateway bug -> exit 1), and
when fifo is part of the sweep, at least one attack must extract a
statistically significant haul under it (the positive control -- a
harness that never measures anything proves nothing -> exit 1).

The output is a ``repro.adversary/1`` JSON document plus a text
rendering, behind ``repro attack``.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..service.gateway import Gateway
from ..service.workload import POLICY_CHOICES, WorkloadSpec
from ..telemetry.leakage import EPSILON
from .attacks import AttackFindings, analyze_contention
from .engine import ContentionSource, ProbeSource, worker_seed
from .registry import REGISTRY, AttackRegistry, AttackSpec

SCHEMA = "repro.adversary/1"

#: Verify-pass sample count (median-of-N) the campaign uses by default.
DEFAULT_SAMPLES = 3
#: Warm-up probes discarded before the first measured batch.
DEFAULT_WARMUP = 4


class CampaignError(ValueError):
    """Bad campaign inputs (unknown attack or policy)."""


@dataclass
class CampaignCell:
    """One measured (attack, policy, clients) point."""

    attack: str
    policy: str
    clients: int
    expected: str  # "defeated" | "leaks"
    metric: str
    advantage: float
    p_value: float
    t_stat: float
    significant: bool
    accuracy: float
    recovered: List[int]
    extracted: int
    bits_extracted: float
    budget_bits: float
    within_budget: bool
    probes: int
    makespan: int
    ok: bool
    detail: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        # JSON has no infinity: a deterministically distinguishable
        # channel (zero variance, distinct means) serializes as null.
        if math.isinf(self.t_stat):
            out["t_stat"] = None
        return out


def cell_seed(seed: int, attack: str, policy: str, clients: int) -> int:
    """The derived seed one cell replays from."""
    return worker_seed(seed, f"{attack}:{policy}:{clients}")


def _score(findings: AttackFindings, truth: Optional[List[int]]) -> float:
    """Recovered-secret accuracy against the full ground truth."""
    if not truth:
        return 0.0
    hits = sum(
        1 for got, want in zip(findings.recovered, truth) if got == want
    )
    return hits / len(truth)


def run_cell(
    spec: AttackSpec,
    policy: str,
    clients: int,
    seed: int = 0,
    quantum: int = 4096,
    samples: int = DEFAULT_SAMPLES,
    warmup: int = DEFAULT_WARMUP,
) -> CampaignCell:
    """Run one attack under one policy with one worker-pool size."""
    derived = cell_seed(seed, spec.name, policy, clients)
    workload = spec.workload()
    workload.update(policy=policy, seed=derived, quantum=quantum)
    wspec = WorkloadSpec.from_dict(workload)
    gateway = Gateway(wspec)
    victim_handler = gateway.handlers[spec.victim]
    if spec.kind == "probe":
        rng = random.Random(worker_seed(derived, "strategy"))
        strategy = spec.strategy(spec.profile(victim_handler), rng,
                                 samples)
        source = ProbeSource(
            wspec, gateway.handlers, spec.victim, strategy,
            clients=clients, warmup=warmup, think=64, seed=derived,
            metric=spec.metric,
        )
        result = gateway.use_source(source).serve()
        findings = source.findings
        if findings is None:
            raise CampaignError(
                f"{spec.name}: the strategy never finished (starved "
                f"probe queue?)"
            )
        probes = source.probes_sent
        truth = spec.truth(victim_handler, findings.extra)
        accuracy = _score(findings, truth)
    else:
        params = dict(spec.contention)
        source = ContentionSource(
            wspec, gateway.handlers, seed=derived, **params
        )
        result = gateway.use_source(source).serve()
        findings = analyze_contention(
            source.samples, params["phase_len"], params["phases"],
        )
        probes = len(source.samples)
        # Ground truth for the probe: every analyzed burst phase was in
        # fact a burst, so accuracy is the fraction flagged busy.
        accuracy = _score(findings, [1] * len(findings.recovered))
    budget = (
        0.0 if spec.kind == "contention"
        else result.meters[spec.victim].static_bound_bits()
    )
    evidence = findings.evidence
    significant = bool(evidence and evidence.significant())
    within = findings.bits_extracted <= budget + EPSILON
    expected_defeated = policy in spec.defeated_by
    # Only the defended direction is a hard gate per cell; the
    # positive-control direction is judged campaign-wide (one leaking
    # policy cell is enough to prove the harness measures).
    ok = within if expected_defeated else True
    registry = result.registry
    registry.set_gauge(f"adversary.{spec.name}.advantage",
                       evidence.advantage if evidence else 0.0)
    registry.set_gauge(f"adversary.{spec.name}.bits_extracted",
                       findings.bits_extracted)
    registry.set_gauge(f"adversary.{spec.name}.probes", probes)
    return CampaignCell(
        attack=spec.name,
        policy=policy,
        clients=clients,
        expected=spec.expected_word(policy),
        metric=spec.metric,
        advantage=evidence.advantage if evidence else 0.0,
        p_value=evidence.p_value if evidence else 1.0,
        t_stat=evidence.t_stat if evidence else 0.0,
        significant=significant,
        accuracy=accuracy,
        recovered=list(findings.recovered),
        extracted=findings.extracted,
        bits_extracted=findings.bits_extracted,
        budget_bits=budget,
        within_budget=within,
        probes=probes,
        makespan=result.makespan,
        ok=ok,
        detail=dict(findings.extra),
    )


def run_campaign(
    attacks: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    seed: int = 0,
    clients: Optional[Sequence[int]] = None,
    quantum: int = 4096,
    samples: int = DEFAULT_SAMPLES,
    warmup: int = DEFAULT_WARMUP,
    quick: bool = False,
    registry: AttackRegistry = REGISTRY,
) -> Dict[str, Any]:
    """Run the full sweep and return the ``repro.adversary/1`` document.

    ``clients`` overrides the worker-pool sweep for probe attacks only
    (the contention probe's client set is fixed by its sender/receiver
    roles); ``quick`` keeps one pool size per attack for bounded CI runs.
    """
    chosen_policies = tuple(policies) if policies else POLICY_CHOICES
    for policy in chosen_policies:
        if policy not in POLICY_CHOICES:
            raise CampaignError(
                f"unknown policy {policy!r}; choose from {POLICY_CHOICES}"
            )
    specs = (
        [registry.get(name) for name in attacks]
        if attacks else list(registry.specs())
    )
    cells: List[CampaignCell] = []
    for spec in specs:
        counts = (
            tuple(clients) if clients and spec.kind == "probe"
            else spec.client_counts
        )
        if quick:
            counts = counts[:1]
        for policy in chosen_policies:
            for count in counts:
                cells.append(run_cell(
                    spec, policy, count, seed=seed, quantum=quantum,
                    samples=samples, warmup=warmup,
                ))
    control_checked = "fifo" in chosen_policies
    control_ok = (not control_checked) or any(
        cell.policy == "fifo" and cell.significant
        and cell.bits_extracted > 0
        for cell in cells
    )
    defended_ok = all(cell.ok for cell in cells)
    return {
        "schema": SCHEMA,
        "seed": seed,
        "quantum": quantum,
        "policies": list(chosen_policies),
        "attacks": [spec.name for spec in specs],
        "cells": [cell.as_dict() for cell in cells],
        "positive_control": {
            "checked": control_checked,
            "ok": control_ok,
        },
        "defended_ok": defended_ok,
        "ok": defended_ok and control_ok,
    }


def render_campaign(document: Dict[str, Any]) -> str:
    """The text rendering of a ``repro.adversary/1`` document."""
    if document.get("schema") != SCHEMA:
        raise CampaignError(
            f"not a {SCHEMA} document: {document.get('schema')!r}"
        )
    lines = [
        f"red-team campaign  seed={document['seed']}  "
        f"quantum={document['quantum']}  "
        f"policies={','.join(document['policies'])}",
        "",
        f"{'attack':<26} {'policy':<10} {'cl':>3} {'advantage':>9} "
        f"{'p-value':>9} {'bits':>6} {'budget':>6} {'acc':>5} "
        f"{'expected':>9}  verdict",
    ]
    for cell in document["cells"]:
        beaten = not cell["within_budget"]
        if beaten and cell["expected"] == "defeated":
            verdict = "BUDGET BEATEN"
        elif beaten:
            verdict = "leaks (expected)"
        elif cell["expected"] == "leaks":
            verdict = "held (no extraction)"
        else:
            verdict = "defeated"
        lines.append(
            f"{cell['attack']:<26} {cell['policy']:<10} "
            f"{cell['clients']:>3} {cell['advantage']:>9.3f} "
            f"{cell['p_value']:>9.2e} {cell['bits_extracted']:>6.1f} "
            f"{cell['budget_bits']:>6.1f} {cell['accuracy']:>5.2f} "
            f"{cell['expected']:>9}  {verdict}"
        )
    control = document["positive_control"]
    lines.append("")
    if control["checked"]:
        lines.append(
            "positive control (fifo measures a channel): "
            + ("ok" if control["ok"] else "FAILED -- no attack extracted "
               "anything under fifo; the harness is vacuous")
        )
    else:
        lines.append("positive control: skipped (fifo not in sweep)")
    lines.append(
        "campaign: " + ("OK -- every defended cell held its Theorem 2 "
                        "budget" if document["ok"] else "VIOLATION")
    )
    return "\n".join(lines)
