"""The software/hardware contract interface.

This is the paper's central abstraction made executable: a
:class:`MachineEnvironment` is the ``E`` component of full-semantics
configurations ``(c, m, E, G)`` -- *all hardware state invisible at the
language level that is needed to predict timing* (Sec. 2.1).

The full semantics interacts with the environment through exactly one
operation, :meth:`MachineEnvironment.step`, and hands it exactly three
things about the executing command:

* an :class:`~repro.machine.layout.AccessTrace` (the instruction-fetch
  address and resolved data addresses) -- *addresses, never values*;
* the command's read label ``lr`` and write label ``lw``;
* a :class:`StepKind` so the model can charge different base costs.

That narrow interface is deliberate.  Property 6 says a step's duration may
depend only on the values of ``vars1`` and on environment state at or below
``lr``; since the environment never sees values at all (only addresses
derived from ``vars1`` values by the static layout), the interface makes the
"nothing else can matter" half structural, and each hardware design only has
to get the ``lr``/``lw`` discipline right.  The executable checkers in
:mod:`repro.hardware.contract` then validate Properties 2 and 5-7 against
any implementation -- the paper's claim that "implementers may verify that
their compiler and architecture designs control timing channels".

Projections: :meth:`MachineEnvironment.project` returns a hashable view of
the state at exactly one level, defining projected equivalence ``E1 =l= E2``
(Sec. 3.4); ``l``-equivalence follows by conjunction over all levels below.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Hashable, Iterable

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from ..telemetry.recorder import NULL_RECORDER, TraceRecorder


class StepKind(enum.Enum):
    """What sort of language step is being charged."""

    SKIP = "skip"
    ASSIGN = "assign"
    BRANCH = "branch"  # if / while guard evaluation
    MITIGATE = "mitigate"  # mitigate-head: budget evaluation
    SLEEP = "sleep"
    INTERNAL = "internal"  # mitigation-runtime bookkeeping, labeled [bot, top]


class MachineEnvironment(ABC):
    """Abstract machine environment: the hardware side of the contract."""

    def __init__(self, lattice: Lattice):
        self.lattice = lattice
        #: Telemetry seam (see :mod:`repro.telemetry`): models report
        #: cache/TLB/branch hit-miss classifications here, guarded by
        #: ``recorder.active`` so the default null recorder costs nothing.
        self.recorder: TraceRecorder = NULL_RECORDER

    def attach_recorder(self, recorder: TraceRecorder) -> None:
        """Attach a trace recorder.  Models with internal components that
        classify hits and misses themselves override this to propagate the
        recorder (recording is passive: attaching never changes timing)."""
        self.recorder = recorder

    @abstractmethod
    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        """Charge one evaluation step and update the environment.

        Returns the step's cost in cycles.  Implementations must honour the
        contract:

        * Property 5 (write label): state at any level ``l`` with
          ``lw !<= l`` must be unchanged.
        * Property 6 (read label): the returned cost may depend only on
          state at levels ``<= lr`` (and on the given trace/kind).
        * Property 7 (single-step noninterference): for every level ``l``,
          the post-state at levels ``<= l`` must be a function of the
          pre-state at levels ``<= l`` and the trace.
        """

    @abstractmethod
    def project(self, level: Label) -> Hashable:
        """State at exactly ``level`` -- the paper's ``E``-projection."""

    @abstractmethod
    def clone(self) -> "MachineEnvironment":
        """An independent deep copy (for pairwise property checking)."""

    # -- derived operations --------------------------------------------------

    def view(self, level: Label) -> Hashable:
        """State at ``level`` and below: the basis of ``~level``."""
        return tuple(
            (l.name, self.project(l))
            for l in self.lattice.levels()
            if l.flows_to(level)
        )

    def equivalent_to(self, other: "MachineEnvironment", level: Label) -> bool:
        """``self ~level other``: projected-equal at every level below."""
        return all(
            self.project(l) == other.project(l)
            for l in self.lattice.levels()
            if l.flows_to(level)
        )

    def projected_equal(
        self, other: "MachineEnvironment", level: Label
    ) -> bool:
        """``self =level= other``."""
        return self.project(level) == other.project(level)

    def full_state(self) -> Hashable:
        """Complete state snapshot (all levels)."""
        return tuple(
            (l.name, self.project(l)) for l in self.lattice.levels()
        )

    def warm_up(self, traces: Iterable[AccessTrace], read_label: Label,
                write_label: Label) -> None:
        """Run a sequence of accesses to warm the environment (no cost kept)."""
        for trace in traces:
            self.step(StepKind.ASSIGN, trace, read_label, write_label)
