"""A branch predictor: the machine-environment component behind BTB attacks.

Sec. 2.1 of the paper lists "branch predictors and branch target buffers"
(Aciicmez, Koc, Seifert) among the hardware sources of indirect timing
dependencies.  This module models a table of 2-bit saturating counters
indexed by branch (instruction) address.  A predicted branch costs nothing
extra; a misprediction costs a pipeline-flush penalty.

Security treatment mirrors the caches: predictor state is timing-relevant
machine-environment state, so the commodity design shares one table across
all contexts (insecure -- secret-dependent branch *outcomes* train state an
attacker-timed branch aliases with), while the secure designs either
freeze it outside public contexts (no-fill) or give every level its own
table (partitioned).

The component is **off by default** (``MachineParams.branch`` is ``None``)
so that the paper's Table 1 configuration stays exactly as published;
enable it with ``MachineParams(branch=BranchPredictorParams())``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: 2-bit saturating counter thresholds: 0,1 predict not-taken; 2,3 taken.
_WEAKLY_TAKEN = 2
_MAX_COUNTER = 3


@dataclass(frozen=True)
class BranchPredictorParams:
    """Geometry and penalty of the predictor."""

    entries: int = 512
    #: Pipeline-flush cost of a misprediction, in cycles.
    penalty: int = 3
    #: Initial counter value (1 = weakly not-taken, the usual reset state).
    reset_value: int = 1

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries & (self.entries - 1):
            raise ValueError("entries must be a power of two")
        if not 0 <= self.reset_value <= _MAX_COUNTER:
            raise ValueError("reset_value must be a 2-bit counter value")


class BranchPredictor:
    """A table of 2-bit saturating counters indexed by instruction address."""

    def __init__(self, params: BranchPredictorParams):
        self.params = params
        self._counters: List[int] = [params.reset_value] * params.entries

    def _index(self, address: int) -> int:
        # Instruction slots are 8 bytes; drop the offset bits before
        # indexing so consecutive commands map to consecutive entries.
        return (address >> 3) % self.params.entries

    def predict(self, address: int) -> bool:
        """The current prediction for the branch at ``address``."""
        return self._counters[self._index(address)] >= _WEAKLY_TAKEN

    def update(self, address: int, taken: bool) -> None:
        """Train the counter with the resolved outcome."""
        index = self._index(address)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, _MAX_COUNTER)
        else:
            self._counters[index] = max(counter - 1, 0)

    def cost(self, address: int, taken: bool) -> int:
        """The timing contribution of resolving this branch (no update)."""
        return 0 if self.predict(address) == taken else self.params.penalty

    def resolve(self, address: int, taken: bool, train: bool = True) -> int:
        """Cost plus (optionally) training -- one branch's full effect."""
        penalty = self.cost(address, taken)
        if train:
            self.update(address, taken)
        return penalty

    def state(self) -> Tuple[int, ...]:
        """Hashable snapshot for projected equivalence."""
        return tuple(self._counters)

    def clone(self) -> "BranchPredictor":
        twin = BranchPredictor(self.params)
        twin._counters = list(self._counters)
        return twin

    def __repr__(self) -> str:
        trained = sum(
            1 for c in self._counters if c != self.params.reset_value
        )
        return f"BranchPredictor({trained}/{self.params.entries} trained)"
