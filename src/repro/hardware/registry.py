"""The hardware registry: every machine environment the repo knows about.

The paper's software/hardware contract is only meaningful if it can be
checked against *arbitrary* hardware designs -- including deliberately
broken ones.  Following "Can We Prove Time Protection?" (Ge et al.,
arXiv:1901.08338), the registry therefore records, for every model, not
just a factory but the *expected verdict*: is this design supposed to
satisfy Properties 2 and 5-7, and if not, which property does it break?
The verification campaign (:mod:`repro.hardware.verify`) treats that
metadata as a falsifiable claim in both directions: an expected-secure
model producing a violation is a bug, and an expected-insecure model that
goes *undetected* means the checkers are vacuous.

This replaces the ad-hoc ``HARDWARE_CHOICES`` tuple that used to live in
the CLI.  Consumers:

* the CLI (``--hardware`` choices, ``repro contract``, ``repro verify-hw``);
* the service layer (workload-spec validation);
* benchmarks and tests (iterate the zoo instead of hand-written lists).

Registered models
-----------------

Secure (must pass every property on every supported lattice):
``null``, ``standard``'s secure siblings ``nofill`` and ``partitioned``.

Insecure (must be *detected*, with the listed property violated):

=============  ==================  ==========================================
name           violates            leak mechanism
=============  ==================  ==========================================
standard       P5 (write label)    label-oblivious shared caches (``nopar``)
bus            P6 (read label)     cross-level stall cycles on a shared bus
writeback      P6 (read label)     dirty-eviction write-backs of high lines
speculative    P6 + P7             shared predictor, mispredict-window flush
frequency      P6 (read label)     DVFS driven by global access history
leakytlb       P5 (write label)    one shared, label-oblivious TLB
=============  ==================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..lattice import Lattice, chain, diamond, two_point
from .interface import MachineEnvironment
from .params import MachineParams, paper_machine, tiny_machine

#: A model factory: ``(lattice, params) -> environment``.  Models that take
#: no machine parameters (the null design) simply ignore the second argument.
HardwareFactory = Callable[[Lattice, Optional[MachineParams]], MachineEnvironment]

#: Named machine-parameter points the campaign can sweep.  ``tiny`` keeps
#: caches small enough that random stimuli collide and evict; ``scaled8`` is
#: the Table 1 machine divided by 8; ``paper`` is Table 1 itself.
PARAM_POINTS: Dict[str, Callable[[], MachineParams]] = {
    "tiny": tiny_machine,
    "scaled8": lambda: paper_machine().scaled_down(8),
    "paper": paper_machine,
}

#: Named lattice points the campaign can sweep.
LATTICE_POINTS: Dict[str, Callable[[], Lattice]] = {
    "two_point": two_point,
    "chain3": lambda: chain(("L", "M", "H")),
    "diamond": diamond,
}


class HardwareRegistryError(ValueError):
    """An unknown model name, or a conflicting registration."""


@dataclass(frozen=True)
class HardwareSpec:
    """One registered hardware model plus its contract metadata."""

    #: Canonical model name (CLI-facing).
    name: str
    #: ``(lattice, params) -> MachineEnvironment``.
    factory: HardwareFactory
    #: One-line description for catalogs and ``verify-hw --list``.
    summary: str
    #: The claim under test: True means Properties 2 and 5-7 must all hold.
    expected_secure: bool
    #: For insecure models: which properties the design is known to break.
    #: The campaign requires the detected violation to be one of these.
    violates: Tuple[str, ...] = ()
    #: Alternative names (e.g. the paper calls ``standard`` ``nopar``).
    aliases: Tuple[str, ...] = ()
    #: Which :data:`LATTICE_POINTS` the model supports / is verified on.
    lattice_points: Tuple[str, ...] = ("two_point", "chain3")
    #: Which :data:`PARAM_POINTS` the campaign sweeps for this model.
    param_points: Tuple[str, ...] = ("tiny",)
    #: The :data:`PARAM_POINTS` entry used for end-to-end leak
    #: quantification.  Most leaks show at the tiny geometry; the
    #: write-back drain needs enough cache sets that the victim's dirty
    #: footprint is not saturated every step.
    quantify_point: str = "tiny"

    def make(
        self, lattice: Lattice, params: Optional[MachineParams] = None
    ) -> MachineEnvironment:
        """Instantiate the model."""
        return self.factory(lattice, params)

    def verdict_word(self) -> str:
        """``secure`` or ``insecure`` -- the expectation, for output."""
        return "secure" if self.expected_secure else "insecure"


class HardwareRegistry:
    """Name -> :class:`HardwareSpec`, with alias resolution.

    Iteration yields canonical specs in registration order, which keeps CLI
    choice lists and campaign output stable.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, HardwareSpec] = {}
        self._aliases: Dict[str, str] = {}

    def register(self, spec: HardwareSpec) -> HardwareSpec:
        """Add a model; names and aliases must be globally unique."""
        for name in (spec.name, *spec.aliases):
            if name in self._specs or name in self._aliases:
                raise HardwareRegistryError(
                    f"hardware model name {name!r} is already registered"
                )
        for point in spec.lattice_points:
            if point not in LATTICE_POINTS:
                raise HardwareRegistryError(
                    f"{spec.name}: unknown lattice point {point!r}"
                )
        for point in (*spec.param_points, spec.quantify_point):
            if point not in PARAM_POINTS:
                raise HardwareRegistryError(
                    f"{spec.name}: unknown parameter point {point!r}"
                )
        self._specs[spec.name] = spec
        for alias in spec.aliases:
            self._aliases[alias] = spec.name
        return spec

    def get(self, name: str) -> HardwareSpec:
        """Resolve a canonical name or alias to its spec."""
        canonical = self._aliases.get(name, name)
        try:
            return self._specs[canonical]
        except KeyError:
            raise HardwareRegistryError(
                f"unknown hardware model {name!r}; choose from "
                f"{list(self.choices())}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs or name in self._aliases

    def __iter__(self) -> Iterator[HardwareSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> Tuple[str, ...]:
        """Canonical names, in registration order."""
        return tuple(self._specs)

    def choices(self) -> Tuple[str, ...]:
        """Every accepted name (canonical + aliases), for argparse."""
        out = []
        for spec in self._specs.values():
            out.append(spec.name)
            out.extend(spec.aliases)
        return tuple(out)

    def specs(self, secure: Optional[bool] = None) -> Tuple[HardwareSpec, ...]:
        """Canonical specs, optionally filtered by expected verdict."""
        return tuple(
            spec for spec in self
            if secure is None or spec.expected_secure == secure
        )

    def make(
        self,
        name: str,
        lattice: Lattice,
        params: Optional[MachineParams] = None,
    ) -> MachineEnvironment:
        """Instantiate a model by (possibly aliased) name."""
        return self.get(name).make(lattice, params)


def _default_registry() -> HardwareRegistry:
    """Build the global registry: four classic designs plus the zoo."""
    # Imports are local so that model modules can import this module's
    # PARAM_POINTS/LATTICE_POINTS without a cycle.
    from .bus import SharedBusHardware
    from .frequency import FrequencyScalingHardware
    from .leakytlb import LeakyTlbHardware
    from .nofill import NoFillHardware
    from .null import NullHardware
    from .partitioned import PartitionedHardware
    from .speculative import SpeculativeHardware
    from .standard import StandardHardware
    from .writeback import WriteBackHardware

    registry = HardwareRegistry()
    registry.register(HardwareSpec(
        name="null",
        factory=lambda lattice, params=None: NullHardware(lattice),
        summary="fixed-cost abstract machine; no environment state at all",
        expected_secure=True,
        lattice_points=("two_point", "chain3", "diamond"),
    ))
    registry.register(HardwareSpec(
        name="standard",
        factory=StandardHardware,
        summary="commodity shared caches, label-oblivious (the paper's "
                "insecure 'nopar' baseline)",
        expected_secure=False,
        violates=("P5-write-label",),
        aliases=("nopar",),
        lattice_points=("two_point",),
    ))
    registry.register(HardwareSpec(
        name="nofill",
        factory=NoFillHardware,
        summary="Sec. 4.2: one low hierarchy; non-public write labels run "
                "in no-fill mode",
        expected_secure=True,
    ))
    registry.register(HardwareSpec(
        name="partitioned",
        factory=PartitionedHardware,
        summary="Sec. 4.3: statically partitioned caches/TLBs, one "
                "partition per level",
        expected_secure=True,
        lattice_points=("two_point", "chain3", "diamond"),
        param_points=("tiny", "scaled8"),
    ))
    registry.register(HardwareSpec(
        name="bus",
        factory=SharedBusHardware,
        summary="partitioned caches over one shared memory bus: stall "
                "cycles depend on cross-level traffic",
        expected_secure=False,
        violates=("P6-read-label",),
        lattice_points=("two_point",),
    ))
    registry.register(HardwareSpec(
        name="writeback",
        factory=WriteBackHardware,
        summary="write-back partitioned cache: draining dirty high lines "
                "makes low read cost depend on high writes",
        expected_secure=False,
        violates=("P6-read-label",),
        lattice_points=("two_point",),
        quantify_point="scaled8",
    ))
    registry.register(HardwareSpec(
        name="speculative",
        factory=SpeculativeHardware,
        summary="speculative front-end with one shared branch predictor "
                "and a mispredict-window flush",
        expected_secure=False,
        violates=("P6-read-label", "P7-single-step-NI"),
        lattice_points=("two_point",),
    ))
    registry.register(HardwareSpec(
        name="frequency",
        factory=FrequencyScalingHardware,
        summary="frequency scaling: cycle cost depends on the machine's "
                "global access history",
        expected_secure=False,
        violates=("P6-read-label",),
        lattice_points=("two_point",),
    ))
    registry.register(HardwareSpec(
        name="leakytlb",
        factory=LeakyTlbHardware,
        summary="partitioned caches but one shared, label-oblivious TLB",
        expected_secure=False,
        violates=("P5-write-label",),
        lattice_points=("two_point",),
    ))
    return registry


#: The process-wide default registry.  Tests that want isolation build their
#: own :class:`HardwareRegistry` instead of mutating this one.
REGISTRY = _default_registry()
