"""A full cache/TLB hierarchy: L1+L2 instruction and data caches plus TLBs.

Both the single-hierarchy designs (:mod:`repro.hardware.standard`,
:mod:`repro.hardware.nofill`) and each partition of the partitioned design
(:mod:`repro.hardware.partitioned`) are instances of this class.

Cost model for one access (data side; instruction side is symmetric)::

    cost = tlb_miss_penalty?            (30 cycles on D-TLB/I-TLB miss)
         + L1 latency                   (always paid)
         + L2 latency                   (only on L1 miss)
         + memory latency               (only on L2 miss)

``fill`` controls whether misses install new lines (the no-fill design runs
high-context accesses with ``fill=False``); ``promote`` controls whether hits
update LRU state (a *silent hit* with ``promote=False`` serves data without
perturbing replacement state, which Property 5 requires when the write label
does not flow to the partition's level).
"""

from __future__ import annotations

from typing import Hashable, Tuple

from ..telemetry.recorder import NULL_RECORDER
from .branch import BranchPredictor
from .cache import Cache
from .params import MachineParams
from .tlb import Tlb


class Hierarchy:
    """One complete set of caches and TLBs with a shared cost model."""

    def __init__(self, params: MachineParams):
        self.params = params
        #: Telemetry seam: hit/miss classifications go here when an active
        #: recorder is attached (see :mod:`repro.telemetry`).  Clones start
        #: detached so pairwise contract checks never double-record.
        self.recorder = NULL_RECORDER
        self.l1_data = Cache(params.l1_data)
        self.l2_data = Cache(params.l2_data)
        self.l1_inst = Cache(params.l1_inst)
        self.l2_inst = Cache(params.l2_inst)
        self.data_tlb = Tlb(params.data_tlb)
        self.inst_tlb = Tlb(params.inst_tlb)
        self.branch = (
            BranchPredictor(params.branch) if params.branch else None
        )

    # -- generic two-level access ----------------------------------------------

    def _access(
        self,
        tlb: Tlb,
        l1: Cache,
        l2: Cache,
        address: int,
        fill: bool,
        promote: bool,
        side: str = "d",
    ) -> int:
        recording = self.recorder.active
        cost = 0
        tlb_hit = tlb.lookup(address)
        if recording:
            self.recorder.on_cache_access(f"{side}tlb", tlb_hit)
        if tlb_hit:
            if promote:
                tlb.touch(address)
        else:
            cost += tlb.params.miss_penalty
            if fill:
                tlb.touch(address)
        cost += l1.params.latency
        l1_hit = l1.lookup(address)
        if recording:
            self.recorder.on_cache_access(f"l1{side}", l1_hit)
        if l1_hit:
            if promote:
                l1.touch(address)
            return cost
        cost += l2.params.latency
        l2_hit = l2.lookup(address)
        if recording:
            self.recorder.on_cache_access(f"l2{side}", l2_hit)
        if l2_hit:
            if promote:
                l2.touch(address)
            if fill:
                l1.touch(address)
            return cost
        cost += self.params.memory_latency
        if fill:
            l2.touch(address)
            l1.touch(address)
        return cost

    def branch_cost(self, address: int, taken: bool,
                    train: bool = True) -> int:
        """Misprediction penalty for a resolved branch (0 when the
        predictor component is disabled); optionally trains the counter."""
        if self.branch is None:
            return 0
        if self.recorder.active:
            # predict() is pure, so classifying before resolving is safe.
            self.recorder.on_branch(
                taken, self.branch.predict(address) != taken
            )
        return self.branch.resolve(address, taken, train=train)

    def data_access(self, address: int, fill: bool = True,
                    promote: bool = True) -> int:
        """One data read or write; returns its cost in cycles."""
        return self._access(
            self.data_tlb, self.l1_data, self.l2_data, address, fill, promote,
            side="d",
        )

    def inst_fetch(self, address: int, fill: bool = True,
                   promote: bool = True) -> int:
        """One instruction fetch; returns its cost in cycles."""
        return self._access(
            self.inst_tlb, self.l1_inst, self.l2_inst, address, fill, promote,
            side="i",
        )

    # -- worst-case costs (used by the partitioned design's bypass path) --------

    def data_miss_cost(self) -> int:
        """Cost of a data access that misses everywhere."""
        return (
            self.params.data_tlb.miss_penalty
            + self.params.l1_data.latency
            + self.params.l2_data.latency
            + self.params.memory_latency
        )

    def inst_miss_cost(self) -> int:
        """Cost of an instruction fetch that misses everywhere."""
        return (
            self.params.inst_tlb.miss_penalty
            + self.params.l1_inst.latency
            + self.params.l2_inst.latency
            + self.params.memory_latency
        )

    # -- presence / consistency helpers -------------------------------------------

    def holds_data(self, address: int) -> bool:
        """Is the block in either data-cache level?"""
        return self.l1_data.lookup(address) or self.l2_data.lookup(address)

    def evict_data(self, address: int) -> None:
        """Remove the block from both data-cache levels (single-copy move)."""
        self.l1_data.evict(address)
        self.l2_data.evict(address)

    def holds_inst(self, address: int) -> bool:
        """Is the block in either instruction-cache level?"""
        return self.l1_inst.lookup(address) or self.l2_inst.lookup(address)

    def evict_inst(self, address: int) -> None:
        """Remove the block from both instruction-cache levels."""
        self.l1_inst.evict(address)
        self.l2_inst.evict(address)

    # -- snapshots -------------------------------------------------------------------

    def state(self) -> Hashable:
        """Hashable snapshot of every cache, TLB, and predictor."""
        return (
            self.l1_data.state(),
            self.l2_data.state(),
            self.l1_inst.state(),
            self.l2_inst.state(),
            self.data_tlb.state(),
            self.inst_tlb.state(),
            self.branch.state() if self.branch is not None else (),
        )

    def clone(self) -> "Hierarchy":
        """An independent deep copy of every component."""
        twin = Hierarchy(self.params)
        twin.l1_data = self.l1_data.clone()
        twin.l2_data = self.l2_data.clone()
        twin.l1_inst = self.l1_inst.clone()
        twin.l2_inst = self.l2_inst.clone()
        twin.data_tlb = self.data_tlb.clone()
        twin.inst_tlb = self.inst_tlb.clone()
        twin.branch = self.branch.clone() if self.branch is not None else None
        return twin

    def components(self) -> Tuple:
        """The six components, for tests that poke at internals."""
        return (
            self.l1_data,
            self.l2_data,
            self.l1_inst,
            self.l2_inst,
            self.data_tlb,
            self.inst_tlb,
        )
