"""A TLB simulator.

Structurally a TLB is a small set-associative cache over *page numbers*
rather than block addresses, so this reuses :class:`~repro.hardware.cache.Cache`
machinery with page-granular indexing.  A hit costs nothing extra (address
translation overlaps the pipeline); a miss adds the Table 1 penalty
(30 cycles -- a hardware page walk).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from .params import TlbParams


class Tlb:
    """A set-associative TLB with true-LRU replacement over page numbers."""

    def __init__(self, params: TlbParams):
        self.params = params
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(params.sets)
        ]

    def _locate(self, address: int) -> Tuple[int, int]:
        page = address // self.params.page_bytes
        return page % self.params.sets, page // self.params.sets

    def lookup(self, address: int) -> bool:
        """Is the page mapping resident?  No state change."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def touch(self, address: int) -> bool:
        """Translate: LRU-promote on hit, walk-and-install on miss.

        Returns True on hit.
        """
        set_index, tag = self._locate(address)
        entries = self._sets[set_index]
        if tag in entries:
            entries.move_to_end(tag)
            return True
        if len(entries) >= self.params.ways:
            entries.popitem(last=False)
        entries[tag] = None
        return False

    def evict(self, address: int) -> bool:
        """Remove the page mapping if resident."""
        set_index, tag = self._locate(address)
        entries = self._sets[set_index]
        if tag in entries:
            del entries[tag]
            return True
        return False

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()

    def state(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable snapshot (resident page tags per set, LRU order)."""
        return tuple(tuple(entries.keys()) for entries in self._sets)

    def clone(self) -> "Tlb":
        twin = Tlb(self.params)
        twin._sets = [OrderedDict(entries) for entries in self._sets]
        return twin

    def __repr__(self) -> str:
        resident = sum(len(entries) for entries in self._sets)
        return f"Tlb({self.params.name!r}, {resident} entries)"
