"""Standard commodity hardware (the paper's ``nopar`` baseline).

One shared cache hierarchy, used identically by every command: read and
write labels are ignored, every access fills and promotes.  This is how an
unmodified processor behaves, and it is *insecure*: a command executing in a
high context still installs lines into the (conceptually public) cache, so
confidential control flow imprints on state a low observer can time --
exactly the Sec. 2.1 indirect-dependency example.  The contract checkers in
:mod:`repro.hardware.contract` demonstrate that this model violates
Properties 5 and 7, and the Table 2 / Fig. 7 benchmarks use it as the
``nopar`` column.

All state is considered to sit at the lattice's bottom level (anyone can
probe the shared cache through timing, per the threat model of Sec. 2.1).
"""

from __future__ import annotations

from typing import Hashable

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .hierarchy import Hierarchy
from .interface import MachineEnvironment, StepKind
from .params import MachineParams, paper_machine


class StandardHardware(MachineEnvironment):
    """A single shared, label-oblivious cache hierarchy."""

    def __init__(self, lattice: Lattice, params: MachineParams = None):
        super().__init__(lattice)
        self.params = params if params is not None else paper_machine()
        self.hierarchy = Hierarchy(self.params)

    def attach_recorder(self, recorder) -> None:
        """Propagate the telemetry recorder into the shared hierarchy."""
        super().attach_recorder(recorder)
        self.hierarchy.recorder = recorder

    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        cost = self.params.execute_cost
        cost += self.hierarchy.inst_fetch(trace.instruction)
        if trace.taken is not None:
            cost += self.hierarchy.branch_cost(trace.instruction, trace.taken)
        for address in trace.reads:
            cost += self.hierarchy.data_access(address)
        for address in trace.writes:
            cost += self.hierarchy.data_access(address)
        return cost

    def project(self, level: Label) -> Hashable:
        # The whole environment lives at bottom: a coresident adversary can
        # probe the shared cache regardless of clearance.
        if level == self.lattice.bottom:
            return self.hierarchy.state()
        return ()

    def clone(self) -> "StandardHardware":
        twin = type(self)(self.lattice, self.params)
        twin.hierarchy = self.hierarchy.clone()
        return twin
