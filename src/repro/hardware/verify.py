"""The contract-verification campaign: property-based testing of the zoo.

``repro verify-hw`` treats every :class:`~repro.hardware.registry.HardwareSpec`
as a falsifiable claim and attacks it with Hypothesis:

* for **expected-secure** models (null / nofill / partitioned), the campaign
  must fail to find any violation of Properties 2 and 5-7 across every
  supported lattice and machine-parameter point;
* for **expected-insecure** models (standard/bus/writeback/speculative/
  frequency/leakytlb), the campaign must *detect* a violation of one of the
  properties the spec declares it breaks -- an undetected insecure model
  means the checkers are vacuous, which is just as much a failure.

One generated example is a :class:`ContractCase`: a shared warm-up stimulus
sequence, a divergence phase whose write labels cannot reach the observation
level (so the two environments stay ``~level``-equivalent by Property 5),
and a probe step.  :func:`check_case` evaluates all four properties on that
single case, which gives Hypothesis one scalar predicate to falsify and --
crucially -- lets it *shrink* a failure to a minimal stimulus sequence.

Counterexamples serialize to JSON (schema ``repro.verify-hw/1``) together
with the lattice, the derandomization seed, and the violated property, and
:func:`replay_counterexample` re-executes them from the file alone; the CI
job uploads them as artifacts and a regression test replays a stored one.

For each *detected* model the campaign then quantifies the leak end to end
(:func:`measure_end_to_end`): it runs the unmitigated password and S-box
victims over a family of secrets and measures how many distinguishable
probe signatures a coresident adversary observes -- secure hardware yields
exactly one class (that is Properties 5/6 in action); leaky hardware yields
several, i.e. ``log2(classes)`` bits per run through the hardware channel
alone (the *direct* completion-time channel exists on every model and is
the mitigation's job, not the hardware's).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union
from zlib import crc32

from hypothesis import HealthCheck, Phase, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st
from hypothesis.database import DirectoryBasedExampleDatabase

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace, Layout
from .contract import Stimulus, Violation, _apply, _diverging_labels
from .interface import MachineEnvironment, StepKind
from .registry import (
    LATTICE_POINTS,
    PARAM_POINTS,
    REGISTRY,
    HardwareRegistry,
    HardwareRegistryError,
    HardwareSpec,
)

EnvFactory = Callable[[], MachineEnvironment]

#: JSON schema tag for serialized counterexamples.
COUNTEREXAMPLE_SCHEMA = "repro.verify-hw/1"

#: Address pools for generated stimuli.  The data pool strides 24 bytes so
#: that, on the tiny machine (8-byte blocks, 2 sets, 64-byte pages), it
#: produces both cache-set conflicts and multiple TLB pages; the code pool
#: does the same for the instruction side.
DATA_POOL: Tuple[int, ...] = tuple(0x1000_0000 + i * 24 for i in range(8))
CODE_POOL: Tuple[int, ...] = tuple(0x0040_0000 + i * 24 for i in range(8))

_STEP_KINDS = (
    StepKind.SKIP,
    StepKind.ASSIGN,
    StepKind.BRANCH,
    StepKind.MITIGATE,
)


# ---------------------------------------------------------------------------
# Contract cases: one generated example
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ContractCase:
    """One generated scenario for the property checkers.

    ``shared`` steps run on both environments of the equivalence pair;
    ``divergent`` steps run on the second only, and are restricted to write
    labels that cannot reach any level at or below ``level`` -- by Property
    5 they must leave the pair ``~level``-equivalent.  ``probe`` is the
    observation whose cost (Property 6, when its read label flows to
    ``level``) and state effect (Property 7) are compared.
    """

    level: Label
    shared: Tuple[Stimulus, ...]
    divergent: Tuple[Stimulus, ...]
    probe: Stimulus


def check_case(
    factory: EnvFactory, lattice: Lattice, case: ContractCase
) -> Optional[Violation]:
    """Evaluate Properties 2 and 5-7 on one case; None means all hold."""
    sequence = (*case.shared, *case.divergent, case.probe)

    # Property 2: the same stimuli drive two fresh environments identically.
    env_a, env_b = factory(), factory()
    for i, stim in enumerate(sequence):
        cost_a, cost_b = _apply(env_a, stim), _apply(env_b, stim)
        if cost_a != cost_b:
            return Violation(
                "P2-determinism",
                f"step {i}: identical stimuli cost {cost_a} != {cost_b}",
            )
    if env_a.full_state() != env_b.full_state():
        return Violation(
            "P2-determinism", "identical stimulus sequences diverged in state"
        )

    # Property 5: each step leaves unreachable levels untouched.
    env = factory()
    for i, stim in enumerate(sequence):
        before = {
            level: env.project(level)
            for level in lattice.levels()
            if not stim.write_label.flows_to(level)
        }
        _apply(env, stim)
        for level, snapshot in before.items():
            if env.project(level) != snapshot:
                return Violation(
                    "P5-write-label",
                    f"step {i} (lw={stim.write_label}) modified level "
                    f"{level} state",
                )

    # Build the ~level-equivalent pair: env2 additionally runs the
    # divergence phase, whose write labels cannot reach <= level.
    env1, env2 = factory(), factory()
    for stim in case.shared:
        _apply(env1, stim)
        _apply(env2, stim)
    for stim in case.divergent:
        _apply(env2, stim)
    if not env1.equivalent_to(env2, case.level):
        # The per-step check above should have caught this; keep a guard so
        # an unexpected equivalence break is still attributed to P5.
        return Violation(
            "P5-write-label",
            f"divergence phase with lw !<= {case.level} broke "
            f"~{case.level} equivalence",
        )

    # Property 6: with the probe's read label at or below the observation
    # level, both pair members must charge the same cost.
    if case.probe.read_label.flows_to(case.level):
        cost1 = _apply(env1.clone(), case.probe)
        cost2 = _apply(env2.clone(), case.probe)
        if cost1 != cost2:
            return Violation(
                "P6-read-label",
                f"~{case.level}-equivalent environments charged "
                f"{cost1} != {cost2} for a probe with "
                f"lr={case.probe.read_label}",
            )

    # Property 7: the same probe trace preserves ~level equivalence.
    _apply(env1, case.probe)
    _apply(env2, case.probe)
    if not env1.equivalent_to(env2, case.level):
        return Violation(
            "P7-single-step-NI",
            f"equal probe traces broke ~{case.level} equivalence "
            f"(probe lr={case.probe.read_label}, "
            f"lw={case.probe.write_label})",
        )
    return None


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


@st.composite
def stimulus_strategy(
    draw,
    lattice: Lattice,
    label_pairs: Optional[Tuple[Tuple[Label, Label], ...]] = None,
    code_pool: Tuple[int, ...] = CODE_POOL,
    data_pool: Tuple[int, ...] = DATA_POOL,
    kinds: Tuple[StepKind, ...] = _STEP_KINDS,
) -> Stimulus:
    """One step; ``label_pairs`` restricts the (read, write) label choice.

    Duplicates in the pools are deliberate: the probe of a
    :class:`ContractCase` is drawn from the base pools *plus* every address
    the earlier phases touched, which biases it toward collisions (re-using
    a trained branch site or a resident line is what exposes most leaks).
    """
    kind = draw(st.sampled_from(kinds))
    instruction = draw(st.sampled_from(code_pool))
    reads = tuple(draw(st.lists(st.sampled_from(data_pool), max_size=2)))
    writes = tuple(draw(st.lists(st.sampled_from(data_pool), max_size=1)))
    taken = draw(st.booleans()) if kind is StepKind.BRANCH else None
    if label_pairs is not None:
        read_label, write_label = draw(st.sampled_from(label_pairs))
    else:
        read_label = draw(st.sampled_from(lattice.levels()))
        # Favour lr = lw, the combination real designs optimize for.
        write_label = (
            read_label
            if draw(st.booleans())
            else draw(st.sampled_from(lattice.levels()))
        )
    trace = AccessTrace(
        instruction=instruction, reads=reads, writes=writes, taken=taken
    )
    return Stimulus(kind, trace, read_label, write_label)


@st.composite
def case_strategy(draw, lattice: Lattice) -> ContractCase:
    """A full :class:`ContractCase` over ``lattice``."""
    level = draw(st.sampled_from(lattice.levels()))
    shared = tuple(
        draw(st.lists(stimulus_strategy(lattice), max_size=12))
    )
    diverging = tuple(_diverging_labels(lattice, level))
    if diverging:
        # At least one diverging step, with branches over-weighted:
        # divergence through the (shared) predictor needs the phase to
        # actually train a branch site.
        divergent = tuple(
            draw(
                st.lists(
                    stimulus_strategy(
                        lattice,
                        label_pairs=diverging,
                        kinds=_STEP_KINDS + (StepKind.BRANCH,) * 2,
                    ),
                    min_size=1,
                    max_size=8,
                )
            )
        )
    else:
        # At lattice top nothing can diverge; the case still exercises
        # Properties 2, 5 and 7 on equal environments.
        divergent = ()
    probe_read = draw(
        st.sampled_from(
            tuple(l for l in lattice.levels() if l.flows_to(level))
        )
    )
    probe_write = draw(st.sampled_from(lattice.levels()))
    history = (*shared, *divergent)
    if divergent and draw(st.booleans()):
        # Replay probe: re-execute one divergence-phase trace under the
        # probe labels -- the classic attack shape (time what the victim
        # just did).  This is what reads back a trained branch site.
        template = draw(st.sampled_from(divergent))
        probe = Stimulus(
            template.kind, template.trace, probe_read, probe_write
        )
        return ContractCase(level, shared, divergent, probe)
    used_code = tuple(s.trace.instruction for s in history)
    # Branch sites trained earlier are the prime observation targets
    # (shared-predictor leaks need the probe to alias one), so weight them.
    used_branches = tuple(
        s.trace.instruction for s in history if s.trace.taken is not None
    )
    used_data = tuple(
        a for s in history for a in (*s.trace.reads, *s.trace.writes)
    )
    probe = draw(
        stimulus_strategy(
            lattice,
            label_pairs=((probe_read, probe_write),),
            code_pool=CODE_POOL + used_code + used_branches * 4,
            data_pool=DATA_POOL + used_data,
            kinds=(StepKind.ASSIGN, StepKind.BRANCH),
        )
    )
    return ContractCase(level, shared, divergent, probe)


# ---------------------------------------------------------------------------
# Counterexample serialization (schema repro.verify-hw/1)
# ---------------------------------------------------------------------------


def lattice_to_dict(lattice: Lattice) -> Dict[str, object]:
    levels = [level.name for level in lattice.levels()]
    covers = [
        [low.name, high.name]
        for low in lattice.levels()
        for high in lattice.levels()
        if low is not high and low.flows_to(high)
    ]
    return {"levels": levels, "covers": covers}


def lattice_from_dict(doc: Dict[str, object]) -> Lattice:
    return Lattice(
        [str(name) for name in doc["levels"]],
        [(str(lo), str(hi)) for lo, hi in doc["covers"]],
    )


def stimulus_to_dict(stim: Stimulus) -> Dict[str, object]:
    return {
        "kind": stim.kind.value,
        "read_label": stim.read_label.name,
        "write_label": stim.write_label.name,
        "trace": {
            "instruction": stim.trace.instruction,
            "reads": list(stim.trace.reads),
            "writes": list(stim.trace.writes),
            "taken": stim.trace.taken,
        },
    }


def stimulus_from_dict(doc: Dict[str, object], lattice: Lattice) -> Stimulus:
    trace = doc["trace"]
    return Stimulus(
        kind=StepKind(doc["kind"]),
        trace=AccessTrace(
            instruction=int(trace["instruction"]),
            reads=tuple(trace["reads"]),
            writes=tuple(trace["writes"]),
            taken=trace["taken"],
        ),
        read_label=lattice[str(doc["read_label"])],
        write_label=lattice[str(doc["write_label"])],
    )


def case_to_dict(case: ContractCase) -> Dict[str, object]:
    return {
        "level": case.level.name,
        "shared": [stimulus_to_dict(s) for s in case.shared],
        "divergent": [stimulus_to_dict(s) for s in case.divergent],
        "probe": stimulus_to_dict(case.probe),
    }


def case_from_dict(doc: Dict[str, object], lattice: Lattice) -> ContractCase:
    return ContractCase(
        level=lattice[str(doc["level"])],
        shared=tuple(
            stimulus_from_dict(s, lattice) for s in doc["shared"]
        ),
        divergent=tuple(
            stimulus_from_dict(s, lattice) for s in doc["divergent"]
        ),
        probe=stimulus_from_dict(doc["probe"], lattice),
    )


def counterexample_to_dict(
    *,
    model: str,
    lattice_point: str,
    param_point: str,
    seed: int,
    violation: Violation,
    case: ContractCase,
    lattice: Lattice,
) -> Dict[str, object]:
    """A fully replayable record of one falsified contract property."""
    return {
        "schema": COUNTEREXAMPLE_SCHEMA,
        "model": model,
        "lattice_point": lattice_point,
        "param_point": param_point,
        "seed": seed,
        "violation": violation.as_dict(),
        "lattice": lattice_to_dict(lattice),
        "case": case_to_dict(case),
    }


def replay_counterexample(
    doc: Union[str, Path, Dict[str, object]],
    registry: HardwareRegistry = REGISTRY,
) -> Optional[Violation]:
    """Re-execute a serialized counterexample; returns the fresh verdict.

    Accepts the JSON document itself or a path to it.  The stored lattice
    is reconstructed from the file, so replay does not depend on the
    campaign's lattice-point table staying stable.
    """
    if isinstance(doc, (str, Path)):
        doc = json.loads(Path(doc).read_text())
    if doc.get("schema") != COUNTEREXAMPLE_SCHEMA:
        raise ValueError(
            f"not a verify-hw counterexample (schema "
            f"{doc.get('schema')!r}, expected {COUNTEREXAMPLE_SCHEMA!r})"
        )
    lattice = lattice_from_dict(doc["lattice"])
    case = case_from_dict(doc["case"], lattice)
    spec = registry.get(str(doc["model"]))
    params_factory = PARAM_POINTS[str(doc["param_point"])]
    return check_case(
        lambda: spec.make(lattice, params_factory()), lattice, case
    )


# ---------------------------------------------------------------------------
# The Hypothesis campaign over one (model, lattice, params) point
# ---------------------------------------------------------------------------


class ContractFalsified(AssertionError):
    """Raised inside the Hypothesis property when a case finds a violation."""


def campaign_point(
    factory: EnvFactory,
    lattice: Lattice,
    *,
    max_examples: int = 300,
    seed: int = 0,
) -> Dict[str, object]:
    """Attack one model instance with ``max_examples`` generated cases.

    Returns ``{"examples": n, "violation": ..., "case": ...}`` where the
    case, if any, is the *shrunk* minimal counterexample (Hypothesis
    re-executes the minimal failing example last, so the final capture
    wins).  ``seed`` derandomizes generation; the test-suite profile's
    ``derandomize=True`` is explicitly overridden so the seed is honoured.
    (``@seed`` disables Hypothesis's own example database, so cross-run
    persistence lives in :func:`run_campaign`, which stores and replays
    the serialized counterexamples instead.)
    """
    state: Dict[str, object] = {"examples": 0, "violation": None, "case": None}

    @hypothesis_seed(seed)
    @hypothesis_settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        derandomize=False,
        print_blob=False,
        phases=(Phase.generate, Phase.shrink),
        suppress_health_check=list(HealthCheck),
    )
    @given(case=case_strategy(lattice))
    def attack(case: ContractCase) -> None:
        state["examples"] = int(state["examples"]) + 1
        violation = check_case(factory, lattice, case)
        if violation is not None:
            state["violation"] = violation
            state["case"] = case
            raise ContractFalsified(str(violation))

    try:
        attack()
    except ContractFalsified:
        pass
    return state


def point_seed(campaign_seed: int, model: str, lattice_point: str,
               param_point: str) -> int:
    """A stable per-point derandomization seed derived from the campaign's."""
    return campaign_seed ^ crc32(
        f"{model}:{lattice_point}:{param_point}".encode()
    )


# ---------------------------------------------------------------------------
# End-to-end leak quantification
# ---------------------------------------------------------------------------


@dataclass
class LeakMeasurement:
    """How much a coresident adversary learns from one victim run.

    ``probe_*`` counts distinguishable *hardware* observations (cache/TLB/
    predictor/clock probes after the victim ran) across the secret family;
    on contract-satisfying hardware there is exactly one class.  ``direct_*``
    counts distinguishable victim completion times -- the direct channel the
    unmitigated programs leak on *every* model (mitigation's job).
    """

    secrets: int
    probe_classes: int
    direct_classes: int

    @property
    def probe_bits(self) -> float:
        return math.log2(self.probe_classes) if self.probe_classes else 0.0

    @property
    def direct_bits(self) -> float:
        return math.log2(self.direct_classes) if self.direct_classes else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "secrets": self.secrets,
            "probe_classes": self.probe_classes,
            "probe_bits": round(self.probe_bits, 3),
            "direct_classes": self.direct_classes,
            "direct_bits": round(self.direct_bits, 3),
        }


def _probe_costs(
    environment: MachineEnvironment, addresses: Sequence[int]
) -> Tuple[int, ...]:
    """Bottom-labeled read probes, one clone per address (prime-and-probe)."""
    bottom = environment.lattice.bottom
    costs = []
    for address in addresses:
        clone = environment.clone()
        costs.append(
            clone.step(
                StepKind.ASSIGN,
                AccessTrace(
                    instruction=0x7FFF_0000, reads=(address,), writes=()
                ),
                bottom,
                bottom,
            )
        )
    return tuple(costs)


def _branch_probe_costs(
    environment: MachineEnvironment, instructions: Sequence[int]
) -> Tuple[int, ...]:
    """Bottom-labeled branch probes at the victim's instruction addresses.

    On hardware with a shared predictor this reads back what the victim's
    branches trained (the Spectre-style observation); contract-satisfying
    hardware charges the same cost regardless of the victim's secrets.
    """
    bottom = environment.lattice.bottom
    costs = []
    for instruction in instructions:
        for taken in (False, True):
            clone = environment.clone()
            costs.append(
                clone.step(
                    StepKind.BRANCH,
                    AccessTrace(
                        instruction=instruction, reads=(), writes=(),
                        taken=taken,
                    ),
                    bottom,
                    bottom,
                )
            )
    return tuple(costs)


def measure_end_to_end(
    spec: HardwareSpec,
    *,
    secrets: int = 8,
    password_length: int = 16,
    params_point: Optional[str] = None,
) -> LeakMeasurement:
    """Drive the unmitigated password and S-box victims over a family of
    ``secrets`` secrets on ``spec``'s hardware and count what an adversary's
    probes can tell apart."""
    from ..apps.password import PasswordChecker
    from ..apps.sbox_cipher import KEY_LENGTH, SboxCipher

    if params_point is None:
        params_point = spec.quantify_point
    params_factory = PARAM_POINTS[params_point]
    checker = PasswordChecker(mitigated=False, length=password_length)
    cipher = SboxCipher(mitigated=False, length=32, plaintext_length=16)
    guess = [0] * password_length
    plaintext = list(range(16))

    # The adversary knows the (static, public) layouts: it probes the
    # victims' own data addresses and branch sites, the strongest
    # coresident position.
    pw_layout = Layout.build(checker.program, checker.memory(guess, guess))
    pw_data = [
        pw_layout.data_address(access)
        for access in _array_accesses(pw_layout, "stored")
    ]
    pw_code = sorted(pw_layout.instr_addr.values())
    sbox_layout = Layout.build(
        cipher.program, cipher.memory([0] * KEY_LENGTH, plaintext)
    )
    sbox_data = [
        sbox_layout.data_address(access)
        for access in _array_accesses(sbox_layout, "ctext")
    ] + [
        sbox_layout.data_address(access)
        for access in _array_accesses(sbox_layout, "sbox")
    ][::16]

    probe_signatures = set()
    direct_times = set()
    for index in range(secrets):
        prefix = index % (password_length + 1)
        stored = [0] * prefix + [1] * (password_length - prefix)
        key = [(index * 37 + i * 11) % 251 for i in range(KEY_LENGTH)]
        pw_run = checker.run(
            stored, guess, hardware=spec.name, params=params_factory()
        )
        sbox_run = cipher.run(
            key, plaintext, hardware=spec.name, params=params_factory()
        )
        probe_signatures.add(
            _probe_costs(pw_run.environment, pw_data)
            + _branch_probe_costs(pw_run.environment, pw_code)
            + _probe_costs(sbox_run.environment, sbox_data)
        )
        direct_times.add((pw_run.time, sbox_run.time))
    return LeakMeasurement(
        secrets=secrets,
        probe_classes=len(probe_signatures),
        direct_classes=len(direct_times),
    )


def _array_accesses(layout: Layout, name: str):
    from ..machine.layout import DataAccess

    return [
        DataAccess(name, i) for i in range(layout.array_len[name])
    ]


# ---------------------------------------------------------------------------
# The full campaign
# ---------------------------------------------------------------------------


@dataclass
class ModelVerdict:
    """The campaign's outcome for one (model, lattice, params) point."""

    model: str
    lattice_point: str
    param_point: str
    expected_secure: bool
    violates: Tuple[str, ...]
    seed: int
    examples: int = 0
    violation: Optional[Violation] = None
    counterexample: Optional[Dict[str, object]] = None
    leak: Optional[LeakMeasurement] = None

    @property
    def detected(self) -> bool:
        return self.violation is not None

    def as_expected(self) -> bool:
        """Did this point behave as its spec claims?

        Secure models must survive; insecure models must be detected, and
        when the spec names the broken properties the detected violation
        must be one of them.
        """
        if self.expected_secure:
            return not self.detected
        if not self.detected:
            return False
        if self.violates:
            return self.violation.prop in self.violates
        return True

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "lattice": self.lattice_point,
            "params": self.param_point,
            "expected": "secure" if self.expected_secure else "insecure",
            "violates": list(self.violates),
            "seed": self.seed,
            "examples": self.examples,
            "detected": self.detected,
            "as_expected": self.as_expected(),
            "violation": self.violation.as_dict() if self.violation else None,
            "leak": self.leak.as_dict() if self.leak else None,
        }


@dataclass
class CampaignResult:
    """Every verdict from one ``repro verify-hw`` run."""

    verdicts: List[ModelVerdict] = field(default_factory=list)
    seed: int = 0
    max_examples: int = 0

    def ok(self) -> bool:
        return all(v.as_expected() for v in self.verdicts)

    def surprises(self) -> List[ModelVerdict]:
        return [v for v in self.verdicts if not v.as_expected()]

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro.verify-hw.campaign/1",
            "seed": self.seed,
            "max_examples": self.max_examples,
            "ok": self.ok(),
            "verdicts": [v.as_dict() for v in self.verdicts],
        }

    def summary_lines(self) -> List[str]:
        lines = []
        for v in self.verdicts:
            point = f"{v.model}[{v.lattice_point},{v.param_point}]"
            expect = "secure" if v.expected_secure else "insecure"
            if v.detected:
                outcome = f"VIOLATED {v.violation.prop}"
                if v.leak is not None:
                    outcome += (
                        f"; adversary observes {v.leak.probe_classes} "
                        f"probe classes (~{v.leak.probe_bits:.1f} bits/run)"
                    )
            else:
                outcome = "all properties held"
            mark = "ok " if v.as_expected() else "BAD"
            lines.append(
                f"{mark} {point:34s} expected {expect:8s} "
                f"[{v.examples} examples, seed {v.seed}] {outcome}"
            )
        return lines


def _replay_stored_failures(
    database: Optional[DirectoryBasedExampleDatabase],
    key: bytes,
    registry: HardwareRegistry,
) -> Optional[Dict[str, object]]:
    """Re-check counterexamples persisted under ``key`` in a prior run.

    Returns a ``campaign_point``-shaped state for the first stored document
    that still falsifies the contract (``examples`` counts the replays), or
    None when nothing is stored or every stored case has gone stale --
    entries that no longer reproduce are deleted so the database tracks the
    current models.
    """
    if database is None:
        return None
    replayed = 0
    for blob in sorted(database.fetch(key)):
        try:
            doc = json.loads(blob.decode())
            violation = replay_counterexample(doc, registry)
        except (ValueError, KeyError, HardwareRegistryError):
            database.delete(key, blob)
            continue
        replayed += 1
        if violation is not None:
            case = case_from_dict(
                doc["case"], lattice_from_dict(doc["lattice"])
            )
            return {
                "examples": replayed,
                "violation": violation,
                "case": case,
            }
        database.delete(key, blob)
    return None


def run_campaign(
    registry: HardwareRegistry = REGISTRY,
    *,
    models: Optional[Sequence[str]] = None,
    lattice_points: Optional[Sequence[str]] = None,
    max_examples: int = 300,
    seed: int = 0,
    quantify: bool = True,
    counterexample_dir: Optional[Union[str, Path]] = None,
    database_dir: Optional[Union[str, Path]] = None,
) -> CampaignResult:
    """Run the verification campaign over the registry.

    Every selected model is attacked at every (lattice point, parameter
    point) its spec declares, each with a seed derived stably from
    ``seed`` and the point's name (so single-model reruns reproduce the
    full campaign's generation exactly).  With ``counterexample_dir`` each
    shrunk counterexample is written as replayable JSON.

    ``database_dir`` persists an example database across runs: every
    detected counterexample is stored (as its replayable JSON document,
    keyed by point), and subsequent campaigns *replay* the stored failures
    before generating fresh examples -- so CI refinds a known leak
    immediately even with a tiny example budget.  Hypothesis's own
    database cannot serve here because ``@seed`` (which we need for
    printable, derandomized generation) disables it.
    """
    specs = (
        [registry.get(name) for name in models]
        if models
        else list(registry)
    )
    database = (
        DirectoryBasedExampleDatabase(str(database_dir))
        if database_dir
        else None
    )
    result = CampaignResult(seed=seed, max_examples=max_examples)
    for spec in specs:
        quantified = False
        for lattice_point in spec.lattice_points:
            if lattice_points and lattice_point not in lattice_points:
                continue
            for param_point in spec.param_points:
                lattice = LATTICE_POINTS[lattice_point]()
                params_factory = PARAM_POINTS[param_point]
                sub_seed = point_seed(
                    seed, spec.name, lattice_point, param_point
                )
                db_key = (
                    f"{COUNTEREXAMPLE_SCHEMA}:{spec.name}:"
                    f"{lattice_point}:{param_point}"
                ).encode()
                state = _replay_stored_failures(
                    database, db_key, registry
                )
                if state is None:
                    state = campaign_point(
                        lambda s=spec, l=lattice, pf=params_factory: s.make(
                            l, pf()
                        ),
                        lattice,
                        max_examples=max_examples,
                        seed=sub_seed,
                    )
                verdict = ModelVerdict(
                    model=spec.name,
                    lattice_point=lattice_point,
                    param_point=param_point,
                    expected_secure=spec.expected_secure,
                    violates=spec.violates,
                    seed=sub_seed,
                    examples=int(state["examples"]),
                    violation=state["violation"],
                )
                if verdict.detected:
                    verdict.counterexample = counterexample_to_dict(
                        model=spec.name,
                        lattice_point=lattice_point,
                        param_point=param_point,
                        seed=sub_seed,
                        violation=state["violation"],
                        case=state["case"],
                        lattice=lattice,
                    )
                    if database is not None:
                        database.save(
                            db_key,
                            json.dumps(
                                verdict.counterexample, sort_keys=True
                            ).encode(),
                        )
                    if counterexample_dir is not None:
                        directory = Path(counterexample_dir)
                        directory.mkdir(parents=True, exist_ok=True)
                        path = directory / (
                            f"counterexample_{spec.name}_"
                            f"{lattice_point}_{param_point}.json"
                        )
                        path.write_text(
                            json.dumps(verdict.counterexample, indent=2)
                            + "\n"
                        )
                    if quantify and not quantified:
                        verdict.leak = measure_end_to_end(spec)
                        quantified = True
                result.verdicts.append(verdict)
    return result
