"""Statically partitioned caches and TLBs (Sec. 4.3).

The paper's more efficient secure design gives every security level its own
static partition of each cache and TLB, and steers accesses by a *timing
label* that software provides (our implementation receives the read/write
labels directly; the paper encodes them in a new register).  For the
two-level lattice the behaviour is exactly the paper's:

* timing label H: both partitions are searched; on a miss, the line is
  installed in the H partition.  A hit in the L partition is served
  *silently* (no LRU promotion -- an H-labeled step may not modify L state,
  Property 5).
* timing label L: only the L partition is searched.  On an L miss the
  controller installs the line in the L partition; if the line already lived
  in the H partition it is *moved* (removed from H -- allowed, since
  ``L <= H``), and the hardware makes the move take exactly as long as a
  real miss, so timing reveals nothing about H state (Property 6).

The generalization to an arbitrary lattice, implemented here with timing
label ``l``:

* partitions at levels ``p <= l`` are searched (cheapest hit wins);
* a hit in partition ``p`` is LRU-promoted only when ``p = l`` (for
  ``p < l``, promotion would modify state below the write label);
* a miss installs into partition ``l`` and evicts the line from every
  partition strictly above ``l`` (single-copy consistency; eviction at
  ``q >= l`` is permitted by Property 5 because ``lw = l <= q``), always at
  full miss cost.

Like commodity caches (Sec. 5.1), the design needs ``lr = lw`` to use the
cache: a read must be able to promote/install at its own level.  Steps
arriving with ``lr != lw`` are served *bypassed* -- constant full-miss cost,
no state change -- which is trivially secure.  The type system offers
``require_cache_labels`` to reject such programs instead (Sec. 8.1 treats
``lr = lw`` as an extra side condition).
"""

from __future__ import annotations

from typing import Dict, Hashable

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .cache import Cache
from .hierarchy import Hierarchy
from .interface import MachineEnvironment, StepKind
from .params import MachineParams, paper_machine
from .tlb import Tlb


class PartitionedHardware(MachineEnvironment):
    """One cache/TLB partition per lattice level, with single-copy moves."""

    def __init__(self, lattice: Lattice, params: MachineParams = None):
        super().__init__(lattice)
        self.params = params if params is not None else paper_machine()
        self.partitions: Dict[Label, Hierarchy] = {
            level: Hierarchy(self.params) for level in lattice.levels()
        }

    def attach_recorder(self, recorder) -> None:
        """Propagate the telemetry recorder to every partition (the
        per-level branch predictors classify inside the hierarchy)."""
        super().attach_recorder(recorder)
        for hierarchy in self.partitions.values():
            hierarchy.recorder = recorder

    # -- the partitioned access algorithm ------------------------------------

    def _partitioned_access(
        self, address: int, label: Label, instruction: bool
    ) -> int:
        """One access with timing label ``label``; returns its cost.

        Split into a TLB stage and a cache stage so variant designs (the
        zoo's leaky-TLB model, future vectorized fast models) can replace
        one stage without re-implementing the other.
        """
        return self._tlb_access(address, label, instruction) + \
            self._cache_access(address, label, instruction)

    def _tlb_access(
        self, address: int, label: Label, instruction: bool
    ) -> int:
        """Address translation with timing label ``label``.

        A hit in any partition at or below ``label`` is free; a miss walks
        the page table and installs into the own-level partition.
        """
        searched = [
            p for p in self.lattice.levels() if p.flows_to(label)
        ]
        own = self.partitions[label]
        if instruction:
            tlb_of = lambda h: h.inst_tlb  # noqa: E731
        else:
            tlb_of = lambda h: h.data_tlb  # noqa: E731

        cost = 0
        tlb_hit = None
        for p in searched:
            if tlb_of(self.partitions[p]).lookup(address):
                tlb_hit = p
                break
        if self.recorder.active:
            self.recorder.on_cache_access(
                "itlb" if instruction else "dtlb", tlb_hit is not None
            )
        if tlb_hit is None:
            cost += tlb_of(own).params.miss_penalty
            tlb_of(own).touch(address)
            self._evict_above(address, label, tlb_of)
        elif tlb_hit == label:
            tlb_of(own).touch(address)  # LRU promotion in the own partition
        return cost

    def _cache_access(
        self, address: int, label: Label, instruction: bool
    ) -> int:
        """The L1/L2 stage of one access with timing label ``label``."""
        searched = [
            p for p in self.lattice.levels() if p.flows_to(label)
        ]
        own = self.partitions[label]
        if instruction:
            l1_of = lambda h: h.l1_inst  # noqa: E731
            l2_of = lambda h: h.l2_inst  # noqa: E731
        else:
            l1_of = lambda h: h.l1_data  # noqa: E731
            l2_of = lambda h: h.l2_data  # noqa: E731

        recording = self.recorder.active
        cache_side = "i" if instruction else "d"

        cost = 0
        # L1 search across all partitions at or below the timing label.
        l1_params = l1_of(own).params
        l2_params = l2_of(own).params
        cost += l1_params.latency
        l1_hit = None
        for p in searched:
            if l1_of(self.partitions[p]).lookup(address):
                l1_hit = p
                break
        if recording:
            self.recorder.on_cache_access(f"l1{cache_side}", l1_hit is not None)
        if l1_hit is not None:
            if l1_hit == label:
                l1_of(own).touch(address)
            return cost

        # L1 miss: search L2 the same way.
        cost += l2_params.latency
        l2_hit = None
        for p in searched:
            if l2_of(self.partitions[p]).lookup(address):
                l2_hit = p
                break
        if recording:
            self.recorder.on_cache_access(f"l2{cache_side}", l2_hit is not None)
        if l2_hit is not None:
            if l2_hit == label:
                l2_of(own).touch(address)
            l1_of(own).touch(address)
            self._evict_above(address, label, l1_of)
            return cost

        # Full miss: the controller either fetches from memory or moves the
        # line from a strictly-higher partition; both take the full miss
        # latency so that timing is independent of unsearched state.
        cost += self.params.memory_latency
        l2_of(own).touch(address)
        l1_of(own).touch(address)
        self._evict_above(address, label, l1_of)
        self._evict_above(address, label, l2_of)
        return cost

    def _evict_above(self, address: int, label: Label, component_of) -> None:
        """Single-copy consistency: drop the entry from partitions strictly
        above ``label`` (permitted by Property 5 since ``lw = label <= q``)."""
        for q in self.lattice.levels():
            if q != label and label.flows_to(q):
                component_of(self.partitions[q]).evict(address)

    # -- the contract interface ------------------------------------------------

    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        cost = self.params.execute_cost
        if read_label != write_label:
            # The cache can only be used when lr = lw (Sec. 5.1); other
            # steps bypass it entirely at worst-case cost.
            reference = self.partitions[self.lattice.bottom]
            cost += reference.inst_miss_cost()
            cost += reference.data_miss_cost() * (
                len(trace.reads) + len(trace.writes)
            )
            if self.recorder.active:
                self.recorder.on_bypass(
                    1 + len(trace.reads) + len(trace.writes)
                )
            if trace.taken is not None and self.params.branch is not None:
                cost += self.params.branch.penalty  # flat worst case
            return cost
        label = read_label
        cost += self._partitioned_access(
            trace.instruction, label, instruction=True
        )
        if trace.taken is not None:
            # Each level owns a private predictor: reads and training stay
            # at exactly the step's own level.
            cost += self.partitions[label].branch_cost(
                trace.instruction, trace.taken
            )
        for address in trace.reads:
            cost += self._partitioned_access(address, label, instruction=False)
        for address in trace.writes:
            cost += self._partitioned_access(address, label, instruction=False)
        return cost

    def project(self, level: Label) -> Hashable:
        return self.partitions[level].state()

    def clone(self) -> "PartitionedHardware":
        twin = type(self)(self.lattice, self.params)
        twin.partitions = {
            level: hierarchy.clone()
            for level, hierarchy in self.partitions.items()
        }
        return twin
