"""Static cost contracts: interval cycle bounds per evaluation step.

Every registered hardware model (:mod:`repro.hardware.registry`) charges
one :meth:`~repro.hardware.interface.MachineEnvironment.step` per labeled
command.  This module derives, for each model, a *static cost contract*: a
closed-form interval ``[lo, hi]`` bounding what that step can cost, as a
function of the step's kind, its access counts, and its read/write labels
-- everything the abstract cost interpreter (:mod:`repro.analysis.cost`)
knows without running the program.

The contracts mirror the concrete ``step()`` implementations exactly:

``null``
    ``DEFAULT_COSTS[kind] + reads + writes`` -- a point interval.
``standard`` / ``nofill``
    execute cost, plus an instruction fetch in
    ``[L1I hit, ITLB miss + L1I + L2I + memory]``, plus each data access in
    ``[L1D hit, DTLB miss + L1D + L2D + memory]``.
``partitioned`` / ``leakytlb``
    same envelope when ``lr = lw``; the bypass path (``lr != lw``) is a
    *point* interval (``execute + inst_miss + data_miss * accesses``).
``bus``
    adds an exact stall of ``2 * queue`` per step; the contract threads a
    queue-occupancy interval through the abstract state.
``writeback``
    per-step costs as partitioned; dirty-line drains are charged as a
    *region overhead* bounded by ``40 * (cumulative writes so far)``.
``speculative``
    adds ``[0, FLUSH_PENALTY]`` to every branch step.
``frequency``
    every step may run throttled: ``[lo, 2 * hi]``.

Soundness -- every concretely observed step cost lies inside its static
interval -- is validated by the profiler-replay harness in
:mod:`repro.analysis.cost` and its Hypothesis property test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..lattice import Label
from .interface import StepKind
from .null import DEFAULT_COSTS
from .params import CacheParams, MachineParams, paper_machine
from .registry import REGISTRY


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed cycle-count interval ``[lo, hi]``; ``hi=None`` means ⊤
    (no finite upper bound, e.g. a widened loop or an unknown sleep)."""

    lo: int
    hi: Optional[int]

    @classmethod
    def exact(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def top(cls, lo: int = 0) -> "Interval":
        return cls(lo, None)

    @property
    def bounded(self) -> bool:
        return self.hi is not None

    @property
    def is_exact(self) -> bool:
        return self.hi == self.lo

    @property
    def empty(self) -> bool:
        """True for the degenerate ``lo > hi`` interval (no cycle count
        satisfies it; used as an impossible-region sentinel)."""
        return self.hi is not None and self.hi < self.lo

    def __add__(self, other: "Interval") -> "Interval":
        hi = (
            None
            if self.hi is None or other.hi is None
            else self.hi + other.hi
        )
        return Interval(self.lo + other.lo, hi)

    def join(self, other: "Interval") -> "Interval":
        """The smallest interval containing both (lattice join)."""
        hi = (
            None
            if self.hi is None or other.hi is None
            else max(self.hi, other.hi)
        )
        return Interval(min(self.lo, other.lo), hi)

    def scaled(self, factor: int) -> "Interval":
        return Interval(
            self.lo * factor, None if self.hi is None else self.hi * factor
        )

    def stretched(self, factor: int) -> "Interval":
        """Keep ``lo``, multiply ``hi`` (e.g. a throttled-clock bound)."""
        return Interval(
            self.lo, None if self.hi is None else self.hi * factor
        )

    def contains(self, value: int) -> bool:
        return self.lo <= value and (self.hi is None or value <= self.hi)

    def disjoint_from(self, other: "Interval") -> bool:
        """No cycle count lies in both intervals."""
        below = self.hi is not None and self.hi < other.lo
        above = other.hi is not None and other.hi < self.lo
        return below or above

    def distinguishable(self, other: "Interval",
                        resolution: int = 1) -> bool:
        """Can a timing observer with ``resolution``-cycle granularity tell
        a duration from this interval apart from one in ``other``?

        True when the intervals are disjoint and separated by at least
        ``resolution`` cycles.  Symmetric by construction; an empty
        interval is never distinguishable from anything (there is no
        duration to observe).
        """
        if self.empty or other.empty:
            return False
        return self.gap(other) >= max(resolution, 1)

    def gap(self, other: "Interval") -> int:
        """Minimum cycle distance between the two intervals (0 if they
        overlap)."""
        if self.hi is not None and self.hi < other.lo:
            return other.lo - self.hi
        if other.hi is not None and other.hi < self.lo:
            return self.lo - other.hi
        return 0

    def __str__(self) -> str:
        if self.hi is None:
            return f"[{self.lo}, ⊤]"
        return f"[{self.lo}, {self.hi}]"


ZERO = Interval(0, 0)


# ---------------------------------------------------------------------------
# Cache geometry (for the TL025 set-straddle check)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheGeometry:
    """The L1-data geometry a static analysis needs: which addresses share
    a cache set."""

    sets: int
    block_bytes: int

    @classmethod
    def of(cls, cache: CacheParams) -> "CacheGeometry":
        return cls(sets=cache.sets, block_bytes=cache.block_bytes)

    def set_index(self, address: int) -> int:
        return (address // self.block_bytes) % self.sets


# ---------------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------------


class CostContract:
    """Static per-step cost bounds for one hardware model.

    Contracts are pure: the mutable part of a model (bus queue, dirty
    lines) is threaded through an explicit immutable abstract state so the
    cost interpreter can join it at control-flow merges and widen it at
    unbounded loops.
    """

    #: Canonical registry name of the model this contract abstracts.
    name: str = ""

    #: Clock granularity an observer of this model resolves, in cycles.
    #: Two region durations closer than this are treated as one
    #: observation by the quantitative-leakage analysis.
    RESOLUTION = 1

    def __init__(self, params: Optional[MachineParams] = None):
        self.params = params if params is not None else paper_machine()

    def distinguishable(self, a: Interval, b: Interval) -> bool:
        """Can this model's timing observer separate a duration drawn from
        ``a`` from one drawn from ``b``?  The quantitative-leakage engine
        (:mod:`repro.analysis.quantify`) forks a timing-equivalence class
        exactly when this holds."""
        return a.distinguishable(b, self.RESOLUTION)

    # -- abstract machine state (default: none) -----------------------------

    def initial_state(self) -> Hashable:
        return ()

    def join_state(self, a: Hashable, b: Hashable) -> Hashable:
        return a if a == b else self.widen_state(a)

    def widen_state(self, state: Hashable) -> Hashable:
        return state

    # -- per-step and per-region bounds --------------------------------------

    def step_cost(
        self,
        kind: StepKind,
        reads: int,
        writes: int,
        is_branch: bool,
        read_label: Optional[Label],
        write_label: Optional[Label],
        state: Hashable,
    ) -> Tuple[Interval, Hashable]:
        raise NotImplementedError

    def region_overhead(self, exit_state: Hashable) -> Interval:
        """Extra cycles a whole region may accumulate beyond the sum of its
        per-step intervals (e.g. write-back drains)."""
        return ZERO

    def geometry(self) -> Optional[CacheGeometry]:
        """The L1-data geometry, or ``None`` for cache-less models."""
        return CacheGeometry.of(self.params.l1_data)


class NullCostContract(CostContract):
    """`null`: fixed per-kind costs -- every interval is a point."""

    name = "null"

    def step_cost(self, kind, reads, writes, is_branch,
                  read_label, write_label, state):
        cost = DEFAULT_COSTS[kind] + reads + writes
        return Interval.exact(cost), state

    def geometry(self) -> Optional[CacheGeometry]:
        return None  # no environment state at all


class SharedHierarchyCostContract(CostContract):
    """`standard`/`nofill`: one hierarchy, every access may hit or miss."""

    name = "standard"

    def _inst_fetch(self) -> Interval:
        p = self.params
        return Interval(
            p.l1_inst.latency,
            p.inst_tlb.miss_penalty + p.l1_inst.latency
            + p.l2_inst.latency + p.memory_latency,
        )

    def _data_access(self) -> Interval:
        p = self.params
        return Interval(
            p.l1_data.latency,
            p.data_tlb.miss_penalty + p.l1_data.latency
            + p.l2_data.latency + p.memory_latency,
        )

    def _branch(self) -> Interval:
        if self.params.branch is None:
            return ZERO
        return Interval(0, self.params.branch.penalty)

    def step_cost(self, kind, reads, writes, is_branch,
                  read_label, write_label, state):
        cost = Interval.exact(self.params.execute_cost) + self._inst_fetch()
        if is_branch:
            cost = cost + self._branch()
        cost = cost + self._data_access().scaled(reads + writes)
        return cost, state


class PartitionedCostContract(SharedHierarchyCostContract):
    """`partitioned`/`leakytlb`: the cached path shares the standard
    envelope; the bypass path (``lr != lw``) is exact."""

    name = "partitioned"

    def _bypass(self, reads: int, writes: int, is_branch: bool) -> Interval:
        p = self.params
        inst_miss = (
            p.inst_tlb.miss_penalty + p.l1_inst.latency
            + p.l2_inst.latency + p.memory_latency
        )
        data_miss = (
            p.data_tlb.miss_penalty + p.l1_data.latency
            + p.l2_data.latency + p.memory_latency
        )
        cost = p.execute_cost + inst_miss + data_miss * (reads + writes)
        if is_branch and p.branch is not None:
            cost += p.branch.penalty
        return Interval.exact(cost)

    def step_cost(self, kind, reads, writes, is_branch,
                  read_label, write_label, state):
        bypass = self._bypass(reads, writes, is_branch)
        cached, state = super().step_cost(
            kind, reads, writes, is_branch, read_label, write_label, state
        )
        if read_label is None or write_label is None:
            # Labels unknown (inference failed): cover both paths.
            return bypass.join(cached), state
        if read_label != write_label:
            return bypass, state
        return cached, state


class BusCostContract(PartitionedCostContract):
    """`bus`: plus an exact ``2 * queue`` stall; the abstract state is the
    queue-occupancy interval ``(q_lo, q_hi)``."""

    name = "bus"
    STALL_CYCLES = 2
    DRAIN_PER_STEP = 1
    QUEUE_CAP = 4096

    def initial_state(self):
        return (0, 0)

    def join_state(self, a, b):
        return (min(a[0], b[0]), max(a[1], b[1]))

    def widen_state(self, state):
        return (0, self.QUEUE_CAP)

    def step_cost(self, kind, reads, writes, is_branch,
                  read_label, write_label, state):
        q_lo, q_hi = state
        stall = Interval(q_lo * self.STALL_CYCLES, q_hi * self.STALL_CYCLES)
        base, _ = super().step_cost(
            kind, reads, writes, is_branch, read_label, write_label, ()
        )
        traffic = 1 + reads + writes
        advance = lambda q: min(  # noqa: E731
            self.QUEUE_CAP, max(0, q - self.DRAIN_PER_STEP) + traffic
        )
        return stall + base, (advance(q_lo), advance(q_hi))


class WriteBackCostContract(PartitionedCostContract):
    """`writeback`: per-step costs as partitioned; drains are charged per
    *region*, bounded by the cumulative write count at region exit (every
    drained line was dirtied by some earlier write).  The abstract state is
    the cumulative-writes interval ``(w_lo, w_hi)``."""

    name = "writeback"
    WRITEBACK_PENALTY = 40

    def initial_state(self):
        return (0, 0)

    def join_state(self, a, b):
        hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
        return (min(a[0], b[0]), hi)

    def widen_state(self, state):
        return (state[0], None)

    def step_cost(self, kind, reads, writes, is_branch,
                  read_label, write_label, state):
        cost, _ = super().step_cost(
            kind, reads, writes, is_branch, read_label, write_label, ()
        )
        w_lo, w_hi = state
        return cost, (w_lo + writes,
                      None if w_hi is None else w_hi + writes)

    def region_overhead(self, exit_state) -> Interval:
        w_hi = exit_state[1]
        if w_hi is None:
            return Interval.top()
        return Interval(0, w_hi * self.WRITEBACK_PENALTY)


class SpeculativeCostContract(PartitionedCostContract):
    """`speculative`: every branch step may mispredict and flush."""

    name = "speculative"
    FLUSH_PENALTY = 12

    def step_cost(self, kind, reads, writes, is_branch,
                  read_label, write_label, state):
        cost, state = super().step_cost(
            kind, reads, writes, is_branch, read_label, write_label, state
        )
        if is_branch:
            cost = cost + Interval(0, self.FLUSH_PENALTY)
        return cost, state


class FrequencyCostContract(PartitionedCostContract):
    """`frequency`: any step may land in a throttled thermal window."""

    name = "frequency"
    SLOWDOWN = 2
    #: A throttled clock jitters every duration by up to SLOWDOWN;
    #: the observer cannot resolve gaps below that factor.
    RESOLUTION = SLOWDOWN

    def step_cost(self, kind, reads, writes, is_branch,
                  read_label, write_label, state):
        cost, state = super().step_cost(
            kind, reads, writes, is_branch, read_label, write_label, state
        )
        return cost.stretched(self.SLOWDOWN), state


#: Canonical registry name -> contract class.  `leakytlb` shares the
#: partitioned contract (it only re-routes TLB *state*, not cost bounds);
#: `nofill` shares the standard envelope (no-fill misses still pay full
#: memory latency).
_CONTRACTS = {
    "null": NullCostContract,
    "standard": SharedHierarchyCostContract,
    "nofill": SharedHierarchyCostContract,
    "partitioned": PartitionedCostContract,
    "leakytlb": PartitionedCostContract,
    "bus": BusCostContract,
    "writeback": WriteBackCostContract,
    "speculative": SpeculativeCostContract,
    "frequency": FrequencyCostContract,
}


def contract_for(
    hardware: str, params: Optional[MachineParams] = None
) -> CostContract:
    """The static cost contract for a registered model (aliases accepted)."""
    spec = REGISTRY.get(hardware)  # raises HardwareRegistryError if unknown
    contract_cls = _CONTRACTS[spec.name]
    contract = contract_cls(params)
    contract.name = spec.name
    return contract
