"""Hardware models: the machine-environment contract and four realizations.

* :class:`~repro.hardware.null.NullHardware` -- fixed-cost abstract machine
  (the implicit model of prior language-based work);
* :class:`~repro.hardware.standard.StandardHardware` -- commodity shared
  caches, label-oblivious (the paper's insecure ``nopar`` baseline);
* :class:`~repro.hardware.nofill.NoFillHardware` -- the Sec. 4.2 realization
  on standard hardware via no-fill mode;
* :class:`~repro.hardware.partitioned.PartitionedHardware` -- the Sec. 4.3
  statically partitioned cache/TLB design.
"""

from typing import Callable, Dict, Optional

from ..lattice import Lattice
from .branch import BranchPredictor, BranchPredictorParams
from .cache import Cache
from .contract import (
    ContractReport,
    Violation,
    check_determinism,
    check_read_label,
    check_single_step_ni,
    check_write_label,
    run_contract_suite,
)
from .hierarchy import Hierarchy
from .interface import MachineEnvironment, StepKind
from .nofill import NoFillHardware
from .null import NullHardware
from .params import (
    CacheParams,
    MachineParams,
    TlbParams,
    paper_machine,
    tiny_machine,
)
from .partitioned import PartitionedHardware
from .standard import StandardHardware
from .tlb import Tlb

_MODELS: Dict[str, Callable] = {
    "null": NullHardware,
    "standard": StandardHardware,
    "nopar": StandardHardware,  # the paper's name for the baseline
    "nofill": NoFillHardware,
    "partitioned": PartitionedHardware,
}


def make_hardware(
    name: str, lattice: Lattice, params: Optional[MachineParams] = None
) -> MachineEnvironment:
    """Build a hardware model by name: ``null``, ``standard``/``nopar``,
    ``nofill``, or ``partitioned``."""
    try:
        model = _MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown hardware model {name!r}; choose from {sorted(_MODELS)}"
        ) from None
    if name == "null":
        return model(lattice)
    return model(lattice, params)


__all__ = [
    "BranchPredictor",
    "BranchPredictorParams",
    "Cache",
    "CacheParams",
    "ContractReport",
    "Hierarchy",
    "MachineEnvironment",
    "MachineParams",
    "NoFillHardware",
    "NullHardware",
    "PartitionedHardware",
    "StandardHardware",
    "StepKind",
    "Tlb",
    "TlbParams",
    "Violation",
    "check_determinism",
    "check_read_label",
    "check_single_step_ni",
    "check_write_label",
    "make_hardware",
    "paper_machine",
    "run_contract_suite",
    "tiny_machine",
]
