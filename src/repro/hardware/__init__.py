"""Hardware models: the machine-environment contract and its zoo.

Secure designs (must satisfy Properties 2 and 5-7):

* :class:`~repro.hardware.null.NullHardware` -- fixed-cost abstract machine
  (the implicit model of prior language-based work);
* :class:`~repro.hardware.nofill.NoFillHardware` -- the Sec. 4.2 realization
  on standard hardware via no-fill mode;
* :class:`~repro.hardware.partitioned.PartitionedHardware` -- the Sec. 4.3
  statically partitioned cache/TLB design.

Adversarial designs (each deliberately breaks a named property, so the
verification campaign has real leaks to find -- see docs/HARDWARE.md):

* :class:`~repro.hardware.standard.StandardHardware` -- commodity shared
  caches, label-oblivious (the paper's insecure ``nopar`` baseline; P5);
* :class:`~repro.hardware.bus.SharedBusHardware` -- shared-bus contention
  stalls (P6);
* :class:`~repro.hardware.writeback.WriteBackHardware` -- write-back cache,
  dirty-eviction cost (P6);
* :class:`~repro.hardware.speculative.SpeculativeHardware` -- shared branch
  predictor with a mispredict-window flush (P6 + P7);
* :class:`~repro.hardware.frequency.FrequencyScalingHardware` -- DVFS driven
  by global access history (P6);
* :class:`~repro.hardware.leakytlb.LeakyTlbHardware` -- one shared,
  label-oblivious TLB (P5).

The :data:`~repro.hardware.registry.REGISTRY` maps names (and aliases such
as ``nopar``) to factories plus contract metadata; :func:`make_hardware` is
the convenience constructor over it.  :mod:`repro.hardware.verify` runs the
property-based contract-verification campaign over every registered model.
"""

from typing import Optional

from ..lattice import Lattice
from .branch import BranchPredictor, BranchPredictorParams
from .bus import SharedBusHardware
from .cache import Cache
from .contract import (
    ContractReport,
    Violation,
    check_determinism,
    check_read_label,
    check_single_step_ni,
    check_write_label,
    run_contract_suite,
)
from .frequency import FrequencyScalingHardware
from .hierarchy import Hierarchy
from .interface import MachineEnvironment, StepKind
from .leakytlb import LeakyTlbHardware
from .nofill import NoFillHardware
from .null import NullHardware
from .params import (
    CacheParams,
    MachineParams,
    TlbParams,
    paper_machine,
    tiny_machine,
)
from .partitioned import PartitionedHardware
from .registry import (
    LATTICE_POINTS,
    PARAM_POINTS,
    REGISTRY,
    HardwareRegistry,
    HardwareRegistryError,
    HardwareSpec,
)
from .speculative import SpeculativeHardware
from .standard import StandardHardware
from .tlb import Tlb
from .writeback import WriteBackHardware


def make_hardware(
    name: str, lattice: Lattice, params: Optional[MachineParams] = None
) -> MachineEnvironment:
    """Build a registered hardware model by name (see :data:`REGISTRY`).

    Raises :class:`HardwareRegistryError` (a ``ValueError``) for unknown
    names, listing the valid choices.
    """
    return REGISTRY.make(name, lattice, params)


__all__ = [
    "BranchPredictor",
    "BranchPredictorParams",
    "Cache",
    "CacheParams",
    "ContractReport",
    "FrequencyScalingHardware",
    "HardwareRegistry",
    "HardwareRegistryError",
    "HardwareSpec",
    "Hierarchy",
    "LATTICE_POINTS",
    "LeakyTlbHardware",
    "MachineEnvironment",
    "MachineParams",
    "NoFillHardware",
    "NullHardware",
    "PARAM_POINTS",
    "PartitionedHardware",
    "REGISTRY",
    "SharedBusHardware",
    "SpeculativeHardware",
    "StandardHardware",
    "StepKind",
    "Tlb",
    "TlbParams",
    "Violation",
    "WriteBackHardware",
    "check_determinism",
    "check_read_label",
    "check_single_step_ni",
    "check_write_label",
    "make_hardware",
    "paper_machine",
    "run_contract_suite",
    "tiny_machine",
]
