"""Adversarial model: dynamic frequency scaling (DVFS).

**Violates Property 6 (read label).**

Cycle counts are only a safe currency for the contract if a cycle's
wall-clock length is constant.  Real processors throttle: sustained
activity heats the package, power management drops the frequency, and
every instruction -- at every security level -- gets slower.  This model
makes the effect explicit in cycles: a machine-global activity meter sums
all accesses ever performed, and while the meter sits in an odd-numbered
thermal window every step's cost is multiplied by a slowdown factor.

The leak is the Hertzbleed pattern (frequency side channels): high-context
computation advances the global meter, so whether a *low* step runs at
full or throttled speed depends on how much high work preceded it -- cost
as a function of state strictly above the read label, which Property 6
forbids.  No cache state crosses levels at all; the channel lives entirely
in the clock.

Properties 2, 5, and 7 hold: the meter advances deterministically with the
trace, is filed at lattice top (any write label may advance it), and never
alters which lines any partition holds.
"""

from __future__ import annotations

from typing import Hashable

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .interface import StepKind
from .params import MachineParams
from .partitioned import PartitionedHardware


class FrequencyScalingHardware(PartitionedHardware):
    """Partitioned caches on a core whose clock tracks global activity."""

    #: Accesses per thermal window; odd windows run throttled.
    WINDOW = 8
    #: Cost multiplier while throttled.
    SLOWDOWN = 2

    def __init__(self, lattice: Lattice, params: MachineParams = None):
        super().__init__(lattice, params)
        self._activity = 0

    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        base = super().step(kind, trace, read_label, write_label)
        throttled = (self._activity // self.WINDOW) % 2 == 1
        self._activity += 1 + len(trace.reads) + len(trace.writes)
        return base * self.SLOWDOWN if throttled else base

    def project(self, level: Label) -> Hashable:
        base = super().project(level)
        if level == self.lattice.top:
            return (base, self._activity)
        return base

    def clone(self) -> "FrequencyScalingHardware":
        twin = super().clone()
        twin._activity = self._activity
        return twin
