"""Executable checkers for the hardware side of the software/hardware contract.

Sec. 3.5-3.6 of the paper state seven properties a full semantics must
satisfy.  Four of them constrain the *hardware* alone and are checked here
against any :class:`~repro.hardware.interface.MachineEnvironment`:

* Property 2 (deterministic execution): same stimulus, same cost and state.
* Property 5 (write label): a step with write label ``lw`` leaves state at
  every level ``l`` with ``lw !<= l`` untouched.
* Property 6 (read label): two environments that agree at and below the read
  label charge the same cost for the same step.
* Property 7 (single-step machine-environment noninterference): for every
  level ``l``, the post-state at and below ``l`` is a function of the
  pre-state at and below ``l`` and the access trace.

The remaining properties (1 adequacy, 3 sequential composition, 4 sleep
accuracy) constrain the language semantics and are checked in
:mod:`repro.semantics.faithfulness`.

The checkers are randomized: they drive the environment with seeded random
access traces drawn from a small address pool (so cache sets collide and
evictions happen), construct pairs of environments that are provably
``l``-equivalent by diverging them only with steps whose write labels cannot
reach ``l``, and then compare a probe step.  A note on Properties 6/7 and
addresses: in the paper's scalar language the addresses a command touches
are syntactically determined, so "same command, equivalent memories" implies
"same access trace".  Our array extension can make addresses value-dependent,
which the *type system* handles (array-index labels must flow to the write
label); the hardware-level property is therefore stated over equal traces,
which is exactly the obligation the paper's designs discharge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .interface import MachineEnvironment, StepKind

EnvFactory = Callable[[], MachineEnvironment]


@dataclass(frozen=True)
class Stimulus:
    """One synthetic step: a trace plus its labels and kind."""

    kind: StepKind
    trace: AccessTrace
    read_label: Label
    write_label: Label


@dataclass
class Violation:
    """A concrete counterexample to one contract property."""

    prop: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.prop}] {self.detail}"

    def as_dict(self) -> Dict[str, str]:
        return {"prop": self.prop, "detail": self.detail}

    @classmethod
    def from_dict(cls, doc: Dict[str, str]) -> "Violation":
        return cls(prop=doc["prop"], detail=doc["detail"])


@dataclass
class ContractReport:
    """Aggregated results of a contract-checking run."""

    violations: Dict[str, List[Violation]] = field(default_factory=dict)
    checked: Dict[str, int] = field(default_factory=dict)

    def record(self, prop: str, violation: Violation = None) -> None:
        self.checked[prop] = self.checked.get(prop, 0) + 1
        if violation is not None:
            self.violations.setdefault(prop, []).append(violation)

    def ok(self, prop: str = None) -> bool:
        if prop is not None:
            return not self.violations.get(prop)
        return not any(self.violations.values())

    def failing_properties(self) -> Tuple[str, ...]:
        return tuple(sorted(p for p, v in self.violations.items() if v))

    def summary(self) -> str:
        lines = []
        for prop in sorted(self.checked):
            bad = len(self.violations.get(prop, []))
            verdict = "OK" if bad == 0 else f"{bad} violations"
            lines.append(f"{prop}: {self.checked[prop]} checks, {verdict}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "checked": dict(self.checked),
            "violations": {
                prop: [v.as_dict() for v in vs]
                for prop, vs in self.violations.items()
                if vs
            },
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ContractReport":
        report = cls()
        report.checked = {
            str(prop): int(count)
            for prop, count in dict(doc.get("checked", {})).items()
        }
        report.violations = {
            str(prop): [Violation.from_dict(v) for v in vs]
            for prop, vs in dict(doc.get("violations", {})).items()
        }
        return report


# ---------------------------------------------------------------------------
# Stimulus generation
# ---------------------------------------------------------------------------

_PROBE_KINDS = (
    StepKind.SKIP,
    StepKind.ASSIGN,
    StepKind.BRANCH,
    StepKind.MITIGATE,
)


def _address_pool(rng: random.Random, size: int = 24) -> List[int]:
    """A small pool of data/instruction addresses with deliberate set
    collisions (shared low bits) so replacement behaviour is exercised."""
    pool = []
    for _ in range(size):
        base = rng.randrange(0, 1 << 20)
        pool.append(0x1000_0000 + base * 4)
    return pool


def random_stimulus(
    rng: random.Random,
    lattice: Lattice,
    data_pool: Sequence[int],
    code_pool: Sequence[int],
    labels: Tuple[Label, Label] = None,
) -> Stimulus:
    """One random step; ``labels`` pins the (read, write) labels if given."""
    if labels is None:
        read = rng.choice(lattice.levels())
        # Favour lr = lw, the combination real designs optimize for.
        write = read if rng.random() < 0.7 else rng.choice(lattice.levels())
    else:
        read, write = labels
    n_reads = rng.randrange(0, 3)
    n_writes = rng.randrange(0, 2)
    kind = rng.choice(_PROBE_KINDS)
    taken = rng.choice((True, False)) if kind == StepKind.BRANCH else None
    trace = AccessTrace(
        instruction=rng.choice(code_pool),
        reads=tuple(rng.choice(data_pool) for _ in range(n_reads)),
        writes=tuple(rng.choice(data_pool) for _ in range(n_writes)),
        taken=taken,
    )
    return Stimulus(kind, trace, read, write)


def _apply(env: MachineEnvironment, stim: Stimulus) -> int:
    return env.step(stim.kind, stim.trace, stim.read_label, stim.write_label)


def _diverging_labels(lattice: Lattice, level: Label) -> List[Tuple[Label, Label]]:
    """Label pairs whose write label cannot reach any level at or below
    ``level`` -- steps safe to apply to one side of an ``~level`` pair."""
    pairs = []
    below = [l for l in lattice.levels() if l.flows_to(level)]
    for write in lattice.levels():
        if any(write.flows_to(l) for l in below):
            continue
        for read in lattice.levels():
            pairs.append((read, write))
    return pairs


# ---------------------------------------------------------------------------
# Individual property checkers
# ---------------------------------------------------------------------------


def check_determinism(
    factory: EnvFactory,
    lattice: Lattice,
    trials: int = 20,
    steps: int = 40,
    seed: int = 0,
    report: ContractReport = None,
) -> ContractReport:
    """Property 2: identical stimulus sequences yield identical costs/state."""
    report = report if report is not None else ContractReport()
    rng = random.Random(seed)
    for trial in range(trials):
        data_pool = _address_pool(rng)
        code_pool = _address_pool(rng)
        stimuli = [
            random_stimulus(rng, lattice, data_pool, code_pool)
            for _ in range(steps)
        ]
        env1, env2 = factory(), factory()
        for i, stim in enumerate(stimuli):
            c1 = _apply(env1, stim)
            c2 = _apply(env2, stim)
            violation = None
            if c1 != c2:
                violation = Violation(
                    "P2-determinism",
                    f"trial {trial} step {i}: costs {c1} != {c2}",
                )
            elif env1.full_state() != env2.full_state():
                violation = Violation(
                    "P2-determinism",
                    f"trial {trial} step {i}: states diverged",
                )
            report.record("P2-determinism", violation)
            if violation:
                break
    return report


def check_write_label(
    factory: EnvFactory,
    lattice: Lattice,
    trials: int = 20,
    steps: int = 40,
    seed: int = 1,
    report: ContractReport = None,
) -> ContractReport:
    """Property 5: a step leaves every level its write label cannot reach
    unchanged."""
    report = report if report is not None else ContractReport()
    rng = random.Random(seed)
    for trial in range(trials):
        data_pool = _address_pool(rng)
        code_pool = _address_pool(rng)
        env = factory()
        for i in range(steps):
            stim = random_stimulus(rng, lattice, data_pool, code_pool)
            before = {
                level: env.project(level)
                for level in lattice.levels()
                if not stim.write_label.flows_to(level)
            }
            _apply(env, stim)
            violation = None
            for level, snapshot in before.items():
                if env.project(level) != snapshot:
                    violation = Violation(
                        "P5-write-label",
                        f"trial {trial} step {i}: step with lw="
                        f"{stim.write_label} modified level {level} state",
                    )
                    break
            report.record("P5-write-label", violation)
            if violation:
                break
    return report


def _equivalent_pair(
    factory: EnvFactory,
    lattice: Lattice,
    level: Label,
    rng: random.Random,
    data_pool: Sequence[int],
    code_pool: Sequence[int],
    shared_steps: int,
    divergent_steps: int,
):
    """Build a pair of environments that are ``~level``-equivalent but have
    (usually) different state above ``level``.  Returns None when the
    construction failed -- i.e. the hardware broke Property 5 during the
    divergence phase, which a separate checker reports."""
    env1, env2 = factory(), factory()
    for _ in range(shared_steps):
        stim = random_stimulus(rng, lattice, data_pool, code_pool)
        _apply(env1, stim)
        _apply(env2, stim)
    label_pairs = _diverging_labels(lattice, level)
    if label_pairs:
        for _ in range(divergent_steps):
            for env in (env1, env2):
                stim = random_stimulus(
                    rng, lattice, data_pool, code_pool,
                    labels=rng.choice(label_pairs),
                )
                _apply(env, stim)
    if not env1.equivalent_to(env2, level):
        return None
    return env1, env2


def check_read_label(
    factory: EnvFactory,
    lattice: Lattice,
    trials: int = 20,
    seed: int = 2,
    report: ContractReport = None,
) -> ContractReport:
    """Property 6: step cost depends only on state at or below the read
    label (given the same trace)."""
    report = report if report is not None else ContractReport()
    rng = random.Random(seed)
    for trial in range(trials):
        data_pool = _address_pool(rng)
        code_pool = _address_pool(rng)
        for read_label in lattice.levels():
            pair = _equivalent_pair(
                factory, lattice, read_label, rng, data_pool, code_pool,
                shared_steps=15, divergent_steps=15,
            )
            if pair is None:
                continue  # P5 broke; reported by check_write_label
            env1, env2 = pair
            for write_label in lattice.levels():
                probe = random_stimulus(
                    rng, lattice, data_pool, code_pool,
                    labels=(read_label, write_label),
                )
                c1 = _apply(env1.clone(), probe)
                c2 = _apply(env2.clone(), probe)
                violation = None
                if c1 != c2:
                    violation = Violation(
                        "P6-read-label",
                        f"trial {trial}: lr={read_label} lw={write_label}: "
                        f"~{read_label}-equivalent environments charged "
                        f"{c1} != {c2}",
                    )
                report.record("P6-read-label", violation)
    return report


def check_single_step_ni(
    factory: EnvFactory,
    lattice: Lattice,
    trials: int = 20,
    seed: int = 3,
    report: ContractReport = None,
) -> ContractReport:
    """Property 7: for every level l, stepping two ``~l``-equivalent
    environments with the same trace leaves them ``~l``-equivalent."""
    report = report if report is not None else ContractReport()
    rng = random.Random(seed)
    for trial in range(trials):
        data_pool = _address_pool(rng)
        code_pool = _address_pool(rng)
        for level in lattice.levels():
            pair = _equivalent_pair(
                factory, lattice, level, rng, data_pool, code_pool,
                shared_steps=15, divergent_steps=15,
            )
            if pair is None:
                continue
            env1, env2 = pair
            probe = random_stimulus(rng, lattice, data_pool, code_pool)
            _apply(env1, probe)
            _apply(env2, probe)
            violation = None
            if not env1.equivalent_to(env2, level):
                violation = Violation(
                    "P7-single-step-NI",
                    f"trial {trial}: level {level}: equal traces broke "
                    f"~{level} equivalence (probe lr={probe.read_label}, "
                    f"lw={probe.write_label})",
                )
            report.record("P7-single-step-NI", violation)
    return report


def run_contract_suite(
    factory: EnvFactory,
    lattice: Lattice,
    trials: int = 20,
    seed: int = 0,
) -> ContractReport:
    """Run every hardware-side property checker and aggregate the results."""
    report = ContractReport()
    check_determinism(factory, lattice, trials=trials, seed=seed, report=report)
    check_write_label(
        factory, lattice, trials=trials, seed=seed + 1, report=report
    )
    check_read_label(
        factory, lattice, trials=trials, seed=seed + 2, report=report
    )
    check_single_step_ni(
        factory, lattice, trials=trials, seed=seed + 3, report=report
    )
    return report
