"""Adversarial model: a write-back partitioned cache.

**Violates Property 6 (read label).**

The Sec. 4.3 design implicitly assumes write-*through* caches: once a line
is resident, its partition never owes memory anything.  Real caches are
write-back: a store marks the line dirty, and the dirty data must be
written to memory when the line is reclaimed.  This model adds that
mechanic to the partitioned design with an *eager drain* controller: when
a step at timing label ``l`` touches a cache set, the controller writes
back every conflicting dirty line in the partitions ``l`` may install
into (all ``q`` with ``l <= q``), charging a write-back penalty per line
drained.

The leak: a *low* read that maps to a set where the *high* partition
holds dirty lines pays extra write-back cycles.  High-context stores thus
modulate low read latency -- cost depends on state **above** the read
label, breaking Property 6.  (The state changes themselves are legal:
clearing dirty bits at ``q >= l`` is exactly what Property 5 permits for
``lw = l``, which is what makes this bug easy to ship -- the design looks
write-label-disciplined and still leaks through timing.)

Properties 2, 5, and 7 hold: dirty bookkeeping at each level is a
deterministic function of the trace and of state the level may depend on.
Dirty tags at level ``q`` are part of the ``q`` projection -- they are
real per-partition state.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .interface import StepKind
from .params import MachineParams
from .partitioned import PartitionedHardware


class WriteBackHardware(PartitionedHardware):
    """Partitioned caches with dirty lines and eager cross-level drains."""

    #: Cycles to write one dirty line back to memory.
    WRITEBACK_PENALTY = 40

    def __init__(self, lattice: Lattice, params: MachineParams = None):
        super().__init__(lattice, params)
        #: Dirty data blocks per level (block numbers, L1-data granularity).
        self._dirty: Dict[Label, Set[int]] = {
            level: set() for level in lattice.levels()
        }

    # -- block/set arithmetic (L1-data geometry) -----------------------------

    def _block(self, address: int) -> int:
        return address // self.params.l1_data.block_bytes

    def _set_of_block(self, block: int) -> int:
        return block % self.params.l1_data.sets

    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        cost = super().step(kind, trace, read_label, write_label)
        if read_label != write_label:
            # Bypassed steps (lr != lw) never use the cache, so they never
            # reclaim lines and owe no write-backs.
            return cost
        label = read_label
        touched_sets = {
            self._set_of_block(self._block(a))
            for a in (*trace.reads, *trace.writes)
        }
        touched_blocks = {
            self._block(a) for a in (*trace.reads, *trace.writes)
        }
        drained = 0
        if touched_sets:
            for q in self.lattice.levels():
                if not label.flows_to(q):
                    continue
                dirty = self._dirty[q]
                conflicts = [
                    block for block in dirty
                    if self._set_of_block(block) in touched_sets
                    and block not in touched_blocks
                ]
                for block in conflicts:
                    dirty.discard(block)
                drained += len(conflicts)
        for address in trace.writes:
            self._dirty[label].add(self._block(address))
        return cost + drained * self.WRITEBACK_PENALTY

    def project(self, level: Label) -> Hashable:
        return (super().project(level), tuple(sorted(self._dirty[level])))

    def clone(self) -> "WriteBackHardware":
        twin = super().clone()
        twin._dirty = {level: set(s) for level, s in self._dirty.items()}
        return twin
