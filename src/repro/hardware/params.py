"""Machine-environment parameters (Table 1 of the paper).

The paper's evaluation runs on a modified SimpleScalar v3.0e with the cache
and TLB geometry below.  ``MachineParams`` bundles the full configuration;
:func:`paper_machine` reproduces Table 1 exactly.

===================  ======  ======  ==========  =========
Name                 # sets  assoc   block size  latency
===================  ======  ======  ==========  =========
L1 Data Cache        128     4-way   32 byte     1 cycle
L2 Data Cache        1024    4-way   64 byte     6 cycles
L1 Inst. Cache       512     1-way   32 byte     1 cycle
L2 Inst. Cache       1024    4-way   64 byte     6 cycles
Data TLB             16      4-way   4 KB        30 cycles
Instruction TLB      32      4-way   4 KB        30 cycles
===================  ======  ======  ==========  =========

Latencies for caches are *hit* latencies; for TLBs, Table 1's figure is the
miss penalty (a TLB hit is folded into the pipeline).  Main-memory latency is
not in Table 1; we use 100 cycles, a conventional figure for the era's
simulations.  Absolute numbers only scale the results -- the reproduced
effects come from hit/miss *differences*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .branch import BranchPredictorParams


@dataclass(frozen=True)
class CacheParams:
    """Geometry and hit latency of one cache level."""

    sets: int
    ways: int
    block_bytes: int
    latency: int
    name: str = "cache"

    def __post_init__(self) -> None:
        for attr in ("sets", "ways", "block_bytes"):
            value = getattr(self, attr)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{self.name}: {attr} must be a power of two")

    @property
    def capacity_bytes(self) -> int:
        """Total cache capacity in bytes."""
        return self.sets * self.ways * self.block_bytes


@dataclass(frozen=True)
class TlbParams:
    """Geometry and miss penalty of a TLB."""

    sets: int
    ways: int
    page_bytes: int
    miss_penalty: int
    name: str = "tlb"

    def __post_init__(self) -> None:
        for attr in ("sets", "ways", "page_bytes"):
            value = getattr(self, attr)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{self.name}: {attr} must be a power of two")


@dataclass(frozen=True)
class MachineParams:
    """The complete machine-environment configuration."""

    l1_data: CacheParams = field(
        default=CacheParams(128, 4, 32, 1, "L1 Data Cache")
    )
    l2_data: CacheParams = field(
        default=CacheParams(1024, 4, 64, 6, "L2 Data Cache")
    )
    l1_inst: CacheParams = field(
        default=CacheParams(512, 1, 32, 1, "L1 Inst. Cache")
    )
    l2_inst: CacheParams = field(
        default=CacheParams(1024, 4, 64, 6, "L2 Inst. Cache")
    )
    data_tlb: TlbParams = field(default=TlbParams(16, 4, 4096, 30, "Data TLB"))
    inst_tlb: TlbParams = field(
        default=TlbParams(32, 4, 4096, 30, "Instruction TLB")
    )
    #: Latency of a fetch that misses every cache level (main memory).
    memory_latency: int = 100
    #: Optional branch predictor (None = disabled, the Table 1 baseline).
    branch: "BranchPredictorParams" = None
    #: Base execute cost of one command step (ALU + issue), cycles.
    execute_cost: int = 1

    def scaled_down(self, factor: int = 8) -> "MachineParams":
        """A geometrically smaller machine with the same latencies.

        Contract-property tests and hypothesis runs want caches small enough
        that random workloads actually generate evictions; dividing the set
        counts preserves all the interesting behaviour.
        """

        def shrink_cache(c: CacheParams) -> CacheParams:
            """Divide the set count, keeping latency and geometry style."""
            return replace(c, sets=max(1, c.sets // factor))

        def shrink_tlb(t: TlbParams) -> TlbParams:
            """Divide the set count, keeping the miss penalty."""
            return replace(t, sets=max(1, t.sets // factor))

        return replace(
            self,
            l1_data=shrink_cache(self.l1_data),
            l2_data=shrink_cache(self.l2_data),
            l1_inst=shrink_cache(self.l1_inst),
            l2_inst=shrink_cache(self.l2_inst),
            data_tlb=shrink_tlb(self.data_tlb),
            inst_tlb=shrink_tlb(self.inst_tlb),
        )


def paper_machine() -> MachineParams:
    """The Table 1 configuration."""
    return MachineParams()


def tiny_machine() -> MachineParams:
    """A deliberately tiny machine for exhaustive/property testing."""
    return MachineParams(
        l1_data=CacheParams(2, 1, 8, 1, "L1 Data Cache"),
        l2_data=CacheParams(4, 2, 16, 6, "L2 Data Cache"),
        l1_inst=CacheParams(2, 1, 8, 1, "L1 Inst. Cache"),
        l2_inst=CacheParams(4, 2, 16, 6, "L2 Inst. Cache"),
        data_tlb=TlbParams(1, 2, 64, 30, "Data TLB"),
        inst_tlb=TlbParams(1, 2, 64, 30, "Instruction TLB"),
    )
