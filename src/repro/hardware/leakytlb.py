"""Adversarial model: partitioned caches, one shared TLB.

**Violates Property 5 (write label).**

Partitioning the caches is the visible half of the Sec. 4.3 design; this
model "saves area" by leaving the TLBs shared and label-oblivious, the way
commodity cores shared them until Meltdown-era page-table isolation.  Every
access -- at every security level -- probes one global data TLB and one
global instruction TLB, installing and LRU-promoting on behalf of whoever
ran.

The shared TLBs are public state (a coresident adversary can probe them
with its own accesses, so they are filed in the *bottom* projection, like
the whole hierarchy of the ``standard`` model).  A high-labeled step that
walks the page table installs an entry into that public state, modifying
a level its write label cannot reach -- a direct Property 5 violation,
and the mechanism behind TLB side-channel attacks such as TLBleed: the
victim's page working set imprints on translation state the attacker can
time.  With Property 5 gone, the machine-environment noninterference that
Properties 6/7 are meant to compose into (Theorem 1's hardware half) has
nothing to stand on.

Properties 2 holds (everything is deterministic); the per-level cache
partitions themselves remain exactly the secure design.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Hashable

from ..lattice import Label, Lattice
from .params import MachineParams
from .partitioned import PartitionedHardware
from .tlb import Tlb


class LeakyTlbHardware(PartitionedHardware):
    """The Sec. 4.3 cache partitions with commodity shared TLBs."""

    #: Minimum associativity of the shared TLBs.  Sharing "saves area", so
    #: the single TLB is *bigger* than each per-level partition would be --
    #: and a capacious TLB retains the victim's whole page working set,
    #: which is exactly what TLBleed-style probing reads back.
    MIN_WAYS = 8

    def __init__(self, lattice: Lattice, params: MachineParams = None):
        super().__init__(lattice, params)
        self.shared_dtlb = Tlb(
            replace(
                self.params.data_tlb,
                ways=max(self.MIN_WAYS, self.params.data_tlb.ways),
            )
        )
        self.shared_itlb = Tlb(
            replace(
                self.params.inst_tlb,
                ways=max(self.MIN_WAYS, self.params.inst_tlb.ways),
            )
        )

    def _tlb_access(
        self, address: int, label: Label, instruction: bool
    ) -> int:
        """Label-oblivious translation through the one shared TLB."""
        tlb = self.shared_itlb if instruction else self.shared_dtlb
        hit = tlb.lookup(address)
        if self.recorder.active:
            self.recorder.on_cache_access(
                "itlb" if instruction else "dtlb", hit
            )
        # touch() promotes on hit and walk-installs on miss -- in both
        # cases on behalf of *any* label: the Property 5 violation.
        tlb.touch(address)
        return 0 if hit else tlb.params.miss_penalty

    def project(self, level: Label) -> Hashable:
        base = super().project(level)
        if level == self.lattice.bottom:
            # Shared translation state is publicly probeable.
            return (base, self.shared_dtlb.state(), self.shared_itlb.state())
        return base

    def clone(self) -> "LeakyTlbHardware":
        twin = super().clone()
        twin.shared_dtlb = self.shared_dtlb.clone()
        twin.shared_itlb = self.shared_itlb.clone()
        return twin
