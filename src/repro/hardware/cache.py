"""A set-associative cache simulator with true-LRU replacement.

Following Sec. 4.1 of the paper, the model is the *coarse-grained*
abstraction: a cache line is a ``(tag, valid)`` pair -- data-block contents
are not modeled, because on real hardware they do not affect access time.
The paper argues this coarseness is exactly what lets confidential values sit
in a public cache partition without violating single-step noninterference
(Property 7): the environment never contains values, only address tags.

The simulator exposes a deliberately small surface:

* :meth:`Cache.lookup` -- timing-visible presence test, no state change;
* :meth:`Cache.touch` -- record a use (install on miss, LRU-promote on hit);
* :meth:`Cache.evict` -- remove a block (used by the partitioned design's
  single-copy consistency move);
* :meth:`Cache.state` -- a hashable snapshot for projected equivalence.

Keeping *lookup* separate from *touch* is what lets the secure designs serve
"silent hits" (reads that must not perturb replacement state, e.g. a
high-context hit in a low partition, Property 5).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from .params import CacheParams


class Cache:
    """One cache: ``sets`` sets of ``ways`` lines of ``block_bytes`` bytes."""

    def __init__(self, params: CacheParams):
        self.params = params
        # Each set is an OrderedDict from tag to None; order encodes LRU
        # (least-recently-used first).
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(params.sets)
        ]

    # -- address arithmetic ---------------------------------------------------

    def _locate(self, address: int) -> Tuple[int, int]:
        block = address // self.params.block_bytes
        return block % self.params.sets, block // self.params.sets

    # -- operations -------------------------------------------------------------

    def lookup(self, address: int) -> bool:
        """Is the block containing ``address`` present?  No state change."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def touch(self, address: int) -> bool:
        """Use the block: LRU-promote on hit, install (evicting LRU) on miss.

        Returns True on hit.
        """
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        if tag in lines:
            lines.move_to_end(tag)
            return True
        if len(lines) >= self.params.ways:
            lines.popitem(last=False)
        lines[tag] = None
        return False

    def evict(self, address: int) -> bool:
        """Remove the block containing ``address`` if present."""
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        if tag in lines:
            del lines[tag]
            return True
        return False

    def flush(self) -> None:
        """Empty the cache."""
        for lines in self._sets:
            lines.clear()

    def preload(self, addresses) -> None:
        """Touch a sequence of addresses (e.g. to warm the cache)."""
        for address in addresses:
            self.touch(address)

    # -- inspection ----------------------------------------------------------------

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(len(lines) for lines in self._sets)

    def state(self) -> Tuple[Tuple[int, ...], ...]:
        """A hashable snapshot: per set, the resident tags in LRU order.

        This is the environment's contribution to projected equivalence:
        two caches are indistinguishable exactly when their snapshots match.
        LRU order is included because it determines future evictions and is
        therefore timing-relevant state.
        """
        return tuple(tuple(lines.keys()) for lines in self._sets)

    def clone(self) -> "Cache":
        twin = Cache(self.params)
        twin._sets = [OrderedDict(lines) for lines in self._sets]
        return twin

    def __repr__(self) -> str:
        return (
            f"Cache({self.params.name!r}, {self.occupancy()}/"
            f"{self.params.sets * self.params.ways} lines)"
        )
