"""Adversarial model: speculative execution with a shared predictor.

**Violates Property 6 (read label) and Property 7 (single-step NI).**

The partitioned design of Sec. 4.3 gives every level its own branch
predictor.  This model instead ships what commodity cores actually have: a
single front-end with *one* branch predictor shared by every security
level, plus speculative instruction fetch down the predicted path.

Two leaks, mirroring Spectre-style transient-execution channels:

* **Property 6**: a branch step's cost includes a flush penalty when the
  shared predictor mispredicts.  The predictor is trained by *every*
  branch, including high-labeled ones, so the cost of a low branch depends
  on state above the read label (the counters high code trained).

* **Property 7**: on a mispredict, the fetches issued down the wrong path
  during the mispredict window are squashed -- the model evicts the
  wrong-path instruction blocks from the stepping level's own I-cache
  partition.  Whether that eviction happens depends on the shared
  predictor; two environments that are ``~L``-equivalent but differ in
  (high-trained) predictor state end the same low step with *different*
  low partition contents, breaking single-step noninterference.

Properties 2 and 5 hold: everything is deterministic, and the global
predictor table is filed at lattice top (every write label may train it).
"""

from __future__ import annotations

from typing import Dict, Hashable

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .interface import StepKind
from .params import MachineParams
from .partitioned import PartitionedHardware

#: Bytes per instruction slot (mirrors repro.machine.layout.INSTR_BYTES).
_INSTR_BYTES = 8


class SpeculativeHardware(PartitionedHardware):
    """Partitioned caches behind one speculative, shared front-end."""

    #: Pipeline flush cost on a mispredict.
    FLUSH_PENALTY = 12
    #: Instruction blocks fetched (then squashed) in the mispredict window.
    WINDOW = 2

    def __init__(self, lattice: Lattice, params: MachineParams = None):
        super().__init__(lattice, params)
        #: One global 2-bit counter table: branch address -> 0..3.
        #: Initialized weakly-not-taken (1) on first use.
        self._counters: Dict[int, int] = {}

    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        cost = super().step(kind, trace, read_label, write_label)
        if trace.taken is None:
            return cost
        counter = self._counters.get(trace.instruction, 1)
        predicted_taken = counter >= 2
        # Label-oblivious training: every level writes the shared table.
        self._counters[trace.instruction] = (
            min(3, counter + 1) if trace.taken else max(0, counter - 1)
        )
        if predicted_taken == trace.taken:
            return cost
        # Mispredict: flush the pipeline and squash the window of
        # wrong-path fetches from the stepping level's own I-cache.
        cost += self.FLUSH_PENALTY
        if read_label == write_label:
            own = self.partitions[read_label]
            for i in range(1, self.WINDOW + 1):
                own.evict_inst(trace.instruction + i * _INSTR_BYTES)
        return cost

    def project(self, level: Label) -> Hashable:
        base = super().project(level)
        if level == self.lattice.top:
            return (base, tuple(sorted(self._counters.items())))
        return base

    def clone(self) -> "SpeculativeHardware":
        twin = super().clone()
        twin._counters = dict(self._counters)
        return twin
