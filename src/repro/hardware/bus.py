"""Adversarial model: partitioned caches over one *shared* memory bus.

**Violates Property 6 (read label).**

The Sec. 4.3 partitioned design isolates cache and TLB *state* per level,
but a real SoC still funnels every partition's memory traffic through one
bus and one memory controller.  This model adds that bus: every access any
level performs enqueues transactions, and each step stalls for cycles
proportional to the current queue occupancy before it is served.

The leak: the queue occupancy is a function of *global* traffic, including
steps whose labels sit above the reader.  Two environments that agree on
all state at or below ``lr = L`` but differ in recent high-level activity
charge different stall cycles for the same low step -- exactly what
Property 6 forbids ("the duration may depend only on environment state at
or below the read label").  This is the software-visible face of the bus
and bank contention channels that motivate temporal partitioning in
"Can We Prove Time Protection?" (Ge et al., arXiv:1901.08338).

Properties 2, 5, and 7 still hold: the queue evolves deterministically
from the traffic alone, and it never changes which lines any partition
holds.  The bus occupancy is modeled as state at lattice *top* (no level
below top can observe it directly -- only through timing, which is the
point), so projections at lower levels are untouched.
"""

from __future__ import annotations

from typing import Hashable

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .interface import StepKind
from .params import MachineParams
from .partitioned import PartitionedHardware


class SharedBusHardware(PartitionedHardware):
    """Partitioned state, shared bandwidth: cross-level stall cycles."""

    #: Stall cycles charged per queued transaction at step start.
    STALL_CYCLES = 2
    #: Transactions the bus retires per step.
    DRAIN_PER_STEP = 1
    #: Occupancy cap (a real queue is finite); keeps costs bounded.
    QUEUE_CAP = 4096

    def __init__(self, lattice: Lattice, params: MachineParams = None):
        super().__init__(lattice, params)
        self._bus_queue = 0

    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        # Stall behind whatever traffic is already queued -- regardless of
        # who queued it.  This is the Property 6 violation.
        stall = self._bus_queue * self.STALL_CYCLES
        cost = stall + super().step(kind, trace, read_label, write_label)
        traffic = 1 + len(trace.reads) + len(trace.writes)
        self._bus_queue = min(
            self.QUEUE_CAP,
            max(0, self._bus_queue - self.DRAIN_PER_STEP) + traffic,
        )
        return cost

    def project(self, level: Label) -> Hashable:
        base = super().project(level)
        if level == self.lattice.top:
            # The queue is machine-global state; filing it at top keeps
            # Property 5 intact (every write label flows to top).
            return (base, self._bus_queue)
        return base

    def clone(self) -> "SharedBusHardware":
        twin = super().clone()
        twin._bus_queue = self._bus_queue
        return twin
