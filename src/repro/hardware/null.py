"""The null machine environment: a fixed-cost abstract machine.

This is the implicit hardware model of prior language-based work (Sec. 9):
every step takes a constant number of cycles determined only by the kind of
command, so there is *no* machine-environment state at all.  It trivially
satisfies Properties 2 and 5-7, and it is useful as a baseline that isolates
direct timing dependencies (control flow, ``sleep``) from indirect ones
(caches) -- on ``NullHardware`` the Sec. 2.1 data-cache example leaks
nothing, while on :class:`~repro.hardware.standard.StandardHardware` it does.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .interface import MachineEnvironment, StepKind

#: Default per-kind costs, in cycles.  Arbitrary but distinct from zero so
#: that run time still accumulates.
DEFAULT_COSTS: Dict[StepKind, int] = {
    StepKind.SKIP: 1,
    StepKind.ASSIGN: 2,
    StepKind.BRANCH: 2,
    StepKind.MITIGATE: 2,
    StepKind.SLEEP: 0,  # sleep's duration is charged by the semantics itself
    StepKind.INTERNAL: 0,
}


class NullHardware(MachineEnvironment):
    """A stateless machine environment with fixed per-kind step costs."""

    def __init__(
        self, lattice: Lattice, costs: Optional[Dict[StepKind, int]] = None
    ):
        super().__init__(lattice)
        self.costs = dict(DEFAULT_COSTS)
        if costs:
            self.costs.update(costs)

    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        # Charge per data access so that expression size is still reflected
        # in time (one cycle per operand touch), but never consult state.
        return self.costs[kind] + len(trace.reads) + len(trace.writes)

    def project(self, level: Label) -> Hashable:
        return ()

    def clone(self) -> "NullHardware":
        return type(self)(self.lattice, self.costs)
