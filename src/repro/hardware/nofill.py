"""The no-fill realization on standard hardware (Sec. 4.2).

Intel Pentium/Xeon processors expose a *no-fill* mode in which memory
accesses are served directly from memory on cache misses, with no evictions
from nor filling of the cache.  The paper's first secure design treats the
whole (single) cache hierarchy as *low* and runs every command whose write
label is not public in no-fill mode; the compiler brackets such blocks with
no-fill enter/exit instructions.  Here the mode switch is driven directly by
the write label each step hands the environment.

Concretely, a step with ``lw = bottom`` behaves like commodity hardware
(fills and promotes); any other write label gets:

* misses served at full memory cost with *no* installation (Property 5:
  nothing at bottom is modified);
* hits served silently -- data is returned at hit latency, but LRU state is
  *not* promoted, since replacement state is timing-visible state too.

Property 6 holds for every read label because all environment state sits at
bottom.  Property 7 holds because public accesses update the cache as a
function of the trace and prior public state only.  The price is
performance: high contexts never benefit from warming the cache, which is
why the partitioned design (Sec. 4.3) exists.
"""

from __future__ import annotations

from typing import Hashable

from ..lattice import Label, Lattice
from ..machine.layout import AccessTrace
from .hierarchy import Hierarchy
from .interface import MachineEnvironment, StepKind
from .params import MachineParams, paper_machine


class NoFillHardware(MachineEnvironment):
    """A single low hierarchy; non-public write labels run in no-fill mode."""

    def __init__(self, lattice: Lattice, params: MachineParams = None):
        super().__init__(lattice)
        self.params = params if params is not None else paper_machine()
        self.hierarchy = Hierarchy(self.params)

    def attach_recorder(self, recorder) -> None:
        """Propagate the telemetry recorder into the single hierarchy."""
        super().attach_recorder(recorder)
        self.hierarchy.recorder = recorder

    def step(
        self,
        kind: StepKind,
        trace: AccessTrace,
        read_label: Label,
        write_label: Label,
    ) -> int:
        fill = write_label == self.lattice.bottom
        cost = self.params.execute_cost
        cost += self.hierarchy.inst_fetch(
            trace.instruction, fill=fill, promote=fill
        )
        if trace.taken is not None:
            # Branches in non-public contexts may read the (public)
            # predictor but must not train it -- the branch-predictor
            # analogue of no-fill mode.
            cost += self.hierarchy.branch_cost(
                trace.instruction, trace.taken, train=fill
            )
        for address in trace.reads:
            cost += self.hierarchy.data_access(address, fill=fill, promote=fill)
        for address in trace.writes:
            cost += self.hierarchy.data_access(address, fill=fill, promote=fill)
        return cost

    def project(self, level: Label) -> Hashable:
        if level == self.lattice.bottom:
            return self.hierarchy.state()
        return ()

    def clone(self) -> "NoFillHardware":
        twin = type(self)(self.lattice, self.params)
        twin.hierarchy = self.hierarchy.clone()
        return twin
