"""repro: a reproduction of "Language-Based Control and Mitigation of Timing
Channels" (Zhang, Askarov, Myers; PLDI 2012).

The package implements the paper's language with read/write timing labels,
its security type system with quantitative leakage guarantees, predictive
mitigation of timing channels, the software/hardware contract (Properties
1-7) as executable checkers, and simulated hardware designs -- including the
statically partitioned cache/TLB of Sec. 4.3 -- together with the paper's
two case studies (web login, multi-block RSA decryption).

Entry points:

* :func:`repro.api.compile_program` -- parse/infer/typecheck, then run;
* :mod:`repro.lattice` -- security lattices;
* :mod:`repro.lang` -- AST, parser, builder DSL;
* :mod:`repro.semantics` -- core and full semantics, predictive mitigation;
* :mod:`repro.hardware` -- machine environments and contract checkers;
* :mod:`repro.typesystem` -- the Fig. 4 checker and label inference;
* :mod:`repro.quantitative` -- Definitions 1-2, Theorem 2, Sec. 7 bounds;
* :mod:`repro.telemetry` -- runtime telemetry and dynamic leakage accounting;
* :mod:`repro.apps` -- the Sec. 8 case studies;
* :mod:`repro.attacks` -- the timing adversaries the paper defends against.
"""

from importlib import metadata as _metadata

from . import api, telemetry
from .api import CompiledProgram, compile_program
from .lattice import Label, Lattice, chain, diamond, powerset, two_point
from .machine.memory import Memory

try:
    # Single source of truth: the packaging metadata (pyproject.toml).
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # pragma: no cover - source tree
    __version__ = "0.0.0"

__all__ = [
    "CompiledProgram",
    "Label",
    "Lattice",
    "Memory",
    "api",
    "chain",
    "compile_program",
    "diamond",
    "powerset",
    "telemetry",
    "two_point",
    "__version__",
]
