"""One-stop public API.

The typical pipeline is *parse (or build) -> infer labels -> typecheck ->
execute on a hardware model -> measure*.  :func:`compile_program` performs
the static half and returns a :class:`CompiledProgram` whose :meth:`run`
performs the dynamic half::

    from repro import api
    from repro.lattice import two_point

    lat = two_point()
    compiled = api.compile_program(
        '''
        if h then { x := 1 } else { x := 2 };
        sleep(5)
        ''',
        gamma={"h": "H", "x": "H"},
        lattice=lat,
    )
    result = compiled.run({"h": 1, "x": 0}, hardware="partitioned")
    print(result.time, result.events)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from .hardware import MachineEnvironment, MachineParams, make_hardware
from .lang import ast
from .lang.parser import parse
from .lattice import Label, Lattice, two_point
from .machine.layout import Layout
from .machine.memory import Memory, ValueSpec
from .semantics.full import ExecutionResult, execute
from .semantics.mitigation import MitigationState
from .telemetry.profiling import Profiler
from .telemetry.recorder import TraceRecorder
from .typesystem.environment import SecurityEnvironment
from .typesystem.inference import infer_labels
from .typesystem.typing import TypingInfo, typecheck

Source = Union[str, ast.Command]
GammaSpec = Union[SecurityEnvironment, Mapping[str, Union[str, Label]]]


def _resolve_gamma(
    gamma: GammaSpec, lattice: Lattice
) -> SecurityEnvironment:
    if isinstance(gamma, SecurityEnvironment):
        return gamma
    bindings = {}
    for name, label in gamma.items():
        bindings[name] = lattice[label] if isinstance(label, str) else label
    return SecurityEnvironment(lattice, bindings)


@dataclass
class CompiledProgram:
    """A parsed, label-complete, typechecked program."""

    program: ast.Command
    gamma: SecurityEnvironment
    lattice: Lattice
    typing: TypingInfo

    def run(
        self,
        memory: Union[Memory, Mapping[str, ValueSpec]],
        hardware: Union[str, MachineEnvironment] = "partitioned",
        params: Optional[MachineParams] = None,
        mitigation: Optional[MitigationState] = None,
        layout: Optional[Layout] = None,
        max_steps: int = 10_000_000,
        recorder: Optional[TraceRecorder] = None,
        profiler: Optional[Profiler] = None,
    ) -> ExecutionResult:
        """Execute under the full semantics.

        ``memory`` may be a mapping (scalars to ints, arrays to sequences);
        ``hardware`` a model name (``null``, ``nopar``/``standard``,
        ``nofill``, ``partitioned``) or a ready environment instance, which
        is used as-is (and mutated).  ``recorder`` attaches runtime
        telemetry (see :mod:`repro.telemetry`); omitted, the zero-overhead
        null recorder is used.  ``profiler`` attributes cycles and
        wall-time to subsystems (see :mod:`repro.telemetry.profiling`).
        """
        if not isinstance(memory, Memory):
            memory = Memory(memory)
        if isinstance(hardware, str):
            hardware = make_hardware(hardware, self.lattice, params)
        return execute(
            self.program,
            memory,
            hardware,
            layout=layout,
            mitigation=mitigation,
            mitigate_pc=self.typing.mitigate_pc,
            max_steps=max_steps,
            recorder=recorder,
            profiler=profiler,
        )


def compile_program(
    source: Source,
    gamma: GammaSpec,
    lattice: Optional[Lattice] = None,
    infer: bool = True,
    check: bool = True,
    require_cache_labels: bool = False,
    pc: Optional[Label] = None,
) -> CompiledProgram:
    """Parse (if needed), infer missing labels, and typecheck.

    Raises :class:`~repro.lang.parser.ParseError` or
    :class:`~repro.typesystem.errors.TypingError` on failure.  Pass
    ``check=False`` to skip the type check -- needed to *run* the paper's
    deliberately insecure baselines, which are ill-typed by design.
    """
    if lattice is None:
        from .lang.parser import DEFAULT_LATTICE

        lattice = DEFAULT_LATTICE
    env = _resolve_gamma(gamma, lattice)
    program = parse(source, lattice) if isinstance(source, str) else source
    if infer:
        program = infer_labels(program, env, pc=pc)
    if check:
        info = typecheck(
            program, env, pc=pc, require_cache_labels=require_cache_labels
        )
    else:
        info = TypingInfo(end_label=lattice.bottom)
    return CompiledProgram(
        program=program, gamma=env, lattice=lattice, typing=info
    )
