"""Metric aggregation: counters, gauges, histograms, and JSON export.

A :class:`MetricsRegistry` is the sink behind
:class:`~repro.telemetry.recorder.RecordingTraceRecorder`.  It keeps four
kinds of series, all keyed by dotted metric names:

* **counters** -- monotone totals (``steps.total``, ``cycles.padding``,
  ``hw.l1d.hits``);
* **gauges** -- last-written values (``miss.H``: the current ``Miss[H]``);
* **histograms** -- value -> occurrence-count maps (``hist.mitigation.duration``);
* **series** -- append-only value lists for order-sensitive checks
  (``miss_trace.H``: every value ``Miss[H]`` ever took, in order).

:meth:`MetricsRegistry.as_dict` flattens everything into the JSON document
described in ``docs/TELEMETRY.md`` (schema ``repro.telemetry/1``), with a
derived ``timing`` section (machine/sleep/padding split, padding overhead
ratio) so benchmark reports can embed it directly; ``benchmarks/_report.py``
provides :func:`~benchmarks._report.write_metrics` to drop the document next
to the text reports in ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

SCHEMA = "repro.telemetry/1"


class MetricsRegistry:
    """Counter/gauge/histogram/series store with JSON export."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, int] = {}
        self.histograms: Dict[str, Dict[int, int]] = {}
        self.series: Dict[str, List[int]] = {}

    # -- writing --------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: int) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        """Record one occurrence of ``value`` in histogram ``name``."""
        hist = self.histograms.setdefault(name, {})
        hist[value] = hist.get(value, 0) + 1

    def append_series(self, name: str, value: int) -> None:
        """Append ``value`` to the ordered series ``name``."""
        self.series.setdefault(name, []).append(value)

    # -- reading --------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Counter value (0 when never incremented)."""
        return self.counters.get(name, 0)

    def gauge(self, name: str, default: int = 0) -> int:
        """Latest gauge value."""
        return self.gauges.get(name, default)

    def prefixed(self, prefix: str) -> Dict[str, int]:
        """All counters under ``prefix.`` with the prefix stripped."""
        cut = len(prefix) + 1
        return {
            name[cut:]: value
            for name, value in self.counters.items()
            if name.startswith(prefix + ".")
        }

    def miss_counters(self) -> Dict[str, int]:
        """Final per-level mitigation ``Miss`` values, by level name."""
        return {
            name[len("miss."):]: value
            for name, value in self.gauges.items()
            if name.startswith("miss.")
        }

    def site_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Per-mitigate-site totals, keyed by mitigate id: completions,
        total (padded) cycles, and pure padding cycles -- the data behind
        ``repro report``'s padding breakdown."""
        sites: Dict[str, Dict[str, int]] = {}
        for name, value in self.counters.items():
            if name.startswith("site."):
                _, mit_id, what = name.split(".", 2)
                sites.setdefault(mit_id, {})[what] = value
        return sites

    def attack_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-attack sample counts and distinguisher statistics, from the
        ``attack.<name>.*`` counters and gauges."""
        attacks: Dict[str, Dict[str, Any]] = {}
        for name, value in self.counters.items():
            if name.startswith("attack.") and name.endswith(".samples"):
                attack = name[len("attack."):-len(".samples")]
                attacks.setdefault(attack, {"stats": {}})["samples"] = value
        for name, value in self.gauges.items():
            if name.startswith("attack."):
                attack, stat = name[len("attack."):].split(".", 1)
                attacks.setdefault(
                    attack, {"stats": {}}
                )["stats"][stat] = value
        return attacks

    def machine_cycles(self) -> int:
        """Cycles charged by the hardware (no sleep, no padding)."""
        return self.counter("cycles.machine")

    def padding_cycles(self) -> int:
        """Total pure-padding cycles across all completed mitigations."""
        return self.counter("cycles.padding")

    def final_cycles(self) -> int:
        """Sum of final clocks across recorded runs."""
        return self.counter("cycles.final")

    def padding_overhead_ratio(self) -> float:
        """Padding as a fraction of the final clock (0.0 when clock is 0)."""
        final = self.final_cycles()
        return self.padding_cycles() / final if final else 0.0

    # -- export ---------------------------------------------------------------

    def as_dict(self, leakage: Optional[Dict[str, Any]] = None,
                profile: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The JSON document (see ``docs/TELEMETRY.md`` for the schema).

        ``leakage`` is an optional pre-built section from a
        :class:`~repro.telemetry.leakage.DynamicLeakageMeter`;
        ``profile`` one from :meth:`~repro.telemetry.profiling.Profiler.as_dict`.
        """
        doc: Dict[str, Any] = {
            "schema": SCHEMA,
            "runs": self.counter("runs"),
            "counters": dict(sorted(self.counters.items())),
            "timing": {
                "machine_cycles": self.machine_cycles(),
                "sleep_cycles": self.counter("cycles.sleep"),
                "padding_cycles": self.padding_cycles(),
                "final_cycles": self.final_cycles(),
                "padding_overhead_ratio": self.padding_overhead_ratio(),
            },
            "mitigation": {
                "completions": self.counter("mitigation.completions"),
                "miss_updates": self.counter("mitigation.miss_updates"),
                "miss_per_level": self.miss_counters(),
            },
            "hardware": {
                "cache": {
                    comp: {
                        "hits": self.counter(f"hw.{comp}.hits"),
                        "misses": self.counter(f"hw.{comp}.misses"),
                    }
                    for comp in ("l1d", "l2d", "l1i", "l2i", "dtlb", "itlb")
                    if self.counter(f"hw.{comp}.hits")
                    or self.counter(f"hw.{comp}.misses")
                },
                "branch": {
                    "hits": self.counter("hw.branch.hits"),
                    "mispredictions": self.counter("hw.branch.mispredictions"),
                },
                "bypass_steps": self.counter("hw.bypass.steps"),
            },
            "histograms": {
                name: {str(k): v for k, v in sorted(hist.items())}
                for name, hist in sorted(self.histograms.items())
            },
            "series": {
                name: list(values)
                for name, values in sorted(self.series.items())
            },
        }
        sites = self.site_breakdown()
        if sites:
            doc["sites"] = {k: sites[k] for k in sorted(sites)}
        attacks = self.attack_summary()
        if attacks:
            doc["attacks"] = {k: attacks[k] for k in sorted(attacks)}
        if leakage is not None:
            doc["leakage"] = leakage
        if profile is not None:
            doc["profile"] = profile
        return doc

    def to_json(self, leakage: Optional[Dict[str, Any]] = None,
                profile: Optional[Dict[str, Any]] = None,
                indent: int = 2) -> str:
        """:meth:`as_dict` serialized as a JSON string."""
        return json.dumps(self.as_dict(leakage=leakage, profile=profile),
                          indent=indent)

    def write(self, path: str,
              leakage: Optional[Dict[str, Any]] = None,
              profile: Optional[Dict[str, Any]] = None) -> None:
        """Write the JSON document to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json(leakage=leakage, profile=profile)
                         + "\n")

    # -- display ---------------------------------------------------------------

    def summary_lines(self) -> List[str]:
        """Human-readable lines for ``repro run --trace``."""
        lines = [
            f"steps: {self.counter('steps.total')}  "
            f"(machine {self.machine_cycles()} cycles, "
            f"sleep {self.counter('cycles.sleep')}, "
            f"padding {self.padding_cycles()}; "
            f"overhead ratio {self.padding_overhead_ratio():.3f})",
        ]
        if self.counter("mitigation.completions"):
            misses = self.miss_counters()
            shown = ", ".join(f"{k}={v}" for k, v in sorted(misses.items()))
            lines.append(
                f"mitigation: {self.counter('mitigation.completions')} "
                f"completions, Miss {{{shown}}}"
            )
        cache = self.prefixed("hw")
        if any(k.endswith("hits") or k.endswith("misses") for k in cache):
            parts = []
            for comp in ("l1d", "l2d", "l1i", "l2i", "dtlb", "itlb"):
                hits = self.counter(f"hw.{comp}.hits")
                miss = self.counter(f"hw.{comp}.misses")
                if hits or miss:
                    parts.append(f"{comp} {hits}/{miss}")
            if parts:
                lines.append("cache hits/misses: " + "  ".join(parts))
        branch_events = (self.counter("hw.branch.hits")
                         + self.counter("hw.branch.mispredictions"))
        if branch_events:
            lines.append(
                f"branch: {self.counter('hw.branch.hits')} predicted, "
                f"{self.counter('hw.branch.mispredictions')} mispredicted"
            )
        if self.counter("hw.bypass.steps"):
            lines.append(
                f"bypassed steps (lr != lw): {self.counter('hw.bypass.steps')}"
            )
        return lines
