"""Runtime telemetry and leakage accounting.

Three pieces, designed to make the software/hardware timing contract
*observable* at run time (see ``docs/TELEMETRY.md``):

* :class:`~repro.telemetry.recorder.TraceRecorder` -- the passive
  observation protocol threaded through the interpreter
  (:mod:`repro.semantics.full`), the mitigation runtime
  (:mod:`repro.semantics.mitigation`), and every hardware model behind the
  :mod:`repro.hardware.interface` seam.  :data:`NULL_RECORDER` is the
  zero-overhead default; :class:`RecordingTraceRecorder` actually records.
* :class:`~repro.telemetry.metrics.MetricsRegistry` -- counters, gauges,
  histograms, and ordered series with a stable JSON export
  (schema ``repro.telemetry/1``).
* :class:`~repro.telemetry.leakage.DynamicLeakageMeter` -- live Theorem 2
  accounting: counts distinct observed mitigation-deadline sequences and
  checks them against the static Sec. 7 bound.

On top of the raw stream sit the execution timelines
(:mod:`repro.telemetry.spans`: hierarchical spans plus the streaming
:class:`EventJournal`), the Perfetto-loadable Chrome trace-event export
(:mod:`repro.telemetry.export`), and the ``repro report`` audit renderer
(:mod:`repro.telemetry.report`).
"""

from .export import chrome_trace, write_chrome_trace
from .leakage import (
    DynamicLeakageMeter,
    LeakageBoundViolation,
)
from .metrics import SCHEMA, MetricsRegistry
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    RecordingTraceRecorder,
    TeeRecorder,
    TraceRecorder,
)
from .report import ReportError, load_document, render_report
from .spans import (
    EventJournal,
    Span,
    SpanRecorder,
    load_journal,
    spans_from_journal,
)

__all__ = [
    "DynamicLeakageMeter",
    "EventJournal",
    "LeakageBoundViolation",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "RecordingTraceRecorder",
    "ReportError",
    "SCHEMA",
    "Span",
    "SpanRecorder",
    "TeeRecorder",
    "TraceRecorder",
    "chrome_trace",
    "load_document",
    "load_journal",
    "render_report",
    "spans_from_journal",
    "write_chrome_trace",
]
