"""Runtime telemetry and leakage accounting.

Three pieces, designed to make the software/hardware timing contract
*observable* at run time (see ``docs/TELEMETRY.md``):

* :class:`~repro.telemetry.recorder.TraceRecorder` -- the passive
  observation protocol threaded through the interpreter
  (:mod:`repro.semantics.full`), the mitigation runtime
  (:mod:`repro.semantics.mitigation`), and every hardware model behind the
  :mod:`repro.hardware.interface` seam.  :data:`NULL_RECORDER` is the
  zero-overhead default; :class:`RecordingTraceRecorder` actually records.
* :class:`~repro.telemetry.metrics.MetricsRegistry` -- counters, gauges,
  histograms, and ordered series with a stable JSON export
  (schema ``repro.telemetry/1``).
* :class:`~repro.telemetry.leakage.DynamicLeakageMeter` -- live Theorem 2
  accounting: counts distinct observed mitigation-deadline sequences and
  checks them against the static Sec. 7 bound.
"""

from .leakage import (
    DynamicLeakageMeter,
    LeakageBoundViolation,
)
from .metrics import SCHEMA, MetricsRegistry
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    RecordingTraceRecorder,
    TraceRecorder,
)

__all__ = [
    "DynamicLeakageMeter",
    "LeakageBoundViolation",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "RecordingTraceRecorder",
    "SCHEMA",
    "TraceRecorder",
]
