"""Runtime telemetry and leakage accounting.

Three pieces, designed to make the software/hardware timing contract
*observable* at run time (see ``docs/TELEMETRY.md``):

* :class:`~repro.telemetry.recorder.TraceRecorder` -- the passive
  observation protocol threaded through the interpreter
  (:mod:`repro.semantics.full`), the mitigation runtime
  (:mod:`repro.semantics.mitigation`), and every hardware model behind the
  :mod:`repro.hardware.interface` seam.  :data:`NULL_RECORDER` is the
  zero-overhead default; :class:`RecordingTraceRecorder` actually records.
* :class:`~repro.telemetry.metrics.MetricsRegistry` -- counters, gauges,
  histograms, and ordered series with a stable JSON export
  (schema ``repro.telemetry/1``).
* :class:`~repro.telemetry.leakage.DynamicLeakageMeter` -- live Theorem 2
  accounting: counts distinct observed mitigation-deadline sequences and
  checks them against the static Sec. 7 bound.

On top of the raw stream sit the execution timelines
(:mod:`repro.telemetry.spans`: hierarchical spans plus the streaming
:class:`EventJournal`), the Perfetto-loadable Chrome trace-event export
(:mod:`repro.telemetry.export`), and the ``repro report`` audit renderer
(:mod:`repro.telemetry.report`).

The performance half lives in :mod:`repro.telemetry.profiling` (the
zero-overhead-when-off :class:`Profiler` attributing simulated cycles and
wall-time to subsystems, with streaming latency histograms and a
Prometheus text exposition) and :mod:`repro.telemetry.bench` (the
``BENCH_*.json`` perf-trajectory harness behind ``repro bench``; kept out
of this package namespace because it imports the apps/service layers).
"""

from .export import chrome_trace, write_chrome_trace
from .leakage import (
    DynamicLeakageMeter,
    LeakageBoundViolation,
)
from .metrics import SCHEMA, MetricsRegistry
from .profiling import (
    NULL_PROFILER,
    PROFILE_SCHEMA,
    NullProfiler,
    Profiler,
    StreamingHistogram,
    prometheus_exposition,
)
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    RecordingTraceRecorder,
    TeeRecorder,
    TraceRecorder,
)
from .report import ReportError, load_document, render_report
from .spans import (
    EventJournal,
    Span,
    SpanRecorder,
    load_journal,
    spans_from_journal,
)

__all__ = [
    "DynamicLeakageMeter",
    "EventJournal",
    "LeakageBoundViolation",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_RECORDER",
    "NullProfiler",
    "NullRecorder",
    "PROFILE_SCHEMA",
    "Profiler",
    "RecordingTraceRecorder",
    "ReportError",
    "SCHEMA",
    "Span",
    "SpanRecorder",
    "StreamingHistogram",
    "TeeRecorder",
    "TraceRecorder",
    "chrome_trace",
    "load_document",
    "load_journal",
    "prometheus_exposition",
    "render_report",
    "spans_from_journal",
    "write_chrome_trace",
]
