"""The trace-recorder seam: runtime telemetry without semantic interference.

A :class:`TraceRecorder` observes one execution from the inside: every
charged step, every ``sleep``, every per-level ``Miss`` transition of the
mitigation runtime, every cache/TLB/branch hit-miss the hardware resolves,
and every completed ``mitigate`` block with its padding.  Recorders are
strictly passive -- the interpreter, the mitigation runtime, and the
hardware models consult :attr:`TraceRecorder.active` before doing *any*
recording work, so the default :class:`NullRecorder` adds zero overhead and
recording can never perturb costs, state, or events (the regression tests in
``tests/test_telemetry.py`` enforce both).

The hooks mirror the layers of the full semantics:

* :meth:`on_run_start` / :meth:`on_step` / :meth:`on_sleep` -- the
  interpreter starts and its clock advances;
* :meth:`on_mitigate_enter` / :meth:`on_miss_update` /
  :meth:`on_mitigation` -- the Fig. 6 runtime (epoch boundaries,
  ``Miss[l]`` increments, prediction settling, padding);
* :meth:`on_cache_access` / :meth:`on_branch` / :meth:`on_bypass` -- the
  machine environment behind the :mod:`repro.hardware.interface` seam;
* :meth:`on_attack_sample` / :meth:`on_attack_stat` -- the adversaries in
  :mod:`repro.attacks` observing timing and computing distinguishers;
* :meth:`on_finish` -- the run completed with a final
  :class:`~repro.semantics.full.ExecutionResult`.

:class:`RecordingTraceRecorder` is the concrete aggregating implementation
(it feeds a :class:`~repro.telemetry.metrics.MetricsRegistry` and
optionally a :class:`~repro.telemetry.leakage.DynamicLeakageMeter`);
:class:`~repro.telemetry.spans.SpanRecorder` assembles timelines; and
:class:`TeeRecorder` fans one execution out to several recorders.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, TYPE_CHECKING

from ..lattice import Label

if TYPE_CHECKING:  # pragma: no cover
    from .leakage import DynamicLeakageMeter
    from .metrics import MetricsRegistry


class TraceRecorder:
    """Base recorder: every hook is a no-op and :attr:`active` is False.

    Instrumented code must guard each hook call with ``recorder.active`` so
    the inactive path does no classification work at all (hit/miss
    pre-checks, label lookups, and so on are skipped entirely).
    """

    #: Instrumentation sites skip all recording work when this is False.
    active: bool = False

    # -- interpreter-level hooks --------------------------------------------

    def on_run_start(self, attrs: Mapping[str, Any]) -> None:
        """A new execution is starting at global clock 0; ``attrs``
        describes the run configuration (hardware model, mitigation
        scheme/policy).  Span boundary for the run timeline."""

    def on_step(self, kind, cost: int, time: int) -> None:
        """One charged evaluation step of ``kind`` costing ``cost`` cycles;
        ``time`` is the global clock *after* the charge."""

    def on_sleep(self, duration: int, time: int) -> None:
        """A ``sleep`` advanced the clock by exactly ``duration`` cycles."""

    def on_finish(self, result) -> None:
        """The run completed with ``result`` (an ``ExecutionResult``)."""

    # -- mitigation-runtime hooks -------------------------------------------

    def on_mitigate_enter(self, mit_id: str, level: Label, estimate: int,
                          prediction: int, time: int) -> None:
        """A ``mitigate`` block opened at global clock ``time`` with the
        evaluated ``estimate`` and the runtime's current ``prediction``
        for it.  Span boundary for the epoch timeline."""

    def on_miss_update(self, level: Optional[Label], misses: int) -> None:
        """``Miss[level]`` stepped to ``misses`` (S-UPDATE).  ``level`` is
        None under the global penalty policy (one shared counter)."""

    def on_mitigation(
        self,
        mit_id: str,
        level: Label,
        estimate: int,
        elapsed: int,
        padded: int,
        misses: int,
        pc_label: Optional[Label],
        end_time: int,
    ) -> None:
        """A ``mitigate`` block completed: its body took ``elapsed`` cycles
        and was padded to ``padded`` (``padded - elapsed`` pure padding);
        ``misses`` is ``Miss[level]`` after settling."""

    # -- hardware hooks ------------------------------------------------------

    def on_cache_access(self, component: str, hit: bool) -> None:
        """One lookup in ``component`` (``l1d``, ``l2d``, ``l1i``, ``l2i``,
        ``dtlb``, ``itlb``) resolved as a hit or a miss."""

    def on_branch(self, taken: bool, mispredicted: bool) -> None:
        """A branch resolved against the predictor."""

    def on_bypass(self, accesses: int) -> None:
        """A step bypassed the cache (the partitioned design's
        ``lr != lw`` worst-case path) with ``accesses`` data accesses."""

    # -- adversary hooks -----------------------------------------------------

    def on_attack_sample(self, attack: str, probe: str, time: int) -> None:
        """An adversary (:mod:`repro.attacks`) observed one timing sample
        ``time`` for probe ``probe`` (e.g. ``pos2.sym7`` for a password
        guess, a block address for a cache probe)."""

    def on_attack_stat(self, attack: str, stat: str, value) -> None:
        """An attack computed one distinguisher statistic (threshold
        accuracy, fitted slope/correlation, candidates remaining, ...)."""


class NullRecorder(TraceRecorder):
    """The zero-overhead default recorder (all hooks inherited no-ops)."""


#: Shared default instance; identity-safe to use across executions since a
#: null recorder holds no state.
NULL_RECORDER = NullRecorder()


class RecordingTraceRecorder(TraceRecorder):
    """A recorder that aggregates into a metrics registry and, optionally,
    a dynamic leakage meter.

    Parameters
    ----------
    registry:
        The :class:`~repro.telemetry.metrics.MetricsRegistry` to fill; a
        fresh one is created when omitted.
    meter:
        An optional :class:`~repro.telemetry.leakage.DynamicLeakageMeter`;
        completed mitigations are fed to it and each :meth:`on_finish`
        closes one observed deadline sequence.
    """

    active = True

    def __init__(
        self,
        registry: Optional["MetricsRegistry"] = None,
        meter: Optional["DynamicLeakageMeter"] = None,
    ):
        if registry is None:
            from .metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        self.meter = meter

    # -- interpreter-level hooks --------------------------------------------

    def on_step(self, kind, cost: int, time: int) -> None:
        reg = self.registry
        reg.inc("steps.total")
        reg.inc(f"steps.{kind.value}")
        reg.inc("cycles.machine", cost)

    def on_sleep(self, duration: int, time: int) -> None:
        reg = self.registry
        reg.inc("steps.total")
        reg.inc("steps.sleep")
        reg.inc("cycles.sleep", duration)

    def on_finish(self, result) -> None:
        reg = self.registry
        reg.inc("runs")
        reg.inc("cycles.final", result.time)
        if self.meter is not None:
            self.meter.end_run(result.time)

    # -- mitigation-runtime hooks -------------------------------------------

    def on_miss_update(self, level: Optional[Label], misses: int) -> None:
        reg = self.registry
        key = level.name if level is not None else "global"
        reg.inc("mitigation.miss_updates")
        reg.set_gauge(f"miss.{key}", misses)
        reg.append_series(f"miss_trace.{key}", misses)

    def on_mitigate_enter(self, mit_id: str, level: Label, estimate: int,
                          prediction: int, time: int) -> None:
        self.registry.inc("mitigation.entries")

    def on_mitigation(
        self,
        mit_id: str,
        level: Label,
        estimate: int,
        elapsed: int,
        padded: int,
        misses: int,
        pc_label: Optional[Label],
        end_time: int,
    ) -> None:
        reg = self.registry
        padding = padded - elapsed
        reg.inc("mitigation.completions")
        reg.inc("cycles.padding", padding)
        reg.observe("hist.mitigation.duration", padded)
        reg.observe("hist.mitigation.padding", padding)
        # Per-site breakdown for `repro report`.
        reg.inc(f"site.{mit_id}.completions")
        reg.inc(f"site.{mit_id}.cycles", padded)
        reg.inc(f"site.{mit_id}.padding", padding)
        if self.meter is not None:
            self.meter.observe(
                mit_id, level, estimate, padded, pc_label
            )

    # -- hardware hooks ------------------------------------------------------

    def on_cache_access(self, component: str, hit: bool) -> None:
        self.registry.inc(
            f"hw.{component}.{'hits' if hit else 'misses'}"
        )

    def on_branch(self, taken: bool, mispredicted: bool) -> None:
        self.registry.inc(
            "hw.branch.mispredictions" if mispredicted else "hw.branch.hits"
        )

    def on_bypass(self, accesses: int) -> None:
        self.registry.inc("hw.bypass.steps")
        self.registry.inc("hw.bypass.accesses", accesses)

    # -- adversary hooks ------------------------------------------------------

    def on_attack_sample(self, attack: str, probe: str, time: int) -> None:
        reg = self.registry
        reg.inc(f"attack.{attack}.samples")
        reg.append_series(f"attack_times.{attack}", time)

    def on_attack_stat(self, attack: str, stat: str, value) -> None:
        self.registry.set_gauge(f"attack.{attack}.{stat}", value)


class TeeRecorder(TraceRecorder):
    """Fans every hook out to several recorders, so one execution can feed
    a metrics registry and a span assembler at the same time.  ``None``
    children are dropped for call-site convenience."""

    active = True

    def __init__(self, *recorders: Optional[TraceRecorder]):
        self.recorders = tuple(r for r in recorders if r is not None)

    def on_run_start(self, attrs: Mapping[str, Any]) -> None:
        for r in self.recorders:
            r.on_run_start(attrs)

    def on_step(self, kind, cost: int, time: int) -> None:
        for r in self.recorders:
            r.on_step(kind, cost, time)

    def on_sleep(self, duration: int, time: int) -> None:
        for r in self.recorders:
            r.on_sleep(duration, time)

    def on_finish(self, result) -> None:
        for r in self.recorders:
            r.on_finish(result)

    def on_mitigate_enter(self, mit_id: str, level: Label, estimate: int,
                          prediction: int, time: int) -> None:
        for r in self.recorders:
            r.on_mitigate_enter(mit_id, level, estimate, prediction, time)

    def on_miss_update(self, level: Optional[Label], misses: int) -> None:
        for r in self.recorders:
            r.on_miss_update(level, misses)

    def on_mitigation(self, mit_id, level, estimate, elapsed, padded,
                      misses, pc_label, end_time) -> None:
        for r in self.recorders:
            r.on_mitigation(mit_id, level, estimate, elapsed, padded,
                            misses, pc_label, end_time)

    def on_cache_access(self, component: str, hit: bool) -> None:
        for r in self.recorders:
            r.on_cache_access(component, hit)

    def on_branch(self, taken: bool, mispredicted: bool) -> None:
        for r in self.recorders:
            r.on_branch(taken, mispredicted)

    def on_bypass(self, accesses: int) -> None:
        for r in self.recorders:
            r.on_bypass(accesses)

    def on_attack_sample(self, attack: str, probe: str, time: int) -> None:
        for r in self.recorders:
            r.on_attack_sample(attack, probe, time)

    def on_attack_stat(self, attack: str, stat: str, value) -> None:
        for r in self.recorders:
            r.on_attack_stat(attack, stat, value)
