"""The perf-trajectory harness: ``BENCH_*.json`` producers + compare gate.

Every future scaling PR (register-VM, vectorized hardware, sharded
gateway) needs a number to move and a gate that notices when it moves
the wrong way.  This module measures **cycles simulated per
wall-second** for the subsystems the ROADMAP names -- representative
programs (password, sbox, rsa; mitigated and unmitigated), every
registered hardware model's access path, the profiled subsystem
attribution, and the gateway event loop -- and writes the results as a
``repro.bench/1`` document:

.. code-block:: json

    {"schema": "repro.bench/1",
     "kind": "core",
     "config": {"repeats": 3, "...": "..."},
     "entries": {"program/password/mitigated":
                     {"cycles": 1730, "wall_s": 0.0021,
                      "cycles_per_sec": 823809.5, "runs": 3,
                      "meta": {"hardware": "partitioned"}},
                 "...": {}},
     "overhead": {"overhead_pct": 1.2, "tolerance_pct": 5.0, "ok": true}}

``BENCH_core.json`` at the repo root is the committed baseline;
``repro bench --compare BENCH_core.json`` re-measures and exits 1 when
any entry's rate drops more than ``--tolerance`` (default 20%) below
the baseline -- the CI regression gate.  Timings use the *minimum* over
``repeats`` runs (the standard microbenchmark noise filter: the
simulator is deterministic, so the minimum is the least-interfered
sample).

The module also hosts :class:`SeamlessInterpreter` -- the interpreter
with the profiling seam physically deleted from the per-step hot path --
which :func:`measure_seam_overhead` races against the shipped
interpreter to enforce the "zero overhead when off" claim (<= 5%).
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..apps.password import PasswordChecker
from ..apps.rsa import RsaSystem
from ..apps.rsa_math import encrypt_blocks, generate_keypair
from ..apps.sbox_cipher import SboxCipher
from ..hardware import make_hardware
from ..hardware.registry import REGISTRY
from ..semantics.full import Interpreter, execute
from ..semantics.mitigation import MitigationState
from ..service import WorkloadSpec, audit_service, serve_workload
from .profiling import Profiler, StreamingHistogram

#: Schema tag every BENCH document carries.
SCHEMA = "repro.bench/1"

#: Default relative slowdown tolerated before --compare reports a
#: regression (20%, per-entry, on cycles_per_sec).
DEFAULT_TOLERANCE = 0.20

#: Maximum profiler-off overhead the seam is allowed to cost, vs a build
#: with the seam removed (asserted by benchmarks/bench_core_speed.py).
OVERHEAD_TOLERANCE_PCT = 5.0

# The canonical service sweep (shared with
# benchmarks/bench_service_throughput.py so both producers of
# BENCH_service.json agree on the cell grid).
SERVICE_POLICIES: Tuple[str, ...] = ("fifo", "rr", "quantized")
SERVICE_CLIENT_COUNTS: Tuple[int, ...] = (4, 12)
SERVICE_REQUESTS = 80
SERVICE_QUANTUM = 2048
SERVICE_SEED = 2012
SERVICE_TENANTS: List[Dict[str, object]] = [
    {"name": "acme-login", "app": "login", "weight": 2.0,
     "config": {"table_size": 8}},
    {"name": "bank-passwords", "app": "password", "weight": 2.0,
     "config": {"length": 6}},
    {"name": "cdn-sbox", "app": "sbox", "weight": 1.0,
     "config": {"length": 6}},
]

_NS = 1e9


class BenchError(RuntimeError):
    """Raised on unusable bench documents (bad schema, kind mismatch)."""


def service_spec(policy: str, clients: int,
                 requests: int = SERVICE_REQUESTS,
                 seed: int = SERVICE_SEED) -> WorkloadSpec:
    """One cell of the canonical closed-loop service sweep."""
    return WorkloadSpec.from_dict({
        "seed": seed,
        "requests": requests,
        "policy": policy,
        "quantum": SERVICE_QUANTUM,
        "workers": 2,
        "queue_depth": 8,
        "arrival": {"kind": "closed", "clients": clients, "think": 512},
        "tenants": SERVICE_TENANTS,
    })


# -- document plumbing -------------------------------------------------------


def make_entry(cycles: int, wall_s: float, runs: int,
               **meta) -> Dict[str, object]:
    """One BENCH entry; ``cycles_per_sec`` is the trajectory number."""
    entry: Dict[str, object] = {
        "cycles": int(cycles),
        "wall_s": round(float(wall_s), 9),
        "cycles_per_sec": (
            round(cycles / wall_s, 1) if cycles and wall_s > 0 else None
        ),
        "runs": int(runs),
    }
    if meta:
        entry["meta"] = meta
    return entry


def write_bench_document(path: str, doc: Mapping) -> str:
    """Write a BENCH document (stamping the schema) and return the path."""
    out = dict(doc)
    out.setdefault("schema", SCHEMA)
    with open(path, "w") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench_document(path: str) -> Dict:
    """Load and validate a BENCH document."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as err:
        raise BenchError(f"{path}: cannot read ({err.strerror or err})")
    except json.JSONDecodeError as err:
        raise BenchError(f"{path}: not valid JSON ({err})")
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise BenchError(
            f"{path}: not a {SCHEMA} document "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    if not isinstance(doc.get("entries"), dict):
        raise BenchError(f"{path}: missing entries section")
    return doc


# -- the core suite ----------------------------------------------------------


def _min_wall_run(run, repeats: int) -> Tuple[int, float]:
    """Run ``run()`` once to warm caches, then ``repeats`` timed times;
    returns (cycles per run, minimum wall seconds)."""
    run()
    best = None
    cycles = 0
    for _ in range(max(repeats, 1)):
        started = time.perf_counter_ns()
        result = run()
        wall = time.perf_counter_ns() - started
        cycles = result.time
        if best is None or wall < best:
            best = wall
    return cycles, best / _NS


def _program_cases(config: Mapping) -> List[Tuple[str, object, object, dict]]:
    """(key, app, run-closure inputs) for the representative programs."""
    length = int(config["password_length"])
    sbox_len = int(config["sbox_length"])
    rsa_bits = int(config["rsa_bits"])
    rsa_blocks = int(config["rsa_blocks"])

    cases: List[Tuple[str, object, object, dict]] = []
    for mitigated in (True, False):
        app = PasswordChecker(length=length, mitigated=mitigated)
        memory = (list(range(length)), list(range(length)))
        cases.append((
            f"program/password/{'mitigated' if mitigated else 'unmitigated'}",
            app, memory, {"length": length},
        ))
    for mitigated in (True, False):
        app = SboxCipher(length=sbox_len, plaintext_length=sbox_len,
                         mitigated=mitigated)
        # The cipher's key width is fixed (KEY_LENGTH); only the
        # plaintext/ciphertext length scales.
        memory = (list(range(16)), list(range(sbox_len)))
        cases.append((
            f"program/sbox/{'mitigated' if mitigated else 'unmitigated'}",
            app, memory, {"length": sbox_len},
        ))
    key = generate_keypair(rsa_bits, seed=7)
    ciphertext = encrypt_blocks(list(range(1, rsa_blocks + 1)), key)
    app = RsaSystem(key_bits=rsa_bits, blocks=rsa_blocks)
    cases.append((
        "program/rsa/language", app, (key, ciphertext),
        {"key_bits": rsa_bits, "blocks": rsa_blocks},
    ))
    return cases


def _app_runner(app, memory_args, hardware: str,
                interpreter_cls=Interpreter, profiler: Optional[Profiler] = None):
    """A closure executing ``app`` on a fresh environment + memory each
    call (so cache state never leaks between timed runs)."""
    typing = getattr(app, "typing", None)
    mitigate_pc = dict(typing.mitigate_pc) if typing is not None else {}

    def run():
        interp = interpreter_cls(
            program=app.program,
            memory=app.memory(*memory_args),
            environment=make_hardware(hardware, app.lattice, None),
            mitigation=MitigationState(),
            mitigate_pc=mitigate_pc,
            profiler=profiler,
        )
        return interp.run()
    return run


def run_core_bench(repeats: int = 3,
                   password_length: int = 24,
                   sbox_length: int = 24,
                   rsa_bits: int = 16,
                   rsa_blocks: int = 2,
                   hardware: str = "partitioned",
                   gateway_requests: int = 24,
                   check_overhead: bool = True) -> Dict:
    """Measure the core simulator and return a ``kind="core"`` document."""
    config = {
        "repeats": repeats,
        "password_length": password_length,
        "sbox_length": sbox_length,
        "rsa_bits": rsa_bits,
        "rsa_blocks": rsa_blocks,
        "hardware": hardware,
        "gateway_requests": gateway_requests,
    }
    entries: Dict[str, Dict[str, object]] = {}

    # Representative programs on the reference hardware model.
    cases = _program_cases(config)
    for key, app, memory_args, meta in cases:
        cycles, wall = _min_wall_run(
            _app_runner(app, memory_args, hardware), repeats
        )
        entries[key] = make_entry(cycles, wall, repeats,
                                  hardware=hardware, **meta)

    # Every registered hardware model's access path, driven by the same
    # (unmitigated, so model-agnostic) password loop.
    probe = PasswordChecker(length=password_length, mitigated=False)
    probe_memory = (list(range(password_length)),
                    list(range(password_length)))
    for spec in REGISTRY.specs():
        cycles, wall = _min_wall_run(
            _app_runner(probe, probe_memory, spec.name), repeats
        )
        entries[f"hardware/{spec.name}"] = make_entry(
            cycles, wall, repeats,
            expected_secure=spec.expected_secure,
        )

    # Profiled subsystem attribution: one mitigated workload with the
    # profiler on, split by where the cycles and the wall-time went.
    profiler = Profiler()
    mitigated = cases[0]  # password/mitigated
    profiled_run = _app_runner(mitigated[1], mitigated[2], hardware,
                               profiler=profiler)
    for _ in range(max(repeats, 1)):
        profiled_run()
    for name in profiler.subsystems():
        cycles = profiler.cycles.get(name, 0)
        wall_ns = profiler.wall_ns.get(name, 0)
        entries[f"subsystem/{name}"] = make_entry(
            cycles, wall_ns / _NS, repeats,
            calls=profiler.calls.get(name, 0),
        )

    # The gateway event loop, profiled end to end on a small closed-loop
    # workload: rate = virtual makespan per second of host loop time.
    gw_profiler = Profiler()
    spec = service_spec("quantized", clients=4, requests=gateway_requests)
    started = time.perf_counter_ns()
    result = serve_workload(spec, profiler=gw_profiler)
    gw_wall = (time.perf_counter_ns() - started) / _NS
    entries["gateway/serve"] = make_entry(
        result.makespan, gw_wall, 1,
        completed=len(result.completed()),
        events=gw_profiler.calls.get("gateway.loop", 0),
    )
    handler_ns = gw_profiler.wall_ns.get("gateway.handlers", 0)
    entries["gateway/handlers"] = make_entry(
        gw_profiler.cycles.get("gateway.handlers", 0), handler_ns / _NS, 1,
        calls=gw_profiler.calls.get("gateway.handlers", 0),
    )

    doc: Dict[str, object] = {
        "schema": SCHEMA,
        "kind": "core",
        "config": config,
        "entries": entries,
    }
    if check_overhead:
        doc["overhead"] = measure_seam_overhead(
            repeats=max(repeats * 2, 5), length=password_length
        )
    return doc


# -- the service suite -------------------------------------------------------


def service_case(result, audit, wall_s: float) -> Dict[str, object]:
    """Convert one measured service cell into a BENCH entry (shared with
    benchmarks/bench_service_throughput.py)."""
    hist = StreamingHistogram()
    for response in result.completed():
        hist.observe(response.latency)
    quantiles = hist.quantiles()
    return make_entry(
        result.makespan, wall_s, 1,
        completed=len(result.completed()),
        req_per_mcycle=round(result.throughput_per_mcycle(), 2),
        latency_p50=quantiles["p50"],
        latency_p95=quantiles["p95"],
        latency_p99=quantiles["p99"],
        leaked_bits=round(audit.max_observed_bits(), 3),
        audit_ok=audit.ok,
    )


def run_service_bench(requests: int = SERVICE_REQUESTS,
                      client_counts: Sequence[int] = SERVICE_CLIENT_COUNTS,
                      policies: Sequence[str] = SERVICE_POLICIES,
                      seed: int = SERVICE_SEED) -> Dict:
    """Measure the service sweep and return a ``kind="service"`` document."""
    entries: Dict[str, Dict[str, object]] = {}
    for policy in policies:
        for clients in client_counts:
            spec = service_spec(policy, clients, requests=requests,
                                seed=seed)
            started = time.perf_counter_ns()
            result = serve_workload(spec)
            wall = (time.perf_counter_ns() - started) / _NS
            audit = audit_service(result)
            entries[f"service/{policy}/c{clients}"] = service_case(
                result, audit, wall
            )
    return {
        "schema": SCHEMA,
        "kind": "service",
        "config": {
            "requests": requests,
            "client_counts": list(client_counts),
            "policies": list(policies),
            "quantum": SERVICE_QUANTUM,
            "seed": seed,
            "tenants": [t["name"] for t in SERVICE_TENANTS],
        },
        "entries": entries,
    }


# -- the seam-overhead check -------------------------------------------------


class SeamlessInterpreter(Interpreter):
    """The interpreter with the profiling seam physically removed from
    the per-step hot path -- the calibration baseline for the <= 5%
    profiler-off overhead claim in BENCH_core.json."""

    def _charge(self, kind, cmd, reads=(), writes=(), taken=None):
        read_label, write_label = self._labels(cmd)
        cost = self.environment.step(
            kind,
            self._trace(cmd, reads, writes, taken=taken),
            read_label,
            write_label,
        )
        self.time += cost
        if self.recorder.active:
            self.recorder.on_step(kind, cost, self.time)


def measure_seam_overhead(repeats: int = 7,
                          length: int = 24) -> Dict[str, object]:
    """Race the shipped interpreter (profiler off) against
    :class:`SeamlessInterpreter` on the mitigated password workload.

    Measurements are interleaved A/B/A/B and each side keeps its minimum,
    so a scheduler hiccup hits both sides alike.  When the first batch
    still shows overhead past tolerance, the measurement extends itself
    (up to 6x the requested repeats): per-side minima only ever improve
    with more rounds, so transient noise settles while a *real* seam
    cost keeps failing no matter how long we measure."""
    app = PasswordChecker(length=length, mitigated=True)
    memory_args = (list(range(length)), list(range(length)))
    with_seam = _app_runner(app, memory_args, "partitioned")
    seamless = _app_runner(app, memory_args, "partitioned",
                           interpreter_cls=SeamlessInterpreter)
    with_seam()
    seamless()
    batch = max(repeats, 3)
    best = {"seam": None, "seamless": None}
    done = 0
    while True:
        for _ in range(batch):
            for name, run in (("seam", with_seam), ("seamless", seamless)):
                started = time.perf_counter_ns()
                run()
                wall = time.perf_counter_ns() - started
                if best[name] is None or wall < best[name]:
                    best[name] = wall
        done += batch
        overhead = best["seam"] / best["seamless"] - 1.0
        if overhead * 100.0 <= OVERHEAD_TOLERANCE_PCT or done >= batch * 6:
            break
    return {
        "with_seam_s": round(best["seam"] / _NS, 9),
        "seamless_s": round(best["seamless"] / _NS, 9),
        "overhead_pct": round(overhead * 100.0, 2),
        "tolerance_pct": OVERHEAD_TOLERANCE_PCT,
        "repeats": done,
        "ok": overhead * 100.0 <= OVERHEAD_TOLERANCE_PCT,
    }


# -- the regression gate -----------------------------------------------------


def compare_documents(current: Mapping, baseline: Mapping,
                      tolerance: float = DEFAULT_TOLERANCE) -> Dict:
    """Diff two BENCH documents entry by entry.

    An entry *regresses* when its current ``cycles_per_sec`` falls more
    than ``tolerance`` below the baseline's, or when a baseline entry
    disappears.  Entries without a rate on the baseline side are
    informational.  Returns ``{"ok": bool, "rows": [...], ...}``.
    """
    if current.get("schema") != SCHEMA or baseline.get("schema") != SCHEMA:
        raise BenchError("both documents must carry schema " + SCHEMA)
    if current.get("kind") != baseline.get("kind"):
        raise BenchError(
            f"kind mismatch: current={current.get('kind')!r} "
            f"baseline={baseline.get('kind')!r}"
        )
    if not 0.0 <= tolerance < 1.0:
        raise BenchError(f"tolerance out of range [0, 1): {tolerance}")
    cur_entries = current.get("entries") or {}
    base_entries = baseline.get("entries") or {}
    rows: List[Dict[str, object]] = []
    regressions: List[str] = []
    for key in sorted(base_entries):
        base_rate = (base_entries[key] or {}).get("cycles_per_sec")
        cur = cur_entries.get(key)
        if cur is None:
            rows.append({"key": key, "status": "missing",
                         "baseline": base_rate, "current": None,
                         "ratio": None})
            regressions.append(key)
            continue
        cur_rate = cur.get("cycles_per_sec")
        if not base_rate or not cur_rate:
            rows.append({"key": key, "status": "info",
                         "baseline": base_rate, "current": cur_rate,
                         "ratio": None})
            continue
        ratio = cur_rate / base_rate
        if ratio < 1.0 - tolerance:
            status = "regression"
            regressions.append(key)
        elif ratio > 1.0 + tolerance:
            status = "improved"
        else:
            status = "ok"
        rows.append({"key": key, "status": status,
                     "baseline": base_rate, "current": cur_rate,
                     "ratio": round(ratio, 4)})
    for key in sorted(set(cur_entries) - set(base_entries)):
        rows.append({"key": key, "status": "new", "baseline": None,
                     "current": (cur_entries[key] or {}).get(
                         "cycles_per_sec"),
                     "ratio": None})
    return {
        "kind": current.get("kind"),
        "tolerance": tolerance,
        "rows": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


# -- rendering ---------------------------------------------------------------


def render_bench_lines(doc: Mapping) -> List[str]:
    """Human-readable summary of one BENCH document."""
    lines = [f"BENCH kind={doc.get('kind')} schema={doc.get('schema')}"]
    entries = doc.get("entries") or {}
    if entries:
        lines.append(f"{'entry':<34} {'cycles':>12} {'wall ms':>10} "
                     f"{'Mcyc/s':>8}")
        for key in sorted(entries):
            entry = entries[key] or {}
            rate = entry.get("cycles_per_sec")
            rate_text = f"{rate / 1e6:>8.3f}" if rate else f"{'-':>8}"
            lines.append(
                f"{key:<34} {entry.get('cycles', 0):>12} "
                f"{float(entry.get('wall_s', 0.0)) * 1e3:>10.3f} {rate_text}"
            )
    overhead = doc.get("overhead")
    if overhead:
        verdict = "ok" if overhead.get("ok") else "EXCEEDED"
        lines.append(
            f"profiler-off seam overhead: {overhead.get('overhead_pct')}% "
            f"(tolerance {overhead.get('tolerance_pct')}%) [{verdict}]"
        )
    return lines


def render_comparison_lines(comparison: Mapping) -> List[str]:
    """Human-readable summary of one compare_documents() result."""
    tol = comparison.get("tolerance", DEFAULT_TOLERANCE)
    lines = [
        f"compare kind={comparison.get('kind')} "
        f"tolerance={tol * 100:.0f}%"
    ]
    lines.append(f"{'entry':<34} {'baseline':>12} {'current':>12} "
                 f"{'ratio':>7}  status")
    for row in comparison.get("rows", []):
        def fmt_rate(value):
            return f"{value / 1e6:.3f}M" if value else "-"
        ratio = row.get("ratio")
        lines.append(
            f"{row['key']:<34} {fmt_rate(row.get('baseline')):>12} "
            f"{fmt_rate(row.get('current')):>12} "
            f"{ratio if ratio is not None else '-':>7}  {row['status']}"
        )
    regressions = comparison.get("regressions", [])
    if regressions:
        lines.append(f"REGRESSED ({len(regressions)}): "
                     + ", ".join(regressions))
    else:
        lines.append("no regressions")
    return lines
