"""Dynamic leakage accounting: Theorem 2 checked against live runs.

The static side of Theorem 2 lives in :mod:`repro.quantitative.bounds`:
after elapsed time ``T`` with ``K`` relevant mitigate executions, at most
``|L^| * log2(K+1) * (1 + log2 T)`` bits can leak, because the observable
duration vectors of the relevant mitigations can take at most that many
distinct values (log-scale).  The :class:`DynamicLeakageMeter` measures the
*dynamic* side: it watches every completed ``mitigate`` during execution,
keeps the deadline (padded-duration) sequence of each run's relevant
mitigations, and counts how many *distinct* sequences have actually been
observed.  ``log2`` of that count can never exceed the static bound; the
meter makes the inequality executable (:meth:`DynamicLeakageMeter.holds`)
and raises :class:`LeakageBoundViolation` on demand when it fails
(:meth:`DynamicLeakageMeter.assert_within_bound`).

Relevance follows Definition 2 exactly (same predicate as
:func:`repro.quantitative.variations.relevant_projection`): a completed
mitigation matters when its static ``pc`` label lies *outside* the upward
closure ``L^`` of the varied levels (low context) while its mitigation
level lies *inside* (high level).

For the default fast-doubling scheme the meter additionally checks the
per-command corollary: one mitigate command with initial estimate ``n``
can exhibit at most ``1 + floor(log2(T / max(n,1)))`` distinct padded
durations within elapsed time ``T``
(:func:`repro.quantitative.bounds.doubling_duration_count`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..lattice import Label, Lattice

#: Numeric slack for comparing measured bits against closed-form bounds.
EPSILON = 1e-9


class LeakageBoundViolation(AssertionError):
    """Observed timing variation exceeded the static Theorem 2 bound."""


class DynamicLeakageMeter:
    """Counts observed mitigation-deadline sequences against Theorem 2.

    Parameters
    ----------
    lattice:
        The program's security lattice.
    levels:
        The varied level set ``L`` (the levels whose data the adversary is
        trying to learn); defaults to every non-bottom level.
    adversary:
        The observer's level ``lA``; defaults to the lattice bottom.
    """

    def __init__(
        self,
        lattice: Lattice,
        levels: Optional[Iterable[Label]] = None,
        adversary: Optional[Label] = None,
    ):
        self.lattice = lattice
        self.levels: Tuple[Label, ...] = tuple(
            levels
            if levels is not None
            else (l for l in lattice.levels() if l != lattice.bottom)
        )
        self.adversary = adversary if adversary is not None else lattice.bottom
        self.upward = lattice.upward_closure(
            lattice.exclude_observable(self.levels, self.adversary)
        )
        #: Distinct relevant deadline sequences observed across runs.
        self.sequences: Set[Tuple[int, ...]] = set()
        #: Deadline sequence of the run in progress.
        self._current: List[int] = []
        #: Per-mitigate-command distinct padded durations (relevant only).
        self._per_command: Dict[str, Set[int]] = {}
        #: Smallest initial estimate seen per command (doubling corollary).
        self._estimates: Dict[str, int] = {}
        self.max_final_time = 0
        self.max_relevant_per_run = 0
        self.runs = 0

    # -- feeding (called by the recorder) -------------------------------------

    def observe(
        self,
        mit_id: str,
        level: Label,
        estimate: int,
        duration: int,
        pc_label: Optional[Label],
    ) -> None:
        """One completed mitigation; ``duration`` is the padded total."""
        in_low_context = pc_label is None or pc_label not in self.upward
        if not (in_low_context and level in self.upward):
            return
        self._current.append(duration)
        self._per_command.setdefault(mit_id, set()).add(duration)
        prior = self._estimates.get(mit_id)
        if prior is None or estimate < prior:
            self._estimates[mit_id] = estimate

    def end_run(self, final_time: int) -> None:
        """Close the current run's sequence (hooked to ``on_finish``)."""
        self.sequences.add(tuple(self._current))
        self.max_relevant_per_run = max(
            self.max_relevant_per_run, len(self._current)
        )
        self._current = []
        self.max_final_time = max(self.max_final_time, final_time)
        self.runs += 1

    # -- accounting ------------------------------------------------------------

    @property
    def observed_variations(self) -> int:
        """Distinct relevant deadline sequences observed so far (``|V|``
        measured from below)."""
        return len(self.sequences)

    @property
    def observed_bits(self) -> float:
        """``log2`` of the observed variation count."""
        count = self.observed_variations
        return math.log2(count) if count else 0.0

    def static_bound_bits(self) -> float:
        """The Sec. 7 closed-form bound for what has been observed:
        ``|L^| * log2(K+1) * (1 + log2 T)`` with ``T`` the largest final
        clock and ``K`` the largest relevant-mitigation count per run."""
        from ..quantitative.bounds import leakage_bound

        return leakage_bound(
            self.lattice,
            self.levels,
            self.adversary,
            elapsed=self.max_final_time,
            relevant_mitigations=self.max_relevant_per_run,
        )

    def holds(self) -> bool:
        """Does the dynamic count respect the static bound?"""
        return self.observed_bits <= self.static_bound_bits() + EPSILON

    def doubling_violations(self) -> List[str]:
        """Per-command corollary check (fast-doubling scheme only): each
        command's distinct padded durations within ``T`` must number at most
        ``doubling_duration_count(estimate, T)``.  Returns violations."""
        from ..quantitative.bounds import doubling_duration_count

        out = []
        for mit_id, durations in self._per_command.items():
            allowed = doubling_duration_count(
                self._estimates[mit_id], self.max_final_time
            )
            if len(durations) > allowed:
                out.append(
                    f"{mit_id}: {len(durations)} distinct padded durations "
                    f"> doubling bound {allowed} "
                    f"(estimate {self._estimates[mit_id]}, "
                    f"T {self.max_final_time})"
                )
        return out

    def assert_within_bound(self, check_doubling: bool = False) -> None:
        """Raise :class:`LeakageBoundViolation` when the observed variation
        count exceeds the static bound (or, with ``check_doubling``, when a
        command beats the per-command doubling corollary)."""
        if not self.holds():
            raise LeakageBoundViolation(
                f"observed {self.observed_variations} deadline sequences "
                f"({self.observed_bits:.3f} bits) exceed the static bound "
                f"{self.static_bound_bits():.3f} bits"
            )
        if check_doubling:
            violations = self.doubling_violations()
            if violations:
                raise LeakageBoundViolation("; ".join(violations))

    # -- export ----------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """The ``leakage`` section of the telemetry JSON document."""
        return {
            "adversary": self.adversary.name,
            "varied_levels": [l.name for l in self.levels],
            "upward_closure": sorted(l.name for l in self.upward),
            "runs": self.runs,
            "relevant_mitigations_per_run": self.max_relevant_per_run,
            "observed_variations": self.observed_variations,
            "observed_bits": self.observed_bits,
            "static_bound_bits": self.static_bound_bits(),
            "within_bound": self.holds(),
            "per_command_distinct_durations": {
                mit_id: len(durations)
                for mit_id, durations in sorted(self._per_command.items())
            },
        }
