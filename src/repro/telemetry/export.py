"""Chrome trace-event export: timelines loadable in Perfetto.

:func:`chrome_trace` turns a span list (from
:class:`~repro.telemetry.spans.SpanRecorder` or rebuilt from a journal via
:func:`~repro.telemetry.spans.spans_from_journal`) into the Chrome
trace-event JSON format understood by https://ui.perfetto.dev and
``chrome://tracing``:

* every span becomes a balanced ``B``/``E`` duration-event pair on the
  track (``tid``) of its run, nested by parentage, with the span
  attributes as ``args``;
* every settled ``mitigate`` epoch additionally emits a ``C`` (counter)
  event ``Miss[l]`` at its end time, so the fast-doubling staircase of
  Fig. 6 renders as a counter track;
* ``M`` (metadata) events name the process and one thread per recorded
  run.

Timestamps are the simulator's global-clock **cycles** used directly as
microseconds (the trace format's native unit); absolute wall-time
is meaningless for a simulated machine, so only relative structure
matters.  The export maintains two invariants the tests pin down:
within each ``tid``, ``B``/``E`` events are perfectly balanced
(stack-wise) and their timestamps are monotone non-decreasing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .metrics import SCHEMA
from .spans import CATEGORY_MITIGATE, CATEGORY_RUN, Span, json_safe

PROCESS_NAME = "repro simulated machine"


def _duration_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Balanced B/E pairs, depth-first per track (children inside parents)."""
    closed = [s for s in spans if s.end is not None]
    children: Dict[Optional[int], List[Span]] = {}
    by_id = {s.span_id: s for s in closed}
    roots: List[Span] = []
    for span in closed:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    events: List[Dict[str, Any]] = []

    def emit(span: Span) -> None:
        tid = span.track + 1
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "B",
            "ts": span.start,
            "pid": 1,
            "tid": tid,
            "args": json_safe(span.attrs),
        })
        for child in sorted(children.get(span.span_id, ()),
                            key=lambda s: (s.start, s.span_id)):
            emit(child)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "E",
            "ts": span.end,
            "pid": 1,
            "tid": tid,
        })
        if span.category == CATEGORY_MITIGATE and "misses" in span.attrs:
            events.append({
                "name": f"Miss[{span.attrs.get('level', '?')}]",
                "cat": "mitigation",
                "ph": "C",
                "ts": span.end,
                "pid": 1,
                "tid": tid,
                "args": {"misses": span.attrs["misses"]},
            })

    for root in sorted(roots, key=lambda s: (s.track, s.start, s.span_id)):
        emit(root)
    return events


def _metadata_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": PROCESS_NAME},
    }]
    for span in spans:
        if span.category == CATEGORY_RUN:
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": span.track + 1,
                "args": {"name": span.name},
            })
    return events


def chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """The full Chrome trace-event document for a span list."""
    spans = list(spans)
    return {
        "traceEvents": _metadata_events(spans) + _duration_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SCHEMA,
            "clock": "simulated cycles (1 cycle = 1 us in the viewer)",
        },
    }


def write_chrome_trace(path: str, spans: Iterable[Span]) -> str:
    """Write :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(spans), handle, indent=1)
        handle.write("\n")
    return path
