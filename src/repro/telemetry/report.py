"""The ``repro report`` audit renderer.

Consumes either a metrics JSON document (schema ``repro.telemetry/1``, as
written by ``repro run --metrics-out``, ``repro leakage --metrics-out``,
or the fig7/fig8 benchmarks) or an event journal (JSONL, as written by
``repro run --journal-out``) and renders a human audit report:

* **time sinks** -- where the cycles went (machine, sleep, padding), top
  first, with their share of the final clock;
* **mitigate sites** -- per-site completions, total duration, pure
  padding, and distinct observed durations;
* **Miss trajectory** -- every value each ``Miss[l]`` took, in order (the
  fast-doubling staircase of Fig. 6);
* **leakage verdict** -- the dynamic Theorem 2 account: observed bits
  versus the static ``|L^| * log2(K+1) * (1 + log2 T)`` bound, with an
  explicit within-bound verdict.

:func:`render_report` returns the lines plus an ``ok`` flag; the CLI exits
nonzero when a metrics document records an observed > bound violation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import SCHEMA
from .profiling import render_profile_lines
from .spans import CATEGORY_MITIGATE, CATEGORY_RUN, Span, spans_from_journal


class ReportError(ValueError):
    """The input document is not a metrics JSON or an event journal."""


def load_document(path: str) -> Dict[str, Any]:
    """Load a metrics JSON or a JSONL journal into a uniform dict.

    Returns either the metrics document as-is (it carries ``schema``) or
    ``{"schema": ..., "journal": [records...]}`` for journals.
    """
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        raise ReportError(f"{path} is empty")
    if stripped.startswith("{") and "\n{" not in stripped.rstrip():
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ReportError(f"{path} is not a telemetry document")
        if "type" in doc and "counters" not in doc:
            # A one-record journal (header only).
            return {"schema": doc.get("schema", SCHEMA), "journal": [doc]}
        return doc
    records = [json.loads(line) for line in text.splitlines() if line.strip()]
    if not all(isinstance(r, dict) for r in records):
        raise ReportError(f"{path}: journal records must be JSON objects")
    header = next((r for r in records if r.get("type") == "header"), {})
    return {"schema": header.get("schema", SCHEMA), "journal": records}


def _fmt_share(part: int, whole: int) -> str:
    return f"{part / whole:6.1%}" if whole else "   n/a"


def _trajectory_line(level: str, values: Sequence[int]) -> str:
    shown = " -> ".join(str(v) for v in values[:12])
    if len(values) > 12:
        shown += f" -> ... ({len(values)} updates)"
    return f"  Miss[{level}]: {shown}"


def _sites_from_counters(counters: Mapping[str, int]) -> Dict[str, Dict]:
    """Per-mitigate-site totals from ``site.<id>.<what>`` counters."""
    sites: Dict[str, Dict[str, int]] = {}
    for name, value in counters.items():
        if not name.startswith("site."):
            continue
        _, mit_id, what = name.split(".", 2)
        sites.setdefault(mit_id, {})[what] = value
    return sites


def _metrics_report(doc: Mapping[str, Any]) -> Tuple[List[str], bool]:
    lines: List[str] = []
    timing = doc.get("timing", {})
    final = timing.get("final_cycles", 0)
    lines.append(f"runs: {doc.get('runs', 0)}   "
                 f"final clock total: {final} cycles")

    lines.append("")
    lines.append("time sinks (top first):")
    sinks = [
        ("machine (hardware-charged steps)", timing.get("machine_cycles", 0)),
        ("padding (mitigate stretch)", timing.get("padding_cycles", 0)),
        ("sleep", timing.get("sleep_cycles", 0)),
    ]
    for name, cycles in sorted(sinks, key=lambda kv: -kv[1]):
        lines.append(f"  {_fmt_share(cycles, final)}  {cycles:>12}  {name}")

    sites = doc.get("sites") or _sites_from_counters(doc.get("counters", {}))
    distinct = doc.get("leakage", {}).get(
        "per_command_distinct_durations", {}
    )
    if sites or distinct:
        lines.append("")
        lines.append("mitigate sites (padding breakdown):")
        names = sorted(set(sites) | set(distinct))
        for mit_id in names:
            info = sites.get(mit_id, {})
            total = info.get("cycles", 0)
            padding = info.get("padding", 0)
            lines.append(
                f"  {mit_id}: {info.get('completions', '?')} completions, "
                f"{total} cycles total, {padding} padding"
                + (f" ({padding / total:.1%})" if total else "")
                + (f", {distinct[mit_id]} distinct duration(s)"
                   if mit_id in distinct else "")
            )

    series = doc.get("series", {})
    trajectories = {
        name[len("miss_trace."):]: values
        for name, values in sorted(series.items())
        if name.startswith("miss_trace.")
    }
    lines.append("")
    lines.append("Miss trajectory per level:")
    if trajectories:
        for level, values in trajectories.items():
            lines.append(_trajectory_line(level, values))
    else:
        finals = doc.get("mitigation", {}).get("miss_per_level", {})
        if finals:
            for level, value in sorted(finals.items()):
                lines.append(f"  Miss[{level}]: final value {value} "
                             "(no trajectory series in this document)")
        else:
            lines.append("  (no mispredictions recorded)")

    attacks = doc.get("attacks", {})
    if attacks:
        lines.append("")
        lines.append("adversary activity:")
        for attack, info in sorted(attacks.items()):
            stats = ", ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(info.get("stats", {}).items())
            )
            lines.append(f"  {attack}: {info.get('samples', 0)} timing "
                         f"sample(s){'; ' + stats if stats else ''}")

    ok = True
    sweep = doc.get("sweep")
    if sweep:
        lines.append("")
        lines.append("secret sweep (Theorem 2, measured both sides):")
        lo, hi = sweep.get("values", ["?", "?"])
        lines.append(f"  secret {sweep.get('secret')} in [{lo}, {hi})  "
                     f"adversary {sweep.get('adversary')}")
        lines.append(f"  Q = {sweep.get('q_bits', 0.0):.3f} bits "
                     f"({sweep.get('distinguishable', '?')} distinguishable), "
                     f"log|V| = {sweep.get('variation_bits', 0.0):.3f} bits "
                     f"({sweep.get('variation_count', '?')} variations), "
                     f"closed-form bound {sweep.get('bound_bits', 0.0):.3f} "
                     "bits")
        lines.append(f"  Theorem 2 "
                     f"{'holds' if sweep.get('theorem2_holds') else 'VIOLATED'}"
                     " on this family")
        if not sweep.get("theorem2_holds", True):
            ok = False

    service = doc.get("service")
    if service:
        service_lines, service_ok = _service_section(service)
        lines.extend(service_lines)
        ok = ok and service_ok

    profile = doc.get("profile")
    if profile:
        lines.append("")
        lines.append("profile (subsystem attribution):")
        lines.extend(f"  {line}" for line in render_profile_lines(profile))

    lines.append("")
    leakage = doc.get("leakage")
    if leakage:
        observed = leakage.get("observed_bits", 0.0)
        bound = leakage.get("static_bound_bits", 0.0)
        within = bool(leakage.get("within_bound",
                                  observed <= bound + 1e-9))
        ok = ok and within
        lines.append(
            f"leakage verdict: observed {leakage.get('observed_variations', 0)} "
            f"deadline sequence(s) = {observed:.3f} bits "
            f"{'<=' if within else '>'} static Theorem 2 bound "
            f"{bound:.3f} bits: {'ok' if within else 'VIOLATED'}"
        )
    else:
        lines.append("leakage verdict: n/a (document has no leakage section)")
    return lines, ok


def _probe_line(probe: Mapping[str, Any]) -> str:
    """One distinguisher probe, numerically: classes, raw sample counts,
    measured advantage, and the Welch significance verdict."""
    classes = probe.get("classes", ["?", "?"])
    samples = probe.get("samples", ["?", "?"])
    p_value = probe.get("p_value")
    stats = ""
    if p_value is not None:
        verdict = ("significant" if probe.get("significant")
                   else "not significant")
        stats = f", p={p_value:.2e} ({verdict})"
    return (
        f"distinguisher {classes[0]} (n={samples[0]}) vs "
        f"{classes[1]} (n={samples[1]}): advantage "
        f"{probe.get('advantage', 0.0):+.3f} over chance "
        f"{probe.get('chance', 0.0):.3f}{stats}"
    )


def _service_section(service: Mapping[str, Any]) -> Tuple[List[str], bool]:
    """Render the gateway's ``service`` section (``repro serve``
    documents; see docs/SERVICE.md)."""
    lines: List[str] = [""]
    counts = service.get("requests", {})
    lines.append(
        f"service: policy {service.get('policy', '?')}, "
        f"{service.get('workers', '?')} worker(s), "
        f"scheme {service.get('scheme', '?')}/"
        f"{service.get('penalty', '?')}"
    )
    lines.append(
        f"  requests: {counts.get('submitted', 0)} submitted, "
        f"{counts.get('completed', 0)} completed, "
        f"{counts.get('rejected', 0)} rejected, "
        f"{counts.get('timed_out', 0)} timed out "
        f"({service.get('retries', 0)} retries)"
    )
    lines.append(
        f"  makespan {service.get('makespan', 0)} cycles, "
        f"throughput {service.get('throughput_per_mcycle', 0.0)} req/Mcycle"
    )
    ok = True
    for name, tenant in sorted(service.get("tenants", {}).items()):
        audit = tenant.get("audit", {})
        release = audit.get("release", {})
        within = bool(audit.get("within_bound", True))
        ok = ok and within
        lat = tenant.get("latency", {})
        lines.append(
            f"  tenant {name} ({tenant.get('app', '?')}): "
            f"{tenant.get('requests', {}).get('completed', 0)} ok, "
            f"latency p50 {lat.get('p50', 0)} p99 {lat.get('p99', 0)}, "
            f"release leakage {release.get('observed_bits', 0.0):.3f} "
            f"{'<=' if within else '>'} "
            f"bound {release.get('bound_bits', 0.0):.3f} bits: "
            f"{'ok' if within else 'VIOLATED'}"
        )
        probe = audit.get("probe")
        if probe:
            lines.append("    " + _probe_line(probe))
    cross = service.get("cross_tenant", [])
    if cross:
        worst = max(cross, key=lambda p: p.get("advantage", 0.0))
        lines.append(
            f"  cross-tenant probes: {len(cross)}; worst "
            f"({worst.get('observer', '?')} observing "
            f"{worst.get('victim', '?')}): " + _probe_line(worst)
        )
    if not service.get("audit_ok", True):
        ok = False
    lines.append(f"  service audit: {'OK' if ok else 'VIOLATED'}")
    return lines, ok


def _journal_report(records: List[Dict[str, Any]]) -> Tuple[List[str], bool]:
    spans = spans_from_journal(records)
    runs = [s for s in spans if s.category == CATEGORY_RUN]
    epochs = [s for s in spans if s.category == CATEGORY_MITIGATE]
    lines: List[str] = []
    final = sum(s.duration or 0 for s in runs)
    lines.append(f"runs: {len(runs)}   final clock total: {final} cycles "
                 f"({len(records)} journal record(s))")

    lines.append("")
    lines.append("time sinks (top first):")
    padding = sum(s.attrs.get("padding", 0) for s in epochs)
    epoch_cycles = sum(s.duration or 0 for s in epochs)
    sinks = [
        ("inside mitigate epochs", epoch_cycles),
        ("padding (mitigate stretch)", padding),
        ("outside mitigate epochs", final - epoch_cycles),
    ]
    for name, cycles in sorted(sinks, key=lambda kv: -kv[1]):
        lines.append(f"  {_fmt_share(cycles, final)}  {cycles:>12}  {name}")

    if epochs:
        lines.append("")
        lines.append("mitigate sites (padding breakdown):")
        per_site: Dict[str, List[Span]] = {}
        for span in epochs:
            per_site.setdefault(span.name, []).append(span)
        for mit_id, site_spans in sorted(per_site.items()):
            total = sum(s.duration or 0 for s in site_spans)
            pad = sum(s.attrs.get("padding", 0) for s in site_spans)
            durations = {s.duration for s in site_spans}
            lines.append(
                f"  {mit_id}: {len(site_spans)} completions, "
                f"{total} cycles total, {pad} padding"
                + (f" ({pad / total:.1%})" if total else "")
                + f", {len(durations)} distinct duration(s)"
            )

    lines.append("")
    lines.append("Miss trajectory per level:")
    trajectories: Dict[str, List[int]] = {}
    for record in records:
        if record.get("type") == "miss_update":
            trajectories.setdefault(record["level"], []).append(
                record["misses"]
            )
    if trajectories:
        for level, values in sorted(trajectories.items()):
            lines.append(_trajectory_line(level, values))
    else:
        lines.append("  (no mispredictions recorded)")

    samples: Dict[str, int] = {}
    stats: Dict[str, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") == "attack_sample":
            samples[record["attack"]] = samples.get(record["attack"], 0) + 1
        elif record.get("type") == "attack_stat":
            stats.setdefault(record["attack"], {})[record["stat"]] = (
                record["value"]
            )
    if samples or stats:
        lines.append("")
        lines.append("adversary activity:")
        for attack in sorted(set(samples) | set(stats)):
            shown = ", ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(stats.get(attack, {}).items())
            )
            lines.append(f"  {attack}: {samples.get(attack, 0)} timing "
                         f"sample(s){'; ' + shown if shown else ''}")

    lines.append("")
    lines.append("leakage verdict: n/a (journals carry the raw stream; "
                 "run with --metrics-out for the Theorem 2 account)")
    return lines, True


def render_report(doc: Mapping[str, Any],
                  source: Optional[str] = None) -> Tuple[List[str], bool]:
    """Render the audit report for a loaded document.

    Returns ``(lines, ok)``; ``ok`` is False exactly when the document
    records a violated bound -- a dynamic-leakage account exceeding its
    static Theorem 2 bound, or a ``sweep`` section where the measured
    ``Q`` beat ``log2 |V|``.
    """
    schema = doc.get("schema")
    header = f"repro audit report (schema {schema or 'unknown'})"
    if source:
        header += f" -- {source}"
    lines = [header, "=" * len(header)]
    try:
        if "journal" in doc:
            body, ok = _journal_report(doc["journal"])
        elif "counters" in doc or "timing" in doc:
            body, ok = _metrics_report(doc)
        else:
            raise ReportError(
                "document is neither a repro.telemetry metrics JSON nor an "
                "event journal"
            )
    except ReportError:
        raise
    except (AttributeError, TypeError, ValueError, KeyError,
            IndexError) as err:
        # A recognizable document with missing/truncated/mistyped
        # sections must exit 2 at the CLI, not traceback.
        raise ReportError(
            f"telemetry document is truncated or malformed: "
            f"{type(err).__name__}: {err}"
        )
    return lines + body, ok
