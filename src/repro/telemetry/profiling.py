"""Continuous performance observability: the profiling seam.

This module is the *wall-clock* counterpart of the leakage telemetry: it
attributes **simulated cycles** and **host wall-time** to the subsystems
that spend them -- interpreter dispatch, each hardware model's access
path, mitigation epoch scheduling, and the gateway event loop -- so that
perf regressions become visible the way leakage regressions already are.

Design rules (the ``recorder.active`` seam from PR 1, applied again):

* **Zero overhead when off.**  Every instrumentation site hoists the
  profiler into a local and guards on ``profiler is None`` (call sites
  resolve inactive profilers to ``None`` up front, so the hot path pays
  one identity check and nothing else).  ``benchmarks/bench_core_speed.py``
  measures this against a build with the seam physically removed and
  asserts the gap stays under 5%.
* **Cycle attribution is exact.**  The cycle counters partition the
  simulated clock: per-run, ``hardware.* + interpreter.sleep +
  mitigation.padding`` equals the final global time (a Hypothesis
  property cross-checks this against :class:`~repro.telemetry.spans`
  run-span durations).  Wall-time attribution is best-effort (timer
  granularity), with ``interpreter.dispatch`` defined as run wall-time
  minus the nested hardware/mitigation sections.

The output surfaces are :meth:`Profiler.as_dict` (the ``profile``
section rendered by ``repro report``) and
:func:`prometheus_exposition` (Prometheus text format, version 0.0.4).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

#: Schema tag stamped into the ``profile`` document section.
PROFILE_SCHEMA = "repro.profile/1"

#: Quantiles every latency summary reports.
QUANTILES: Tuple[float, ...] = (0.50, 0.95, 0.99)


class StreamingHistogram:
    """A mergeable streaming histogram over non-negative integers.

    Values are binned HdrHistogram-style: exact buckets below
    ``2**sub_bits``, then log2 buckets keeping ``sub_bits`` bits of
    mantissa, so every reported quantile is a bucket lower bound within
    ``2**-sub_bits`` relative error of the true order statistic (0.8%
    at the default ``sub_bits=7``).  Memory is O(buckets touched), and
    two histograms with the same ``sub_bits`` merge by adding counts --
    quantiles of the merge equal quantiles of the concatenated stream.
    """

    __slots__ = ("sub_bits", "_linear", "counts", "count", "total",
                 "min", "max")

    def __init__(self, sub_bits: int = 7):
        if not 0 <= sub_bits <= 16:
            raise ValueError(f"sub_bits out of range: {sub_bits}")
        self.sub_bits = sub_bits
        self._linear = 1 << sub_bits
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    # -- binning -----------------------------------------------------------

    def _index(self, value: int) -> int:
        if value < self._linear:
            return value
        shift = value.bit_length() - 1 - self.sub_bits
        return self._linear + shift * self._linear + (
            (value >> shift) - self._linear
        )

    def _lower_bound(self, index: int) -> int:
        if index < self._linear:
            return index
        shift, offset = divmod(index - self._linear, self._linear)
        return (self._linear + offset) << shift

    # -- recording ---------------------------------------------------------

    def observe(self, value: int) -> None:
        value = max(int(value), 0)
        index = self._index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` into this histogram (same ``sub_bits`` only)."""
        if other.sub_bits != self.sub_bits:
            raise ValueError(
                f"cannot merge histograms with sub_bits "
                f"{self.sub_bits} != {other.sub_bits}"
            )
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min,
                                                             other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max,
                                                              other.max)

    # -- querying ----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Nearest-rank quantile, reported as its bucket lower bound
        clamped into the observed [min, max] range (so q=0 and q=1 are
        exact)."""
        if not self.count:
            return 0
        q = min(max(q, 0.0), 1.0)
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                value = self._lower_bound(index)
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover -- counts always sum to count

    def quantiles(self, qs: Iterable[float] = QUANTILES) -> Dict[str, int]:
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    # -- (de)serialization -------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "sub_bits": self.sub_bits,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "StreamingHistogram":
        hist = cls(sub_bits=int(doc.get("sub_bits", 7)))
        hist.counts = {int(k): int(v)
                       for k, v in dict(doc.get("counts", {})).items()}
        hist.count = int(doc.get("count", 0))
        hist.total = int(doc.get("total", 0))
        hist.min = doc.get("min")
        hist.max = doc.get("max")
        return hist


class Profiler:
    """Accumulates per-subsystem cycle/wall attribution plus latency
    histograms and per-tenant leakage-budget burn-down gauges.

    Instrumented layers accept an optional profiler and resolve it to
    ``None`` when ``active`` is false, so the shipped fast path never
    calls into this class (see module docstring).
    """

    #: Mirrors ``TraceRecorder.active``: sites check this once, up front.
    active = True

    def __init__(self, clock=time.perf_counter_ns):
        self.clock = clock
        self.cycles: Dict[str, int] = {}
        self.wall_ns: Dict[str, int] = {}
        self.calls: Dict[str, int] = {}
        self.latencies: Dict[str, StreamingHistogram] = {}
        self.budgets: Dict[str, Dict[str, float]] = {}

    # -- subsystem attribution ---------------------------------------------

    def add_cycles(self, subsystem: str, cycles: int, calls: int = 0) -> None:
        self.cycles[subsystem] = self.cycles.get(subsystem, 0) + cycles
        if calls:
            self.calls[subsystem] = self.calls.get(subsystem, 0) + calls

    def add_wall(self, subsystem: str, ns: int, calls: int = 0) -> None:
        self.wall_ns[subsystem] = self.wall_ns.get(subsystem, 0) + ns
        if calls:
            self.calls[subsystem] = self.calls.get(subsystem, 0) + calls

    @contextmanager
    def section(self, subsystem: str) -> Iterator[None]:
        """Wall-time a block under ``subsystem`` (one call per entry)."""
        start = self.clock()
        try:
            yield
        finally:
            self.add_wall(subsystem, self.clock() - start, calls=1)

    def total_cycles(self) -> int:
        """Sum of all attributed simulated cycles (per run this equals
        the final global clock; see module docstring)."""
        return sum(self.cycles.values())

    def subsystems(self) -> List[str]:
        return sorted(set(self.cycles) | set(self.wall_ns) | set(self.calls))

    # -- latency histograms ------------------------------------------------

    def observe_latency(self, name: str, value: int) -> None:
        hist = self.latencies.get(name)
        if hist is None:
            hist = self.latencies[name] = StreamingHistogram()
        hist.observe(value)

    # -- leakage-budget burn-down ------------------------------------------

    def burn(self, tenant: str, spent_bits: float,
             budget_bits: float) -> None:
        """Record a tenant's current leakage-budget burn-down: observed
        bits spent against the static Theorem 2 budget."""
        entry = self.budgets.get(tenant)
        if entry is None:
            entry = self.budgets[tenant] = {"updates": 0}
        entry["budget_bits"] = float(budget_bits)
        entry["spent_bits"] = float(spent_bits)
        entry["remaining_bits"] = max(float(budget_bits) - float(spent_bits),
                                      0.0)
        entry["updates"] += 1

    # -- export ------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The ``profile`` document section (schema ``repro.profile/1``)."""
        subsystems: Dict[str, Dict[str, object]] = {}
        for name in self.subsystems():
            cycles = self.cycles.get(name, 0)
            wall_ns = self.wall_ns.get(name, 0)
            subsystems[name] = {
                "cycles": cycles,
                "wall_ns": wall_ns,
                "calls": self.calls.get(name, 0),
                "cycles_per_sec": (
                    round(cycles * 1e9 / wall_ns, 1)
                    if cycles and wall_ns else None
                ),
            }
        latency: Dict[str, Dict[str, object]] = {}
        for name in sorted(self.latencies):
            hist = self.latencies[name]
            entry: Dict[str, object] = {
                "count": hist.count,
                "total": hist.total,
                "mean": round(hist.mean, 2),
                "min": hist.min,
                "max": hist.max,
            }
            entry.update(hist.quantiles())
            latency[name] = entry
        return {
            "schema": PROFILE_SCHEMA,
            "total_cycles": self.total_cycles(),
            "subsystems": subsystems,
            "latency": latency,
            "budgets": {t: dict(v) for t, v in sorted(self.budgets.items())},
        }

    def summary_lines(self) -> List[str]:
        """Human-readable summary (used by ``repro run/serve --profile``)."""
        return render_profile_lines(self.as_dict())


class NullProfiler(Profiler):
    """The shipped default: present so call sites can always test
    ``profiler.active``, never recording anything."""

    active = False


#: Shared inert instance (mirrors ``NULL_RECORDER``).
NULL_PROFILER = NullProfiler()


def hardware_subsystem(environment: object) -> str:
    """The attribution key for a hardware model's access path, derived
    from the class name so the hot path never consults the registry
    (``PartitionedHardware`` -> ``hardware.partitioned``)."""
    name = type(environment).__name__.lower()
    if name.endswith("hardware"):
        name = name[: -len("hardware")]
    return f"hardware.{name or 'unknown'}"


# -- rendering ---------------------------------------------------------------


def render_profile_lines(profile: Mapping) -> List[str]:
    """Render a ``profile`` section as indented text lines (shared by the
    CLI summary and ``repro report``)."""
    lines: List[str] = []
    subsystems = profile.get("subsystems") or {}
    if subsystems:
        lines.append(
            f"{'subsystem':<26} {'cycles':>12} {'wall ms':>10} "
            f"{'calls':>8} {'Mcyc/s':>8}"
        )
        for name in sorted(subsystems):
            entry = subsystems[name]
            wall_ms = entry.get("wall_ns", 0) / 1e6
            rate = entry.get("cycles_per_sec")
            rate_text = f"{rate / 1e6:>8.2f}" if rate else f"{'-':>8}"
            lines.append(
                f"{name:<26} {entry.get('cycles', 0):>12} {wall_ms:>10.3f} "
                f"{entry.get('calls', 0):>8} {rate_text}"
            )
        lines.append(f"total attributed cycles: "
                     f"{profile.get('total_cycles', 0)}")
    for name, entry in sorted((profile.get("latency") or {}).items()):
        lines.append(
            f"latency {name}: n={entry.get('count', 0)} "
            f"p50={entry.get('p50')} p95={entry.get('p95')} "
            f"p99={entry.get('p99')} max={entry.get('max')}"
        )
    budgets = profile.get("budgets") or {}
    if budgets:
        lines.append("leakage-budget burn-down (bits):")
        for tenant, entry in sorted(budgets.items()):
            lines.append(
                f"  {tenant}: spent {entry.get('spent_bits', 0.0):.3f} / "
                f"budget {entry.get('budget_bits', 0.0):.3f} "
                f"({entry.get('remaining_bits', 0.0):.3f} remaining)"
            )
    return lines


# -- Prometheus text exposition ----------------------------------------------


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _fmt(value: float) -> str:
    # Integers render without a trailing .0; floats use repr (full
    # precision, parseable by the Prometheus text-format scanner).
    if isinstance(value, bool):  # pragma: no cover -- defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_exposition(profile: Mapping) -> str:
    """Serialize a ``profile`` section (``Profiler.as_dict()`` output or
    the ``profile`` key of a metrics document) in the Prometheus text
    exposition format (0.0.4)."""
    lines: List[str] = []
    subsystems = profile.get("subsystems") or {}
    if subsystems:
        lines.append("# HELP repro_profile_cycles_total Simulated cycles "
                     "attributed to the subsystem.")
        lines.append("# TYPE repro_profile_cycles_total counter")
        for name in sorted(subsystems):
            lines.append(
                f'repro_profile_cycles_total'
                f'{{subsystem="{_escape_label(name)}"}} '
                f"{_fmt(int(subsystems[name].get('cycles', 0)))}"
            )
        lines.append("# HELP repro_profile_wall_seconds_total Host "
                     "wall-clock seconds attributed to the subsystem.")
        lines.append("# TYPE repro_profile_wall_seconds_total counter")
        for name in sorted(subsystems):
            lines.append(
                f'repro_profile_wall_seconds_total'
                f'{{subsystem="{_escape_label(name)}"}} '
                f"{_fmt(int(subsystems[name].get('wall_ns', 0)) / 1e9)}"
            )
        lines.append("# HELP repro_profile_calls_total Instrumented "
                     "entries into the subsystem.")
        lines.append("# TYPE repro_profile_calls_total counter")
        for name in sorted(subsystems):
            lines.append(
                f'repro_profile_calls_total'
                f'{{subsystem="{_escape_label(name)}"}} '
                f"{_fmt(int(subsystems[name].get('calls', 0)))}"
            )
    latency = profile.get("latency") or {}
    if latency:
        lines.append("# HELP repro_profile_latency_cycles Request latency "
                     "in simulated cycles.")
        lines.append("# TYPE repro_profile_latency_cycles summary")
        for name in sorted(latency):
            entry = latency[name]
            label = _escape_label(name)
            for q in QUANTILES:
                key = f"p{round(q * 100):d}"
                lines.append(
                    f'repro_profile_latency_cycles{{name="{label}",'
                    f'quantile="{q}"}} {_fmt(int(entry.get(key, 0) or 0))}'
                )
            lines.append(
                f'repro_profile_latency_cycles_sum{{name="{label}"}} '
                f"{_fmt(int(entry.get('total', 0) or 0))}"
            )
            lines.append(
                f'repro_profile_latency_cycles_count{{name="{label}"}} '
                f"{_fmt(int(entry.get('count', 0) or 0))}"
            )
    budgets = profile.get("budgets") or {}
    if budgets:
        lines.append("# HELP repro_profile_tenant_budget_bits Leakage-"
                     "budget burn-down per tenant, in bits.")
        lines.append("# TYPE repro_profile_tenant_budget_bits gauge")
        for tenant in sorted(budgets):
            entry = budgets[tenant]
            label = _escape_label(tenant)
            for kind, key in (("budget", "budget_bits"),
                              ("spent", "spent_bits"),
                              ("remaining", "remaining_bits")):
                lines.append(
                    f'repro_profile_tenant_budget_bits{{tenant="{label}",'
                    f'kind="{kind}"}} {_fmt(float(entry.get(key, 0.0)))}'
                )
    return "\n".join(lines) + "\n" if lines else ""
