"""Execution timelines: hierarchical spans assembled from the hook stream.

The :class:`~repro.telemetry.recorder.TraceRecorder` hooks are a flat
stream -- one callback per charged step, per ``Miss[l]`` transition, per
completed ``mitigate``.  This module assembles that stream into the
*temporal structure* the paper argues about:

* a **run** span per execution (global clock 0 to the final time);
* a **mitigate** span per epoch, opened by
  :meth:`~repro.telemetry.recorder.TraceRecorder.on_mitigate_enter` and
  closed at settlement, carrying the estimate, the entry prediction, the
  final ``Miss[l]``, and the elapsed/padded split;
* a **padding** child span covering exactly the pure-padding tail of each
  epoch (the Fig. 6 padding interval, visible as a block in Perfetto);
* **command** leaf spans (one per charged step, interval
  ``[time - cost, time]``) with an optional **hardware** child span when
  the step resolved cache/TLB/branch accesses -- the access burst behind
  the step's cost.

Two sinks consume the assembly:

* :attr:`SpanRecorder.spans` -- the retained span list, fed to
  :func:`repro.telemetry.export.chrome_trace` for Perfetto; and
* an :class:`EventJournal` -- a streaming, append-only JSONL file with a
  bounded in-memory ring option, so arbitrarily long runs never blow
  memory (spans are journaled as they *close*, never buffered).

Every record carries the ``repro.telemetry/1`` schema via the journal
header line; see ``docs/TELEMETRY.md`` for the field-by-field schema.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..lattice import Label
from .metrics import SCHEMA
from .recorder import TraceRecorder

#: Span categories, also used as Chrome trace-event ``cat`` values.
CATEGORY_RUN = "run"
CATEGORY_COMMAND = "command"
CATEGORY_SLEEP = "sleep"
CATEGORY_MITIGATE = "mitigate"
CATEGORY_PADDING = "padding"
CATEGORY_HARDWARE = "hardware"


def json_safe(value: Any) -> Any:
    """Recursively convert telemetry attributes to JSON-encodable values
    (security :class:`~repro.lattice.Label`\\ s become their names)."""
    if isinstance(value, Label):
        return value.name
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


@dataclass
class Span:
    """One interval of an execution timeline, in global-clock cycles.

    ``track`` numbers the run the span belongs to (one recorder can watch
    many executions -- a leakage sweep, a benchmark stream); ``parent_id``
    gives the hierarchy within a track.  ``end`` is ``None`` while the
    span is still open.
    """

    span_id: int
    parent_id: Optional[int]
    track: int
    name: str
    category: str
    start: int
    end: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[int]:
        """``end - start``, or ``None`` while the span is open."""
        return None if self.end is None else self.end - self.start

    def as_record(self) -> Dict[str, Any]:
        """The journal representation (``type: span``)."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "track": self.track,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "attrs": json_safe(self.attrs),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Span":
        """Rebuild a span from its journal record."""
        return cls(
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            track=record.get("track", 0),
            name=record["name"],
            category=record["category"],
            start=record["start"],
            end=record.get("end"),
            attrs=dict(record.get("attrs", {})),
        )


class EventJournal:
    """Append-only JSONL sink with a bounded in-memory ring.

    Parameters
    ----------
    path:
        Optional file to stream records into, one JSON object per line.
        The first line is a header record carrying the schema version.
    ring_size:
        How many records to retain in memory (:meth:`records`).  ``None``
        keeps everything -- fine for tests and short runs; pass a bound
        for long executions so memory stays O(ring_size) while the file
        keeps the full stream.
    """

    def __init__(self, path: Optional[str] = None,
                 ring_size: Optional[int] = None):
        self._handle = open(path, "w") if path else None
        self.path = path
        self._ring: deque = deque(maxlen=ring_size)
        self.emitted = 0
        self.emit({"type": "header", "schema": SCHEMA, "kind": "journal"})

    def emit(self, record: Mapping[str, Any]) -> None:
        """Append one record (written to disk immediately when backed by
        a file)."""
        record = json_safe(record)
        self._ring.append(record)
        self.emitted += 1
        if self._handle is not None:
            self._handle.write(json.dumps(record) + "\n")

    def records(self) -> List[Dict[str, Any]]:
        """The retained records (the tail, when a ring bound is set)."""
        return list(self._ring)

    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_journal(path: str) -> List[Dict[str, Any]]:
    """Read a journal file back into records (header included)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def spans_from_journal(records: List[Dict[str, Any]]) -> List[Span]:
    """Rebuild the span list from journal records (``type: span`` only),
    ordered by start time within each track."""
    spans = [Span.from_record(r) for r in records if r.get("type") == "span"]
    spans.sort(key=lambda s: (s.track, s.start, s.span_id))
    return spans


class SpanRecorder(TraceRecorder):
    """Assembles the flat hook stream into hierarchical spans.

    Parameters
    ----------
    journal:
        Optional :class:`EventJournal`; spans are emitted as they close,
        plus ``run_start``/``run_end``/``miss_update``/``attack_*``
        records, so the journal is a faithful stream of the execution.
    detail:
        ``"commands"`` keeps one leaf span per charged step (full
        timelines, the default); ``"epochs"`` keeps only run and mitigate
        spans and aggregates step/hardware activity into their attributes
        -- the right setting for benchmark streams of hundreds of runs.
    keep_spans:
        Retain closed spans in :attr:`spans` (needed for Chrome trace
        export).  Turn off for journal-only recording on very long runs.
    """

    active = True

    def __init__(
        self,
        journal: Optional[EventJournal] = None,
        detail: str = "commands",
        keep_spans: bool = True,
    ):
        if detail not in ("commands", "epochs"):
            raise ValueError("detail must be 'commands' or 'epochs'")
        self.journal = journal
        self.detail = detail
        self.keep_spans = keep_spans
        #: Closed spans, in close order (children precede their parents).
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self._track = -1
        self._hw: Dict[str, int] = {}
        self._run_attrs: Dict[str, Any] = {}

    # -- span plumbing -------------------------------------------------------

    def _open_span(self, name: str, category: str, start: int,
                   parent: Optional[Span]) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            track=self._track,
            name=name,
            category=category,
            start=start,
        )
        self._next_id += 1
        return span

    def _close_span(self, span: Span, end: int) -> None:
        span.end = end
        if self.keep_spans:
            self.spans.append(span)
        if self.journal is not None:
            self.journal.emit(span.as_record())

    def _leaf(self, name: str, category: str, start: int, end: int,
              attrs: Dict[str, Any]) -> Span:
        span = self._open_span(name, category, start,
                               self._stack[-1] if self._stack else None)
        span.attrs.update(attrs)
        self._close_span(span, end)
        return span

    def _ensure_run(self, time: int = 0) -> Span:
        if not self._stack:
            self._track += 1
            root = self._open_span(f"run {self._track}", CATEGORY_RUN,
                                   min(time, 0) if time < 0 else 0, None)
            root.attrs.update(self._run_attrs)
            self._stack.append(root)
            if self.journal is not None:
                self.journal.emit({
                    "type": "run_start",
                    "track": self._track,
                    "attrs": self._run_attrs,
                })
        return self._stack[0]

    def _innermost(self) -> Span:
        return self._stack[-1]

    def _aggregate(self, key: str, amount: int = 1) -> None:
        """Bump an aggregate counter on the innermost open span
        (``epochs`` detail keeps totals instead of leaf spans)."""
        attrs = self._innermost().attrs
        attrs[key] = attrs.get(key, 0) + amount

    def _flush_hardware(self, start: int, end: int,
                        parent: Optional[Span]) -> Optional[Span]:
        if not self._hw:
            return None
        counts, self._hw = self._hw, {}
        span = self._open_span("hw burst", CATEGORY_HARDWARE, start, parent)
        span.attrs.update(counts)
        self._close_span(span, end)
        return span

    # -- interpreter-level hooks ---------------------------------------------

    def on_run_start(self, attrs: Mapping[str, Any]) -> None:
        # Stash the configuration; the root span opens on the first timed
        # event so a recorder can be reused across executions.
        self._run_attrs = dict(attrs)
        self._ensure_run()

    def on_step(self, kind, cost: int, time: int) -> None:
        self._ensure_run(time - cost)
        if self.detail == "epochs":
            self._aggregate("steps")
            self._aggregate("machine_cycles", cost)
            for key, count in self._hw.items():
                self._aggregate(f"hw.{key}", count)
            self._hw = {}
            return
        parent = self._innermost()
        span = self._open_span(kind.value, CATEGORY_COMMAND, time - cost,
                               parent)
        span.attrs["cost"] = cost
        # The hardware child closes first so journal order stays
        # child-before-parent (matching B/E nesting).
        self._flush_hardware(time - cost, time, span)
        self._close_span(span, time)

    def on_sleep(self, duration: int, time: int) -> None:
        self._ensure_run(time - duration)
        if self.detail == "epochs":
            self._aggregate("steps")
            self._aggregate("sleep_cycles", duration)
            return
        self._leaf("sleep", CATEGORY_SLEEP, time - duration, time,
                   {"duration": duration})

    def on_finish(self, result) -> None:
        root = self._ensure_run(result.time)
        while self._stack:
            span = self._stack.pop()
            if span is root:
                span.attrs.setdefault("final_time", result.time)
                span.attrs.setdefault("total_steps", result.steps)
                span.attrs.setdefault("mitigations",
                                      len(result.mitigations))
            self._close_span(span, result.time)
        if self.journal is not None:
            self.journal.emit({
                "type": "run_end",
                "track": self._track,
                "time": result.time,
                "steps": result.steps,
            })
        self._hw = {}
        self._run_attrs = {}

    # -- mitigation-runtime hooks --------------------------------------------

    def on_mitigate_enter(self, mit_id: str, level: Label, estimate: int,
                          prediction: int, time: int) -> None:
        self._ensure_run(time)
        span = self._open_span(mit_id, CATEGORY_MITIGATE, time,
                               self._innermost())
        span.attrs.update({
            "level": level.name,
            "estimate": estimate,
            "prediction": prediction,
        })
        self._stack.append(span)

    def on_miss_update(self, level: Optional[Label], misses: int) -> None:
        key = level.name if level is not None else "global"
        for span in reversed(self._stack):
            if span.category == CATEGORY_MITIGATE:
                span.attrs.setdefault("miss_updates", []).append(
                    {"level": key, "misses": misses}
                )
                break
        if self.journal is not None:
            self.journal.emit({
                "type": "miss_update",
                "track": self._track,
                "level": key,
                "misses": misses,
            })

    def on_mitigation(
        self,
        mit_id: str,
        level: Label,
        estimate: int,
        elapsed: int,
        padded: int,
        misses: int,
        pc_label: Optional[Label],
        end_time: int,
    ) -> None:
        self._ensure_run(end_time - padded)
        if (self._stack and self._stack[-1].category == CATEGORY_MITIGATE
                and self._stack[-1].name == mit_id):
            span = self._stack.pop()
        else:
            # No matching on_mitigate_enter (recorder fed by hand):
            # synthesize the epoch from the settlement record alone.
            span = self._open_span(mit_id, CATEGORY_MITIGATE,
                                   end_time - padded, self._innermost())
            span.attrs.update({"level": level.name, "estimate": estimate})
        span.attrs.update({
            "elapsed": elapsed,
            "padded": padded,
            "padding": padded - elapsed,
            "misses": misses,
        })
        if pc_label is not None:
            span.attrs["pc"] = pc_label.name
        if padded > elapsed:
            pad = self._open_span("padding", CATEGORY_PADDING,
                                  span.start + elapsed, span)
            self._close_span(pad, end_time)
        self._close_span(span, end_time)

    # -- hardware hooks ------------------------------------------------------

    def on_cache_access(self, component: str, hit: bool) -> None:
        key = f"{component}.{'hits' if hit else 'misses'}"
        self._hw[key] = self._hw.get(key, 0) + 1

    def on_branch(self, taken: bool, mispredicted: bool) -> None:
        key = ("branch.mispredictions" if mispredicted else "branch.hits")
        self._hw[key] = self._hw.get(key, 0) + 1

    def on_bypass(self, accesses: int) -> None:
        self._hw["bypass.steps"] = self._hw.get("bypass.steps", 0) + 1
        self._hw["bypass.accesses"] = (
            self._hw.get("bypass.accesses", 0) + accesses
        )

    # -- adversary hooks -----------------------------------------------------

    def on_attack_sample(self, attack: str, probe: str, time: int) -> None:
        if self.journal is not None:
            self.journal.emit({
                "type": "attack_sample",
                "attack": attack,
                "probe": probe,
                "time": time,
            })

    def on_attack_stat(self, attack: str, stat: str, value) -> None:
        if self.journal is not None:
            self.journal.emit({
                "type": "attack_stat",
                "attack": attack,
                "stat": stat,
                "value": value,
            })
