"""Command-line interface: ``python -m repro <command> ...``.

Subcommands
-----------

check
    Typecheck a program (after label inference)::

        python -m repro check prog.tl --gamma h=H,l=L

    ``--all`` switches to the error-recovering checker, printing *every*
    type-system violation with ``line:col`` spans instead of stopping at
    the first.

lint
    Run the full static-analysis engine: all type-system violations plus
    the timing-channel lints (TL0xx rule catalog, docs/ANALYSIS.md) and
    the static Theorem 2 leakage audit, over one or more programs::

        python -m repro lint examples/lint/*.tl --format sarif

    Programs may carry ``// gamma: h=H,l=L`` style directives so a corpus
    needs no per-file flags.  Exit 0 clean, 1 findings, 2 bad input.

infer
    Print the program with inferred timing labels.

fix
    Auto-insert mitigate commands until the program typechecks, and print
    the repaired program.

run
    Execute on a simulated hardware model and print time, events, and
    mitigations::

        python -m repro run prog.tl --gamma h=H,l=L --set h=9 --set l=0 \\
            --hardware partitioned --scheme doubling --penalty local

serve
    Run a multi-tenant workload through the timing-safe gateway
    (docs/SERVICE.md) and print the per-tenant leakage audit::

        python -m repro serve --spec examples/service/basic.json \\
            --metrics-out -

    Exit 0 when every tenant's observed leakage stays within its static
    Theorem 2 bound, 1 on an audit violation, 2 on a bad workload spec.

leakage
    Measure Definition 1 leakage exhaustively over one secret's value
    range, plus the Theorem 2 variation count and the Sec. 7 bound::

        python -m repro leakage prog.tl --gamma h=H,l=L --set l=0 \\
            --secret h --values 0..32

contract
    Run the executable software/hardware contract against a hardware
    model::

        python -m repro contract partitioned --levels L,M,H

report
    Render a human audit report from a telemetry document (a metrics
    JSON from ``--metrics-out`` or a JSONL journal from
    ``--journal-out``)::

        python -m repro report benchmarks/results/fig7_metrics.json

bench
    Run the perf-trajectory suites (docs/PROFILING.md) and write
    ``BENCH_core.json`` / ``BENCH_service.json``; with ``--compare`` the
    measured (or ``--current``) numbers are diffed against a committed
    baseline::

        python -m repro bench --suite core --compare BENCH_core.json

    Exit 0 within tolerance, 1 on a perf regression, 2 on bad input.

Programs use the concrete syntax of :mod:`repro.lang.parser`; the security
lattice defaults to ``L <= H`` and ``--levels a,b,c`` builds a chain.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from . import __version__
from .analysis.audit import DEFAULT_HORIZON as ANALYSIS_HORIZON
from .api import compile_program
from .hardware import (
    REGISTRY,
    HardwareRegistryError,
    make_hardware,
    paper_machine,
    run_contract_suite,
)
from .lang.parser import DEFAULT_LATTICE, parse
from .lang.pretty import pretty
from .lattice import Lattice, chain
from .machine.memory import Memory
from .quantitative import (
    leakage_bound,
    measure_leakage,
    secret_variants,
    timing_variations,
)
from .semantics.mitigation import SCHEME_CHOICES, MitigationState, make_scheme
from .telemetry import (
    DynamicLeakageMeter,
    EventJournal,
    Profiler,
    RecordingTraceRecorder,
    ReportError,
    SpanRecorder,
    TeeRecorder,
    load_document,
    prometheus_exposition,
    render_report,
    write_chrome_trace,
)
from .typesystem import (
    SecurityEnvironment,
    TypingError,
    auto_mitigate,
    infer_labels,
    typecheck,
)

#: Every accepted hardware name (canonical + aliases), registry-driven.
HARDWARE_CHOICES = REGISTRY.choices()


def _lattice(args) -> Lattice:
    if getattr(args, "levels", None):
        return chain(tuple(args.levels.split(",")))
    return DEFAULT_LATTICE


def _gamma(args, lattice: Lattice) -> SecurityEnvironment:
    bindings = {}
    spec = args.gamma or ""
    for item in filter(None, spec.split(",")):
        if "=" not in item:
            raise SystemExit(
                f"--gamma entries look like name=LEVEL, got {item!r}"
            )
        name, level = item.split("=", 1)
        if level not in lattice:
            raise SystemExit(
                f"unknown level {level!r}; lattice levels: "
                f"{[l.name for l in lattice]}"
            )
        bindings[name.strip()] = lattice[level]
    return SecurityEnvironment(lattice, bindings)


def _gamma_spec(args) -> Dict[str, str]:
    """The raw ``--gamma`` bindings as name -> level-name strings.

    The analysis engine validates level names itself against the
    (possibly directive-chosen) lattice, so no lattice is needed here.
    """
    bindings: Dict[str, str] = {}
    spec = getattr(args, "gamma", "") or ""
    for item in filter(None, (part.strip() for part in spec.split(","))):
        if "=" not in item:
            raise SystemExit(
                f"--gamma entries look like name=LEVEL, got {item!r}"
            )
        name, level = item.split("=", 1)
        bindings[name.strip()] = level.strip()
    return bindings


def _memory(sets: Optional[List[str]]) -> Memory:
    values: Dict[str, object] = {}
    for item in sets or []:
        if "=" not in item:
            raise SystemExit(f"--set entries look like name=value, got {item!r}")
        name, value = item.split("=", 1)
        if ":" in value:
            values[name] = [int(v) for v in value.split(":")]
        else:
            values[name] = int(value)
    return Memory(values)


def _load(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _compiled(args, check=True):
    lattice = _lattice(args)
    gamma = _gamma(args, lattice)
    return compile_program(
        _load(args.program), gamma=gamma, lattice=lattice, check=check,
        require_cache_labels=getattr(args, "require_cache_labels", False),
    )


def cmd_check(args) -> int:
    """`check`: typecheck; 0 when well-typed, 1 with the error printed.

    With ``--all``, the error-recovering checker reports every violation
    (type-system rules only; use `lint` for the full rule catalog).
    """
    if getattr(args, "all", False):
        return _check_all(args)
    try:
        compiled = _compiled(args)
    except TypingError as err:
        print(f"ILL-TYPED: {err}")
        return 1
    print(f"well-typed; timing end-label: {compiled.typing.end_label}")
    for mit_id, pc in compiled.typing.mitigate_pc.items():
        level = compiled.typing.mitigate_level[mit_id]
        print(f"  mitigate {mit_id}: pc={pc}, level={level}")
    return 0


def _check_all(args) -> int:
    """`check --all`: collect every type-system violation in one run."""
    from .analysis import analyze_source, render_text
    from .analysis.engine import DirectiveError, LintOptions

    options = LintOptions(
        gamma=_gamma_spec(args),
        levels=tuple(args.levels.split(",")) if args.levels else None,
        require_cache_labels=getattr(args, "require_cache_labels", False),
        lints=False,
        audit=False,
    )
    try:
        result = analyze_source(_load(args.program), path=args.program,
                                options=options)
    except (OSError, DirectiveError) as err:
        print(f"repro check: {err}", file=sys.stderr)
        return 2
    if result.fatal:
        for diag in result.diagnostics:
            print(f"repro check: {diag.message}", file=sys.stderr)
        return 2
    if result.diagnostics:
        sources = {args.program: result.source}
        for line in render_text(result.diagnostics, sources):
            print(line)
        return 1
    print(f"well-typed; timing end-label: {result.typing.end_label}")
    for mit_id, pc in result.typing.mitigate_pc.items():
        level = result.typing.mitigate_level[mit_id]
        print(f"  mitigate {mit_id}: pc={pc}, level={level}")
    return 0


def _list_rules() -> int:
    """`lint --list-rules`: dump the whole catalog from the registry."""
    from .analysis.rules import KIND_CODES, RULES

    kind_of = {code: kind for kind, code in KIND_CODES.items()}
    for rule in RULES.values():
        line = (f"{rule.code}  {rule.severity.value:<7}  "
                f"{rule.name:<28}  {rule.summary}")
        print(line)
        if rule.code in kind_of:
            print(f"{'':40}(typing kind: {kind_of[rule.code]!r})")
    print(f"{len(RULES)} rules; catalog: docs/ANALYSIS.md")
    return 0


def _parse_codes(spec: Optional[str], flag: str) -> Optional[frozenset]:
    """Validate a ``--select``/``--ignore`` CODE[,CODE...] list.

    Unknown codes are a configuration error: print the offenders (with a
    nearest-match suggestion from the catalog) to stderr and exit 2,
    matching the other bad-input paths.
    """
    import difflib

    from .analysis.rules import RULES

    if spec is None:
        return None
    codes = frozenset(
        code.strip().upper()
        for code in spec.split(",") if code.strip()
    )
    unknown = sorted(codes - set(RULES))
    if unknown:
        hints = []
        for code in unknown:
            close = difflib.get_close_matches(code, list(RULES), n=1,
                                              cutoff=0.0)
            hints.append(f"{code} (did you mean {close[0]}?)" if close
                         else code)
        print(
            f"repro lint: {flag}: unknown rule code(s) "
            f"{', '.join(hints)} (see `repro lint --list-rules`)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return codes


def cmd_lint(args) -> int:
    """`lint`: the multi-error static-analysis engine over >= 1 programs.

    Exit codes: 0 no findings, 1 findings reported, 2 bad input (a file
    that cannot be read or parsed, or a bad configuration).
    """
    from .analysis import render_json, render_sarif, render_text
    from .analysis.engine import (
        DirectiveError, LintOptions, analyze_source,
    )
    from .analysis.render import dump

    if args.list_rules:
        return _list_rules()
    if not args.programs:
        print("repro lint: no programs given "
              "(or use --list-rules for the catalog)", file=sys.stderr)
        return 2

    # Tri-state inference: --infer forces it on (even past a file's
    # '// infer: off' directive), --no-infer forces it off, and neither
    # follows the directives.
    infer = True if args.infer else (False if args.no_infer else None)
    options = LintOptions(
        gamma=_gamma_spec(args),
        levels=tuple(args.levels.split(",")) if args.levels else None,
        adversary=args.adversary,
        infer=infer,
        require_cache_labels=args.require_cache_labels,
        audit=True,
        horizon=args.horizon,
        explain=args.explain,
        select=_parse_codes(args.select, "--select"),
        ignore=_parse_codes(args.ignore, "--ignore") or frozenset(),
        bits_budget=args.bits_budget,
    )
    results = []
    bad_input = False
    for path in args.programs:
        try:
            source = _load(path)
        except OSError as err:
            print(f"repro lint: {err}", file=sys.stderr)
            bad_input = True
            continue
        try:
            results.append(analyze_source(source, path=path,
                                          options=options))
        except DirectiveError as err:
            print(f"repro lint: {path}: {err}", file=sys.stderr)
            bad_input = True

    diagnostics = [d for res in results for d in res.diagnostics]
    sources = {res.path: res.source for res in results}
    audits = {
        res.path: res.audit for res in results
        if res.audit is not None and res.audit.sites
    }

    if args.format == "text":
        lines = render_text(diagnostics, sources,
                            audits if args.audit else None)
        text = "\n".join(lines) + "\n"
    elif args.format == "json":
        text = dump(render_json(diagnostics,
                                audits if args.audit else None))
    else:
        text = dump(render_sarif(diagnostics))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"{args.format} report written to {args.output}")
    else:
        print(text, end="")

    if bad_input or any(res.fatal for res in results):
        return 2
    return 1 if diagnostics else 0


def cmd_flow(args) -> int:
    """`flow`: export the dataflow layer's graphs as Graphviz DOT.

    ``--dot cfg`` renders the control-flow graph (blocks, branch/loop/
    mitigate edges); ``--dot tdg`` renders the timing-dependence graph
    (variables with their Gamma levels, value edges, timing taint).
    ``--costs MODEL`` annotates CFG nodes with their static cycle
    interval on that hardware model.  Exit codes: 0 rendered, 2 bad
    input.
    """
    from .analysis.cfg import cfg_to_dot
    from .analysis.cost import compute_cost
    from .analysis.engine import (
        DirectiveError, LintOptions, analyze_source,
    )
    from .analysis.flows import tdg_to_dot

    options = LintOptions(
        gamma=_gamma_spec(args),
        levels=tuple(args.levels.split(",")) if args.levels else None,
        lints=False,
        audit=False,
    )
    try:
        source = _load(args.program)
        result = analyze_source(source, path=args.program, options=options)
    except (OSError, DirectiveError) as err:
        print(f"repro flow: {err}", file=sys.stderr)
        return 2
    if result.fatal or result.cfg is None or result.tdg is None:
        for diag in result.diagnostics:
            print(f"repro flow: {diag.location()}: {diag.message}",
                  file=sys.stderr)
        return 2
    if args.dot == "cfg":
        costs = None
        if args.costs:
            try:
                costs = compute_cost(result.program, hardware=args.costs)
            except HardwareRegistryError as err:
                print(f"repro flow: {err}", file=sys.stderr)
                return 2
        text = cfg_to_dot(result.cfg, costs=costs) + "\n"
    else:
        if args.costs:
            print("repro flow: --costs only applies to --dot cfg",
                  file=sys.stderr)
            return 2
        text = tdg_to_dot(result.tdg) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"{args.dot} DOT written to {args.output}")
    else:
        print(text, end="")
    return 0


def _cost_models(specs: Optional[List[str]]) -> List[str]:
    """Resolve ``--hardware`` picks (aliases ok) to canonical model names;
    default is every registered model."""
    if not specs:
        return list(REGISTRY.names())
    names: List[str] = []
    for spec in specs:
        name = REGISTRY.get(spec).name  # raises HardwareRegistryError
        if name not in names:
            names.append(name)
    return names


def cmd_cost(args) -> int:
    """`cost`: static interval cycle bounds per program and mitigate site.

    For each program, prints the whole-program unpadded-cycle interval
    and a per-mitigate-site table of ``[lo, hi]`` x hardware model x the
    site's marginal Theorem 2 bits from the static audit.  ``--format
    sarif`` emits the cost-backed findings (TL021-TL025) as a SARIF log.
    Exit codes: 0 clean, 1 cost-backed findings, 2 bad input.
    """
    from .analysis import render_sarif
    from .analysis.cost import compute_cost
    from .analysis.engine import (
        DirectiveError, LintOptions, analyze_source,
    )
    from .analysis.render import dump, model_rows
    from .analysis.rules import COST_RULE_CODES

    try:
        models = _cost_models(args.hardware)
    except HardwareRegistryError as err:
        print(f"repro cost: {err}", file=sys.stderr)
        return 2

    options = LintOptions(
        gamma=_gamma_spec(args),
        levels=tuple(args.levels.split(",")) if args.levels else None,
        adversary=args.adversary,
        horizon=args.horizon,
        select=frozenset(COST_RULE_CODES) | {"TL000"},
    )

    bad_input = False
    findings = []
    lines: List[str] = []
    programs = []
    for path in args.programs:
        try:
            source = _load(path)
        except OSError as err:
            print(f"repro cost: {err}", file=sys.stderr)
            bad_input = True
            continue
        try:
            result = analyze_source(source, path=path, options=options)
        except DirectiveError as err:
            print(f"repro cost: {path}: {err}", file=sys.stderr)
            bad_input = True
            continue
        if result.fatal or result.program is None:
            for diag in result.diagnostics:
                print(f"repro cost: {diag.location()}: {diag.message}",
                      file=sys.stderr)
            bad_input = True
            continue

        reports = {
            model: compute_cost(result.program, hardware=model)
            for model in models
        }
        diags = [d for d in result.diagnostics if d.code != "TL000"]
        findings.extend(diags)
        bits = {
            site.mit_id: site.contribution_bits
            for site in (result.audit.sites if result.audit else ())
        }
        programs.append({
            "path": path,
            "hardware": {
                model: report.as_dict()
                for model, report in reports.items()
            },
            "sites": [
                {
                    "mit_id": site.mit_id,
                    "line": site.span.line,
                    "level": site.level,
                    "budget": site.budget,
                    "marginal_bits": bits.get(site.mit_id, 0.0),
                    "intervals": {
                        model: [
                            reports[model].mitigates[site.mit_id]
                            .interval.lo,
                            reports[model].mitigates[site.mit_id]
                            .interval.hi,
                        ]
                        for model in models
                        if site.mit_id in reports[model].mitigates
                    },
                }
                for site in reports[models[0]].mitigates.values()
            ],
            "diagnostics": [d.as_dict() for d in diags],
        })

        lines.append(f"{path}: static cycle-cost analysis")
        lines.append("  <program> (unpadded cycles):")
        lines.extend(model_rows(
            {model: reports[model].program for model in models}
        ))
        for site in reports[models[0]].mitigates.values():
            budget = "?" if site.budget is None else site.budget
            lines.append(
                f"  mitigate {site.mit_id} (line {site.span.line}, "
                f"level {site.level}, budget {budget}): "
                f"+{bits.get(site.mit_id, 0.0):.2f} bits"
            )
            lines.extend(model_rows({
                model: reports[model].mitigates[site.mit_id].interval
                for model in models
                if site.mit_id in reports[model].mitigates
            }))
        for note in reports[models[0]].notes:
            lines.append(
                f"  widened: line {note.span.line}: {note.message}"
            )
        for diag in diags:
            lines.append(
                f"  {diag.location()}: {diag.severity}[{diag.code}]: "
                f"{diag.message}"
            )

    if args.format == "text":
        if not lines:
            lines = ["no programs analyzed"]
        count = len(findings)
        lines.append(
            f"{count} cost-backed finding{'s' if count != 1 else ''}"
            if count else "clean: no cost-backed findings"
        )
        text = "\n".join(lines) + "\n"
    elif args.format == "json":
        text = dump({
            "schema": "repro.cost/1",
            "hardware": models,
            "programs": programs,
        })
    else:
        text = dump(render_sarif(findings))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"{args.format} report written to {args.output}")
    else:
        print(text, end="")

    if bad_input:
        return 2
    return 1 if findings else 0


def _service_quantiles(spec) -> dict:
    """Run one gateway pass and pull per-tenant measured latency
    quantiles (p50/p95/p99) plus the audit verdict."""
    from .service import Gateway, audit_service
    from .service.audit import quantile

    result = Gateway(spec).serve()
    audit = audit_service(result)
    tenants = {}
    for name in sorted(result.stats):
        latencies = result.stats[name].latencies
        tenants[name] = {
            "p50": quantile(latencies, 0.50),
            "p95": quantile(latencies, 0.95),
            "p99": quantile(latencies, 0.99),
            "completed": result.stats[name].completed,
            "observed_bits": round(audit.tenants[name].observed_bits, 4),
            "within_bound": audit.tenants[name].within_bound,
        }
    return {
        "policy": result.policy.describe(),
        "makespan": result.makespan,
        "audit_ok": audit.ok,
        "tenants": tenants,
    }


def cmd_tune(args) -> int:
    """`tune`: synthesize the cheapest mitigation policy under a bits
    budget.

    Branch-and-bound over mitigate placement x prediction scheme x
    per-site budgets, minimizing the static padded-cost objective subject
    to ``channel capacity <= --bits-budget`` on every requested hardware
    model.  Emits the rewritten program (``--emit-program``) and a
    recommended workload-spec fragment (``--emit-spec``); ``--objective
    service`` replays a ``--spec`` workload under the baseline and the
    recommended policy and reports measured latency p50/p95/p99.
    Exit codes: 0 feasible policy found, 1 infeasible, 2 bad input.
    """
    from .analysis.engine import (
        DirectiveError, LintOptions, analyze_source,
    )
    from .analysis.render import dump, model_rows
    from .analysis.synthesize import synthesize
    from .service import WorkloadError, WorkloadSpec

    if args.bits_budget < 0:
        print("repro tune: --bits-budget must be >= 0", file=sys.stderr)
        return 2
    try:
        models = _cost_models(args.models)
    except HardwareRegistryError as err:
        print(f"repro tune: {err}", file=sys.stderr)
        return 2
    if args.objective == "service" and not args.spec:
        print("repro tune: --objective service needs --spec FILE",
              file=sys.stderr)
        return 2

    try:
        source = _load(args.program)
    except OSError as err:
        print(f"repro tune: {err}", file=sys.stderr)
        return 2
    options = LintOptions(
        gamma=_gamma_spec(args),
        levels=tuple(args.levels.split(",")) if args.levels else None,
        adversary=args.adversary,
        lints=False,
        audit=False,
        horizon=args.horizon,
    )
    try:
        result = analyze_source(source, path=args.program, options=options)
    except DirectiveError as err:
        print(f"repro tune: {args.program}: {err}", file=sys.stderr)
        return 2
    if result.fatal or result.program is None or result.gamma is None:
        for diag in result.diagnostics:
            print(f"repro tune: {diag.location()}: {diag.message}",
                  file=sys.stderr)
        return 2

    observer = (
        result.lattice[args.adversary] if args.adversary else None
    )
    schemes = tuple(args.scheme) if args.scheme else (
        "doubling", "polynomial"
    )
    tuned = synthesize(
        result.program, result.gamma, args.bits_budget,
        models=models, schemes=schemes, observer=observer,
        horizon=args.horizon,
    )
    doc = tuned.as_dict()
    doc["program_path"] = args.program

    spec = None
    if args.spec:
        try:
            raw = json.loads(_load(args.spec))
            if not isinstance(raw, dict):
                raise WorkloadError("workload spec must be a JSON object")
            spec = WorkloadSpec.from_dict(raw)
        except (OSError, json.JSONDecodeError, WorkloadError) as err:
            print(f"repro tune: {err}", file=sys.stderr)
            return 2
        doc["spec"] = tuned.spec_fragment(
            tenants=[t.name for t in spec.tenants]
        )
    if args.objective == "service" and spec is not None:
        fragment = tuned.spec_fragment()
        tuned_spec = spec.with_policy(
            policy=fragment["policy"], quantum=fragment["quantum"],
            scheme=fragment["scheme"], penalty=fragment["penalty"],
        )
        doc["service"] = {
            "baseline": _service_quantiles(spec),
            "tuned": _service_quantiles(tuned_spec),
        }

    winner = tuned.best if tuned.feasible else None
    if args.emit_program:
        if winner is None:
            print("repro tune: no feasible policy; --emit-program skipped",
                  file=sys.stderr)
        else:
            with open(args.emit_program, "w") as handle:
                handle.write(winner.source + "\n")
    if args.emit_spec:
        fragment = tuned.spec_fragment(
            tenants=[t.name for t in spec.tenants] if spec else ()
        )
        with open(args.emit_spec, "w") as handle:
            handle.write(json.dumps(fragment, indent=2) + "\n")

    if args.format == "json":
        print(dump(doc), end="")
        return 0 if tuned.feasible else 1

    def show(candidate, tag):
        budgets = ",".join(str(b) for b in candidate.budgets) or "-"
        objective = ("unbounded" if candidate.objective is None
                     else candidate.objective)
        print(f"  {tag}: {candidate.placement}/{candidate.scheme} "
              f"budgets=({budgets})  objective {objective} padded cycles"
              f"{'' if candidate.feasible else '  INFEASIBLE'}")
        print("    capacity (bits) per model:")
        for line in model_rows({
            model: ("saturated" if bits == float("inf")
                    else f"{bits:.3f}")
            for model, bits in sorted(candidate.capacity.items())
        }, indent="      "):
            print(line)

    print(f"{args.program}: mitigation-policy synthesis "
          f"(budget {args.bits_budget:g} bits, "
          f"models {', '.join(models)})")
    show(tuned.baseline, "baseline")
    if winner is not None:
        show(winner, "best")
        print(f"  quantum: {winner.quantum} cycles "
              f"(quantized release policy, {winner.scheme} scheme)")
        if tuned.improved:
            print(f"  improved: objective {winner.objective} < "
                  f"baseline {tuned.baseline.objective}")
        print("  program:")
        for line in winner.source.splitlines():
            print(f"    {line}")
    else:
        print(f"  no feasible policy within {args.bits_budget:g} bits "
              f"(explored {tuned.explored}, pruned {tuned.pruned})")
        for placement, why in sorted(tuned.skipped_placements.items()):
            print(f"  skipped {placement}: {why}")
    print(f"  search: explored {tuned.explored}, pruned {tuned.pruned}")
    if "service" in doc:
        for tag in ("baseline", "tuned"):
            run = doc["service"][tag]
            verdict = "ok" if run["audit_ok"] else "VIOLATED"
            print(f"  service[{tag}]: {run['policy']}  "
                  f"makespan {run['makespan']}  audit {verdict}")
            for name, t in run["tenants"].items():
                print(f"    {name}: latency p50 {t['p50']} "
                      f"p95 {t['p95']} p99 {t['p99']}  "
                      f"leakage {t['observed_bits']} bits")
    if args.emit_program and winner is not None:
        print(f"  program written to {args.emit_program}")
    if args.emit_spec:
        print(f"  spec fragment written to {args.emit_spec}")
    return 0 if tuned.feasible else 1


def cmd_infer(args) -> int:
    """`infer`: print the program with inferred timing labels."""
    compiled = _compiled(args, check=False)
    print(pretty(compiled.program))
    return 0


def cmd_fix(args) -> int:
    """`fix`: auto-insert mitigate commands and print the repaired program."""
    lattice = _lattice(args)
    gamma = _gamma(args, lattice)
    program = infer_labels(parse(_load(args.program), lattice), gamma)
    fixed, placements = auto_mitigate(program, gamma)
    typecheck(fixed, gamma)
    for placement in placements:
        print(f"// inserted: {placement.describe()}")
    print(pretty(fixed))
    return 0


def cmd_run(args) -> int:
    """`run`: execute on a hardware model; print time/events/mitigations.

    ``--trace`` prints a telemetry summary; ``--metrics-out FILE`` writes
    the full telemetry JSON document (schema ``repro.telemetry/1``,
    see docs/TELEMETRY.md), including the dynamic Theorem 2 accounting.
    ``--trace-out FILE`` writes a Chrome trace-event JSON (open it in
    Perfetto or chrome://tracing); ``--journal-out FILE`` streams the
    execution timeline as JSONL (consumed by ``repro report``).
    """
    compiled = _compiled(args, check=not args.unchecked)
    metrics_recorder = None
    meter = None
    if args.trace or args.metrics_out:
        meter = DynamicLeakageMeter(compiled.lattice)
        metrics_recorder = RecordingTraceRecorder(meter=meter)
    span_recorder = None
    journal = None
    if args.trace_out or args.journal_out:
        if args.journal_out:
            journal = EventJournal(args.journal_out)
        span_recorder = SpanRecorder(
            journal=journal, keep_spans=bool(args.trace_out)
        )
    if metrics_recorder is not None and span_recorder is not None:
        recorder = TeeRecorder(metrics_recorder, span_recorder)
    else:
        recorder = metrics_recorder or span_recorder
    profiler = Profiler() if (args.profile or args.prom_out) else None
    mitigation = MitigationState(
        scheme=make_scheme(args.scheme), policy=args.penalty
    )
    result = compiled.run(
        _memory(args.set),
        hardware=args.hardware,
        params=paper_machine(),
        mitigation=mitigation,
        max_steps=args.max_steps,
        recorder=recorder,
        profiler=profiler,
    )
    print(f"time: {result.time} cycles ({result.steps} steps)")
    if result.events:
        print("events:")
        for event in result.events:
            print(f"  {event}")
    if result.mitigations:
        print(f"mitigations ({mitigation.describe()}):")
        for record in result.mitigations:
            print(f"  {record.mit_id}: duration {record.duration} "
                  f"(level {record.level}, done at {record.end_time})")
    for name in sorted(compiled.gamma):
        print(f"final {name} = {result.memory.value_of(name)}")
    if profiler is not None and args.profile:
        print("profile:")
        for line in profiler.summary_lines():
            print(f"  {line}")
    if profiler is not None and args.prom_out:
        with open(args.prom_out, "w") as handle:
            handle.write(prometheus_exposition(profiler.as_dict()))
        print(f"prometheus exposition written to {args.prom_out}")
    if metrics_recorder is not None:
        if args.trace:
            print("telemetry:")
            for line in metrics_recorder.registry.summary_lines():
                print(f"  {line}")
            print(
                f"  leakage: {meter.observed_variations} observed "
                f"variation(s) ({meter.observed_bits:.3f} bits) <= "
                f"static bound {meter.static_bound_bits():.3f} bits: "
                f"{'ok' if meter.holds() else 'VIOLATED'}"
            )
        if args.metrics_out:
            metrics_recorder.registry.write(
                args.metrics_out,
                leakage=meter.as_dict(),
                profile=(profiler.as_dict() if profiler is not None
                         else None),
            )
            print(f"metrics written to {args.metrics_out}")
    if span_recorder is not None:
        if journal is not None:
            journal.close()
            print(f"journal written to {args.journal_out} "
                  f"({journal.emitted} records)")
        if args.trace_out:
            write_chrome_trace(args.trace_out, span_recorder.spans)
            print(f"trace written to {args.trace_out} "
                  f"({len(span_recorder.spans)} spans)")
    if meter is not None and not meter.holds():
        return 1
    return 0


def cmd_serve(args) -> int:
    """`serve`: run a multi-tenant workload through the gateway.

    Prints a human summary plus the per-tenant audit verdict;
    ``--metrics-out`` writes the full telemetry document with the
    ``service`` section (``-`` sends the JSON to stdout and the summary
    to stderr).  Exit 0 when the audit holds for every tenant, 1 on a
    violation, 2 on a bad spec.
    """
    from .service import (
        Gateway,
        WorkloadError,
        WorkloadSpec,
        audit_service,
        service_document,
    )

    try:
        raw = json.loads(_load(args.spec))
        if not isinstance(raw, dict):
            raise WorkloadError("workload spec must be a JSON object")
        spec = WorkloadSpec.from_dict(raw)
    except (OSError, json.JSONDecodeError, WorkloadError) as err:
        print(f"repro serve: {err}", file=sys.stderr)
        return 2
    overrides = {
        "policy": args.policy,
        "requests": args.requests,
        "seed": args.seed,
        "quantum": args.quantum,
        "workers": args.workers,
    }
    for name, value in overrides.items():
        if value is not None:
            setattr(spec, name, value)
    try:
        spec.validate()
    except WorkloadError as err:
        print(f"repro serve: {err}", file=sys.stderr)
        return 2

    span_recorder = None
    journal = None
    if args.trace_out or args.journal_out:
        if args.journal_out:
            journal = EventJournal(args.journal_out)
        span_recorder = SpanRecorder(
            journal=journal, keep_spans=bool(args.trace_out)
        )
    profiler = Profiler() if (args.profile or args.prom_out) else None
    result = Gateway(spec, recorder=span_recorder,
                     profiler=profiler).serve()
    audit = audit_service(result)
    doc = service_document(result, audit)
    if profiler is not None:
        doc["profile"] = profiler.as_dict()

    to_stdout = args.metrics_out == "-"
    out = sys.stderr if to_stdout else sys.stdout

    def say(line: str = "") -> None:
        print(line, file=out)

    counts = doc["service"]["requests"]
    say(f"policy {result.policy.describe()}  workers {spec.workers}  "
        f"seed {spec.seed}")
    say(f"requests: {counts['submitted']} submitted, "
        f"{counts['completed']} completed, {counts['rejected']} rejected, "
        f"{counts['timed_out']} timed out ({result.retries} retries)")
    say(f"makespan: {result.makespan} cycles  "
        f"throughput: {result.throughput_per_mcycle():.1f} req/Mcycle")
    for name, tenant in doc["service"]["tenants"].items():
        t_audit = audit.tenants[name]
        lat = tenant["latency"]
        verdict = "ok" if t_audit.within_bound else "VIOLATED"
        say(f"  {name} ({tenant['app']}): "
            f"{tenant['requests']['completed']} ok, "
            f"latency p50 {lat['p50']} p99 {lat['p99']}, "
            f"leakage {t_audit.observed_bits:.3f} <= "
            f"{t_audit.bound_bits:.3f} bits: {verdict}")
        if t_audit.probe is not None:
            say(f"    distinguisher "
                f"{t_audit.probe.class_a} vs {t_audit.probe.class_b}: "
                f"advantage {t_audit.probe.advantage:+.3f}")
    for probe in audit.cross_tenant:
        say(f"  cross-tenant {probe.observer} observing {probe.victim}: "
            f"advantage {probe.probe.advantage:+.3f}")
    if audit.ok:
        say("audit: OK (every tenant within its Theorem 2 bound)")
    else:
        say("audit: VIOLATED")
    if profiler is not None and args.profile:
        say("profile:")
        for line in profiler.summary_lines():
            say(f"  {line}")
    if profiler is not None and args.prom_out:
        with open(args.prom_out, "w") as handle:
            handle.write(prometheus_exposition(profiler.as_dict()))
        say(f"prometheus exposition written to {args.prom_out}")

    if args.metrics_out:
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if to_stdout:
            sys.stdout.write(text)
        else:
            with open(args.metrics_out, "w") as handle:
                handle.write(text)
            say(f"metrics written to {args.metrics_out}")
    if span_recorder is not None:
        if journal is not None:
            journal.close()
            say(f"journal written to {args.journal_out} "
                f"({journal.emitted} records)")
        if args.trace_out:
            write_chrome_trace(args.trace_out, span_recorder.spans)
            say(f"trace written to {args.trace_out} "
                f"({len(span_recorder.spans)} spans)")
    return 0 if audit.ok else 1


def cmd_leakage(args) -> int:
    """`leakage`: exhaustive Q / log|V| / bound over one secret's range.

    ``--trace``/``--metrics-out`` mirror ``repro run``: one telemetry
    document covers the *whole* sweep (every run of both the Definition 1
    and the Definition 2 passes), with the dynamic Theorem 2 account
    computed against the swept secret's level and a ``sweep`` section
    recording both sides of the theorem.
    """
    compiled = _compiled(args, check=not args.unchecked)
    lattice = compiled.lattice
    base = _memory(args.set)
    # Scalars mentioned in Gamma but absent from --set default to 0.
    values = {name: 0 for name in compiled.gamma}
    for name in base.names():
        value = base.value_of(name)
        values[name] = list(value) if base.is_array(name) else value
    base = Memory(values)
    lo, hi = (int(x) for x in args.values.split(".."))
    variants = secret_variants(base, ({args.secret: v} for v in range(lo, hi)))
    adversary = lattice[args.adversary] if args.adversary else lattice.bottom
    levels = [compiled.gamma[args.secret]]
    env = make_hardware(args.hardware, lattice, paper_machine())
    recorder = None
    meter = None
    if args.trace or args.metrics_out:
        meter = DynamicLeakageMeter(lattice, levels=levels,
                                    adversary=adversary)
        recorder = RecordingTraceRecorder(meter=meter)
    q = measure_leakage(
        compiled.program, compiled.gamma, lattice, levels, adversary,
        base, env, variants, mitigate_pc=compiled.typing.mitigate_pc,
        recorder=recorder,
    )
    v = timing_variations(
        compiled.program, lattice, levels, adversary, base, env, variants,
        mitigate_pc=compiled.typing.mitigate_pc, recorder=recorder,
    )
    worst = max((key[-1][3] for key in q.observations if key), default=1)
    bound = leakage_bound(lattice, levels, adversary, worst,
                          relevant_mitigations=len(
                              next(iter(v.id_vectors), ())))
    holds = q.bits <= v.bits + 1e-9
    print(f"secrets: {args.secret} in [{lo}, {hi})  adversary: {adversary}")
    print(f"Q        = {q.bits:.3f} bits "
          f"({q.distinguishable} distinguishable observations)")
    print(f"log|V|   = {v.bits:.3f} bits ({v.count} timing variations)")
    print(f"bound    = {bound:.3f} bits  (T={worst})")
    print(f"Theorem 2 {'holds' if holds else 'VIOLATED'}")
    if recorder is not None:
        if args.trace:
            print("telemetry:")
            for line in recorder.registry.summary_lines():
                print(f"  {line}")
            print(
                f"  leakage: {meter.observed_variations} observed "
                f"variation(s) ({meter.observed_bits:.3f} bits) <= "
                f"static bound {meter.static_bound_bits():.3f} bits: "
                f"{'ok' if meter.holds() else 'VIOLATED'}"
            )
        if args.metrics_out:
            doc = recorder.registry.as_dict(leakage=meter.as_dict())
            doc["sweep"] = {
                "secret": args.secret,
                "values": [lo, hi],
                "adversary": adversary.name,
                "q_bits": q.bits,
                "distinguishable": q.distinguishable,
                "variation_bits": v.bits,
                "variation_count": v.count,
                "bound_bits": bound,
                "theorem2_holds": holds,
            }
            with open(args.metrics_out, "w") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"metrics written to {args.metrics_out}")
        if not meter.holds():
            return 1
    return 0


def cmd_report(args) -> int:
    """`report`: render an audit report from a telemetry document.

    Accepts a metrics JSON (``--metrics-out``) or an event journal
    (``--journal-out``).  Exits 1 when the document records a dynamic
    leakage account that exceeds its static Theorem 2 bound, 2 when the
    input is not a telemetry document.
    """
    try:
        doc = load_document(args.document)
        lines, ok = render_report(doc, source=args.document)
    except (OSError, ReportError, json.JSONDecodeError) as err:
        print(f"repro report: {err}", file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    return 0 if ok else 1


def cmd_bench(args) -> int:
    """`bench`: run the perf-trajectory suites / the regression gate.

    Measures cycles-simulated-per-wall-second (docs/PROFILING.md) and
    writes ``BENCH_core.json`` / ``BENCH_service.json`` under
    ``--output-dir``.  With ``--compare BASELINE`` the fresh numbers (or
    a pre-measured ``--current`` document) are diffed against the
    baseline.  Exit 0 within tolerance, 1 on a regression (an entry's
    rate dropped more than ``--tolerance``, or a baseline entry
    disappeared), 2 on bad input.
    """
    from .telemetry.bench import (
        BenchError,
        compare_documents,
        load_bench_document,
        render_bench_lines,
        render_comparison_lines,
        run_core_bench,
        run_service_bench,
        write_bench_document,
    )

    if args.current and not args.compare:
        print("repro bench: --current requires --compare", file=sys.stderr)
        return 2

    try:
        if args.current:
            # Gate-only mode: no measurement, diff two documents.
            comparison = compare_documents(
                load_bench_document(args.current),
                load_bench_document(args.compare),
                tolerance=args.tolerance,
            )
            for line in render_comparison_lines(comparison):
                print(line)
            return 0 if comparison["ok"] else 1

        suites = ("core", "service") if args.suite == "all" \
            else (args.suite,)
        baseline = None
        if args.compare:
            # Validate the baseline before spending measurement time.
            baseline = load_bench_document(args.compare)
            if baseline.get("kind") not in suites:
                raise BenchError(
                    f"baseline {args.compare} is "
                    f"kind={baseline.get('kind')!r} but that suite was "
                    f"not selected (--suite {args.suite})"
                )
        docs = {}
        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        if "core" in suites:
            kwargs = dict(repeats=args.repeats)
            if args.quick:
                # Shrunken workloads finish in microseconds, where timer
                # noise swamps the seam-overhead comparison -- skip it
                # (full-size runs and bench_core_speed.py measure it).
                kwargs.update(password_length=8, sbox_length=8,
                              rsa_bits=8, rsa_blocks=1,
                              gateway_requests=8, check_overhead=False)
            docs["core"] = run_core_bench(**kwargs)
        if "service" in suites:
            docs["service"] = run_service_bench(
                requests=args.requests if args.requests is not None
                else (24 if args.quick else 80)
            )
        for kind, doc in docs.items():
            path = write_bench_document(
                str(out_dir / f"BENCH_{kind}.json"), doc
            )
            for line in render_bench_lines(doc):
                print(line)
            print(f"wrote {path}")
            print()
        overhead = docs.get("core", {}).get("overhead")
        if overhead is not None and not overhead.get("ok", True):
            print("repro bench: profiler-off seam overhead exceeded "
                  f"{overhead.get('tolerance_pct')}% "
                  f"(measured {overhead.get('overhead_pct')}%)",
                  file=sys.stderr)
            return 1
        if baseline is not None:
            comparison = compare_documents(docs[baseline["kind"]], baseline,
                                           tolerance=args.tolerance)
            for line in render_comparison_lines(comparison):
                print(line)
            return 0 if comparison["ok"] else 1
        return 0
    except BenchError as err:
        print(f"repro bench: {err}", file=sys.stderr)
        return 2


def cmd_contract(args) -> int:
    """`contract`: run the hardware property checkers; 0 iff all hold."""
    lattice = _lattice(args)
    try:
        spec = REGISTRY.get(args.model)
    except HardwareRegistryError as err:
        # argparse's `choices` guards the CLI path; this guards direct calls.
        print(f"repro contract: {err}", file=sys.stderr)
        return 2
    report = run_contract_suite(
        lambda: spec.make(lattice, paper_machine().scaled_down(8)),
        lattice,
        trials=args.trials,
    )
    print(report.summary())
    failing = report.failing_properties()
    if failing:
        print(f"\nVIOLATIONS: {', '.join(failing)}")
        example = report.violations[failing[0]][0]
        print(f"first counterexample: {example}")
        return 1
    print("\nall contract properties hold")
    return 0


def cmd_verify_hw(args) -> int:
    """`verify-hw`: the property-based campaign over the hardware zoo.

    Exit 0 only when every expected-secure model survives its full example
    budget AND every expected-insecure model is detected with one of its
    declared property violations; 1 on any surprise; 2 on usage errors.
    """
    from .hardware.registry import LATTICE_POINTS
    from .hardware.verify import run_campaign

    if args.list:
        for spec in REGISTRY.specs():
            extra = (
                f" (violates {', '.join(spec.violates)})"
                if spec.violates else ""
            )
            print(f"{spec.name:12s} expected {spec.verdict_word()}{extra}")
            print(f"    {spec.summary}")
            points = (
                f"    lattices: {', '.join(spec.lattice_points)}; "
                f"params: {', '.join(spec.param_points)}"
            )
            if spec.aliases:
                points += f"; aliases: {', '.join(spec.aliases)}"
            print(points)
        return 0

    models = (
        [name for name in args.models.split(",") if name]
        if args.models else None
    )
    lattice_points = (
        [point for point in args.lattices.split(",") if point]
        if args.lattices else None
    )
    try:
        if models:
            for name in models:
                REGISTRY.get(name)
        for point in lattice_points or ():
            if point not in LATTICE_POINTS:
                raise HardwareRegistryError(
                    f"unknown lattice point {point!r}; choose from "
                    f"{sorted(LATTICE_POINTS)}"
                )
        result = run_campaign(
            models=models,
            lattice_points=lattice_points,
            max_examples=args.max_examples,
            seed=args.seed,
            quantify=not args.no_quantify,
            counterexample_dir=args.counterexamples,
            database_dir=args.database,
        )
    except HardwareRegistryError as err:
        print(f"repro verify-hw: {err}", file=sys.stderr)
        return 2
    print(
        f"derandomization seed: {result.seed} "
        f"(per-point seeds listed below; rerun with --seed {result.seed} "
        f"to reproduce)"
    )
    print(f"examples per point: {result.max_examples}")
    print()
    for line in result.summary_lines():
        print(line)
    if args.output:
        Path(args.output).write_text(
            json.dumps(result.as_dict(), indent=2) + "\n"
        )
        print(f"\nwrote campaign result to {args.output}")
    surprises = result.surprises()
    if surprises:
        print(f"\nCAMPAIGN FAILED: {len(surprises)} point(s) defied "
              f"their spec")
        for verdict in surprises:
            kind = (
                "expected secure but a violation was found"
                if verdict.expected_secure
                else "expected insecure but went undetected or was "
                     "misattributed"
            )
            print(
                f"  {verdict.model}[{verdict.lattice_point},"
                f"{verdict.param_point}]: {kind}"
            )
        return 1
    print("\ncampaign passed: secure models held, insecure models detected")
    return 0


def cmd_attack(args) -> int:
    """`attack`: the red-team adversary campaign against the gateway.

    Exit 0 when every defended (attack, policy) cell held its Theorem 2
    budget and the positive control measured a channel under fifo; 1 on
    any violation; 2 on usage errors.
    """
    from .adversary import (
        REGISTRY as ATTACK_REGISTRY,
        AttackRegistryError,
        CampaignError,
        render_campaign,
        run_campaign,
    )

    if args.list:
        for spec in ATTACK_REGISTRY.specs():
            defeated = ",".join(sorted(spec.defeated_by))
            print(f"{spec.name:26s} target={spec.target_app} "
                  f"metric={spec.metric} defeated-by={defeated}")
            print(f"    {spec.summary}")
            print(f"    re-homes {spec.rehomes}; "
                  f"client pools {spec.client_counts}")
        return 0

    attacks = (
        [name for name in args.attacks.split(",") if name]
        if args.attacks else None
    )
    policies = (
        [name for name in args.policy.split(",") if name]
        if args.policy else None
    )
    try:
        clients = (
            [int(c) for c in args.clients.split(",") if c]
            if args.clients else None
        )
        if attacks:
            for name in attacks:
                ATTACK_REGISTRY.get(name)
        document = run_campaign(
            attacks=attacks,
            policies=policies,
            seed=args.seed,
            clients=clients,
            quantum=args.quantum,
            samples=args.samples,
            quick=args.quick,
        )
    except (AttackRegistryError, CampaignError, ValueError) as err:
        print(f"repro attack: {err}", file=sys.stderr)
        return 2
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=2) + "\n"
        )
    if args.format == "json":
        print(json.dumps(document, indent=2))
    else:
        print(render_campaign(document))
        if args.output:
            print(f"\nwrote campaign document to {args.output}")
    return 0 if document["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Timing-channel language toolchain (PLDI 2012 repro)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, program=True):
        """Arguments shared by every subcommand."""
        if program:
            p.add_argument("program", help="program file ('-' for stdin)")
            p.add_argument("--gamma", default="",
                           help="data labels: name=LEVEL,name=LEVEL,...")
        p.add_argument("--levels", default=None,
                       help="chain lattice levels, low to high (default L,H)")

    p = sub.add_parser("check", help="typecheck a program")
    common(p)
    p.add_argument("--require-cache-labels", action="store_true",
                   help="enforce lr = lw (commodity hardware, Sec. 8.1)")
    p.add_argument("--all", action="store_true",
                   help="report every type-system violation instead of "
                        "stopping at the first")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "lint",
        help="run the full static-analysis engine (multi-error, "
             "TL0xx rule catalog, Theorem 2 audit)",
    )
    p.add_argument("programs", nargs="*", metavar="program",
                   help="program file(s); '//' header directives such as "
                        "'// gamma: h=H,l=L' configure the analysis per "
                        "file")
    p.add_argument("--select", metavar="CODE[,CODE...]", default=None,
                   help="only emit the listed rule codes (e.g. "
                        "TL021,TL022)")
    p.add_argument("--ignore", metavar="CODE[,CODE...]", default=None,
                   help="suppress the listed rule codes")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog (code, severity, name, "
                        "summary) and exit")
    p.add_argument("--gamma", default="",
                   help="data labels: name=LEVEL,... (overrides the "
                        "file's '// gamma:' directive)")
    p.add_argument("--levels", default=None,
                   help="chain lattice levels, low to high (default L,H)")
    p.add_argument("--adversary", default=None,
                   help="adversary level for the Theorem 2 audit "
                        "(default: lattice bottom)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="report format (default text)")
    p.add_argument("--output", metavar="FILE", default=None,
                   help="write the report to FILE instead of stdout")
    p.add_argument("--no-audit", dest="audit", action="store_false",
                   help="omit the static Theorem 2 leakage audit")
    p.add_argument("--no-infer", action="store_true",
                   help="skip label inference (report missing labels)")
    p.add_argument("--infer", action="store_true",
                   help="force label inference on, overriding a file's "
                        "'// infer: off' directive (lint unannotated "
                        "Gamma-only programs without TL007 noise)")
    p.add_argument("--explain", action="store_true",
                   help="attach step-by-step source->sink flow paths to "
                        "flow diagnostics (text steps; SARIF codeFlows)")
    p.add_argument("--require-cache-labels", action="store_true",
                   help="enforce lr = lw (commodity hardware, Sec. 8.1)")
    p.add_argument("--horizon", type=int, default=ANALYSIS_HORIZON,
                   help="time horizon T for the audit's (1 + log2 T) "
                        "term (default 2^20)")
    p.add_argument("--bits-budget", type=float, default=None,
                   metavar="BITS",
                   help="channel-capacity budget in bits for TL026 "
                        "(overrides a file's '// budget:' directive)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "flow",
        help="export the dataflow layer's graphs (CFG or timing-"
             "dependence graph) for one program",
    )
    p.add_argument("program", help="program file ('//' header directives "
                                   "configure the analysis)")
    p.add_argument("--gamma", default="",
                   help="data labels: name=LEVEL,... (overrides the "
                        "file's '// gamma:' directive)")
    p.add_argument("--levels", default=None,
                   help="chain lattice levels, low to high (default L,H)")
    p.add_argument("--dot", choices=("cfg", "tdg"), default="cfg",
                   help="which graph to render as Graphviz DOT "
                        "(default cfg)")
    p.add_argument("--costs", metavar="MODEL", default=None,
                   help="annotate CFG basic blocks with static cycle-"
                        "cost intervals for the named hardware model "
                        f"({', '.join(HARDWARE_CHOICES)})")
    p.add_argument("--output", metavar="FILE", default=None,
                   help="write the DOT to FILE instead of stdout")
    p.set_defaults(func=cmd_flow)

    p = sub.add_parser(
        "cost",
        help="static cycle-cost analysis: per-hardware [lo, hi] "
             "interval bounds, mitigate-site table, and the cost-"
             "backed lints TL021-TL025",
    )
    p.add_argument("programs", nargs="+", metavar="program",
                   help="program file(s); '//' header directives "
                        "configure the analysis per file")
    p.add_argument("--hardware", action="append", metavar="MODEL",
                   default=None,
                   help="hardware model(s) to bound against (repeatable; "
                        "default: every registered model)")
    p.add_argument("--gamma", default="",
                   help="data labels: name=LEVEL,... (overrides the "
                        "file's '// gamma:' directive)")
    p.add_argument("--levels", default=None,
                   help="chain lattice levels, low to high (default L,H)")
    p.add_argument("--adversary", default=None,
                   help="adversary level for the marginal-bits column "
                        "(default: lattice bottom)")
    p.add_argument("--horizon", type=int, default=ANALYSIS_HORIZON,
                   help="time horizon T for the audit's (1 + log2 T) "
                        "term (default 2^20)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="report format (default text)")
    p.add_argument("--output", metavar="FILE", default=None,
                   help="write the report to FILE instead of stdout")
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser(
        "tune",
        help="synthesize the cheapest mitigation policy (placement x "
             "scheme x budgets) whose channel capacity fits a bits "
             "budget on every hardware model",
    )
    p.add_argument("program", help="program file ('//' header directives "
                                   "configure the analysis)")
    p.add_argument("--bits-budget", type=float, required=True,
                   metavar="BITS",
                   help="channel-capacity budget in bits the synthesized "
                        "policy must satisfy on every requested model")
    p.add_argument("--models", action="append", metavar="MODEL",
                   default=None,
                   help="hardware model(s) to certify against "
                        "(repeatable; default: every registered model)")
    p.add_argument("--objective", choices=("static", "service"),
                   default="static",
                   help="'static' minimizes worst-case padded cycles; "
                        "'service' additionally replays --spec under the "
                        "baseline and tuned policies and reports measured "
                        "latency p50/p95/p99 (default static)")
    p.add_argument("--spec", metavar="FILE", default=None,
                   help="workload spec JSON to tailor the emitted "
                        "fragment to (required for --objective service)")
    p.add_argument("--scheme", action="append", choices=SCHEME_CHOICES,
                   default=None,
                   help="prediction scheme(s) to search (repeatable; "
                        "default: all)")
    p.add_argument("--gamma", default="",
                   help="data labels: name=LEVEL,... (overrides the "
                        "file's '// gamma:' directive)")
    p.add_argument("--levels", default=None,
                   help="chain lattice levels, low to high (default L,H)")
    p.add_argument("--adversary", default=None,
                   help="observer level for the census "
                        "(default: lattice bottom)")
    p.add_argument("--horizon", type=int, default=ANALYSIS_HORIZON,
                   help="time horizon T bounding deadline sequences "
                        "(default 2^20)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default text; json emits the "
                        "repro.tune/1 document)")
    p.add_argument("--emit-program", metavar="FILE", default=None,
                   help="write the synthesized TL program to FILE")
    p.add_argument("--emit-spec", metavar="FILE", default=None,
                   help="write the recommended workload-spec fragment "
                        "(quantized policy, quantum, scheme) to FILE")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("infer", help="print with inferred labels")
    common(p)
    p.set_defaults(func=cmd_infer)

    p = sub.add_parser("fix", help="insert mitigate commands automatically")
    common(p)
    p.set_defaults(func=cmd_fix)

    p = sub.add_parser("run", help="execute on simulated hardware")
    common(p)
    p.add_argument("--set", action="append", default=[],
                   help="initial memory: name=int or name=v0:v1:... (array)")
    p.add_argument("--hardware", choices=HARDWARE_CHOICES,
                   default="partitioned")
    p.add_argument("--unchecked", action="store_true",
                   help="run even if the program is ill-typed")
    p.add_argument("--max-steps", type=int, default=10_000_000)
    p.add_argument("--trace", action="store_true",
                   help="print a runtime-telemetry summary after the run")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="write telemetry metrics JSON "
                        "(schema repro.telemetry/1) to FILE")
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write a Chrome trace-event JSON timeline to FILE "
                        "(open in Perfetto / chrome://tracing)")
    p.add_argument("--journal-out", metavar="FILE", default=None,
                   help="stream the execution timeline as JSONL to FILE "
                        "(consumed by `repro report`)")
    p.add_argument("--scheme", choices=SCHEME_CHOICES, default="doubling",
                   help="prediction scheme for mitigate commands "
                        "(default doubling)")
    p.add_argument("--penalty", choices=("local", "global"),
                   default="local",
                   help="misprediction penalty policy: per-level counters "
                        "or one shared counter (default local)")
    p.add_argument("--profile", action="store_true",
                   help="attribute cycles/wall-time to subsystems and "
                        "print the profile summary after the run")
    p.add_argument("--prom-out", metavar="FILE", default=None,
                   help="write the profile as Prometheus text exposition "
                        "to FILE (implies profiling)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "serve",
        help="run a multi-tenant workload through the timing-safe gateway",
    )
    p.add_argument("--spec", required=True, metavar="FILE",
                   help="workload spec JSON ('-' for stdin); "
                        "see docs/SERVICE.md")
    p.add_argument("--policy", choices=("fifo", "rr", "quantized"),
                   default=None, help="override the spec's scheduler policy")
    p.add_argument("--requests", type=int, default=None,
                   help="override the spec's request count")
    p.add_argument("--seed", type=int, default=None,
                   help="override the spec's RNG seed")
    p.add_argument("--quantum", type=int, default=None,
                   help="override the quantized policy's quantum (cycles)")
    p.add_argument("--workers", type=int, default=None,
                   help="override the spec's worker count")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="write the telemetry document (with the `service` "
                        "section) to FILE; '-' writes JSON to stdout and "
                        "the summary to stderr")
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write a Chrome trace-event JSON of every handler "
                        "run to FILE")
    p.add_argument("--journal-out", metavar="FILE", default=None,
                   help="stream handler-run events as JSONL to FILE")
    p.add_argument("--profile", action="store_true",
                   help="attribute cycles/wall-time to subsystems (incl. "
                        "per-tenant latency and budget burn-down) and "
                        "print the profile summary")
    p.add_argument("--prom-out", metavar="FILE", default=None,
                   help="write the profile as Prometheus text exposition "
                        "to FILE (implies profiling)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("leakage", help="measure leakage over a secret range")
    common(p)
    p.add_argument("--set", action="append", default=[])
    p.add_argument("--secret", required=True, help="secret variable name")
    p.add_argument("--values", default="0..16", help="range lo..hi")
    p.add_argument("--adversary", default=None, help="adversary level")
    p.add_argument("--hardware", choices=HARDWARE_CHOICES,
                   default="partitioned")
    p.add_argument("--unchecked", action="store_true")
    p.add_argument("--trace", action="store_true",
                   help="print a telemetry summary covering the whole sweep")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="write one telemetry metrics JSON for the whole "
                        "sweep (with a `sweep` section) to FILE")
    p.set_defaults(func=cmd_leakage)

    p = sub.add_parser("contract", help="verify a hardware model")
    p.add_argument("model", choices=HARDWARE_CHOICES)
    common(p, program=False)
    p.add_argument("--trials", type=int, default=15)
    p.set_defaults(func=cmd_contract)

    p = sub.add_parser(
        "verify-hw",
        help="property-based contract campaign over the whole hardware zoo",
    )
    p.add_argument("--models", default=None,
                   help="comma-separated model names (default: all "
                        "registered)")
    p.add_argument("--lattices", default=None,
                   help="comma-separated lattice points to include "
                        "(two_point,chain3,diamond)")
    p.add_argument("--max-examples", type=int, default=300,
                   help="generated stimulus sequences per campaign point")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign derandomization seed")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the campaign result JSON here")
    p.add_argument("--counterexamples", default=None, metavar="DIR",
                   help="write shrunk, replayable counterexample JSON here")
    p.add_argument("--database", default=None, metavar="DIR",
                   help="persist the Hypothesis example database here")
    p.add_argument("--no-quantify", action="store_true",
                   help="skip end-to-end leak quantification")
    p.add_argument("--list", action="store_true",
                   help="list registered models and exit")
    p.set_defaults(func=cmd_verify_hw)

    p = sub.add_parser(
        "attack",
        help="red-team campaign: measured adversary advantage vs each "
             "tenant's Theorem 2 budget, per scheduler policy",
    )
    p.add_argument("--attacks", default=None,
                   help="comma-separated attack names (default: all "
                        "registered)")
    p.add_argument("--policy", default=None,
                   help="comma-separated scheduler policies to sweep "
                        "(default: fifo,rr,quantized)")
    p.add_argument("--clients", default=None,
                   help="comma-separated adversary worker-pool sizes "
                        "(default: each attack's registered sweep)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed; every cell derives its own via "
                        "seed ^ crc32(attack:policy:clients)")
    p.add_argument("--samples", type=int, default=3,
                   help="median-of-N verify samples per candidate "
                        "(default 3)")
    p.add_argument("--quantum", type=int, default=4096,
                   help="quantized-policy quantum in cycles (default 4096)")
    p.add_argument("--quick", action="store_true",
                   help="one client-pool size per attack (bounded CI run)")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the repro.adversary/1 JSON document here")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="stdout rendering (default text)")
    p.add_argument("--list", action="store_true",
                   help="list registered attacks and exit")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("report",
                       help="render an audit report from telemetry output")
    p.add_argument("document",
                   help="a metrics JSON (--metrics-out) or an event "
                        "journal (--journal-out)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench",
        help="measure the perf trajectory (BENCH_*.json) and gate "
             "regressions against a baseline",
    )
    p.add_argument("--suite", choices=("core", "service", "all"),
                   default="all",
                   help="which suite(s) to measure (default all)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timed repetitions per core entry; the minimum "
                        "wall time wins (default 3)")
    p.add_argument("--requests", type=int, default=None,
                   help="service-suite request count (default 80, "
                        "24 with --quick)")
    p.add_argument("--quick", action="store_true",
                   help="shrink workloads for a fast smoke run (numbers "
                        "are NOT comparable to a full baseline)")
    p.add_argument("--output-dir", metavar="DIR", default=".",
                   help="where BENCH_*.json land (default: current "
                        "directory; the repo root holds the committed "
                        "baselines)")
    p.add_argument("--compare", metavar="BASELINE", default=None,
                   help="diff against this BENCH_*.json baseline; exit 1 "
                        "when any entry regresses past --tolerance")
    p.add_argument("--current", metavar="FILE", default=None,
                   help="with --compare: diff this pre-measured document "
                        "instead of re-measuring")
    p.add_argument("--tolerance", type=float, default=0.20,
                   help="relative cycles-per-second drop tolerated before "
                        "an entry counts as regressed (default 0.20)")
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
