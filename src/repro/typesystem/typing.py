"""The security type system (Fig. 4).

The judgment is ``Gamma, pc, t |- c : t'`` where ``pc`` is the standard
program-counter label and ``t``/``t'`` are the *timing start- and
end-labels*: bounds on the level of information that has flowed into timing
before and after executing ``c``.  Every rule enforces ``t <= t'`` (timing
dependencies only accumulate) and ``pc <= lw`` (control flow may not imprint
on machine-environment state below the context -- the hardware-level implicit
flow of Sec. 2.2).

Rule summary, with ``le`` the guard/expression label and ``lr``/``lw`` the
command's labels:

* T-SKIP:   ``t' = t join lr``
* T-ASGN:   ``le join pc join t join lr <= Gamma(x)``; ``t' = Gamma(x)``
* T-SLEEP:  ``t' = t join le join lr``
* T-IF:     branches under ``pc join le`` and start label
  ``le join t join lr``; ``t'`` is the join of the branch end-labels
* T-WHILE:  a fixpoint: some ``t'`` with ``le join t join lr <= t'`` such
  that the body types under ``pc join le`` with start *and* end label
  ``t'`` (we compute the least such ``t'`` by iteration -- the lattice is
  finite)
* T-SEQ:    threads ``t`` through
* T-MTG:    the body types with start ``t join le join lr`` and its
  end-label must flow to the mitigation level ``l'``; the *command's*
  end-label is only ``le join t join lr`` -- the mitigated block's timing
  variation is controlled dynamically, which is the whole point (Sec. 5.1)

Array extension (sound, conservative): an array access's *address* flows
into cache state at the accessing command's write label, so every
array-index label inside the command's step-evaluated expressions must flow
to ``lw``; an ``a[i] := e`` store additionally treats ``i`` like part of the
assigned expression.

The checker returns a :class:`TypingInfo` carrying the end label, the static
``pc`` at every ``mitigate`` (needed by the Sec. 6.3 projections), and
per-node contexts for inspection.  Set ``require_cache_labels=True`` to also
enforce ``lr = lw`` everywhere, the commodity-hardware side condition of
Sec. 8.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..lang import ast
from ..lattice import Label, Lattice
from .environment import SecurityEnvironment
from .errors import MissingLabel, TypingError


@dataclass(frozen=True)
class NodeContext:
    """The typing context a labeled command was checked under."""

    pc: Label
    start: Label
    end: Label


@dataclass
class TypingInfo:
    """The result of a successful typing derivation."""

    end_label: Label
    mitigate_pc: Dict[str, Label] = field(default_factory=dict)
    mitigate_level: Dict[str, Label] = field(default_factory=dict)
    mitigate_body_end: Dict[str, Label] = field(default_factory=dict)
    node_contexts: Dict[int, NodeContext] = field(default_factory=dict)

    def pc_of(self, mit_id: str) -> Label:
        """``pc(M_eta)`` for a mitigate command, by id."""
        return self.mitigate_pc[mit_id]

    def level_of(self, mit_id: str) -> Label:
        """``lev(M_eta)`` for a mitigate command, by id."""
        return self.mitigate_level[mit_id]


class TypeChecker:
    """One typing run over a fixed Gamma."""

    def __init__(
        self,
        gamma: SecurityEnvironment,
        require_cache_labels: bool = False,
    ):
        self.gamma = gamma
        self.lattice: Lattice = gamma.lattice
        self.require_cache_labels = require_cache_labels
        self.info: Optional[TypingInfo] = None

    # -- helpers ---------------------------------------------------------------

    def _violation(self, err: TypingError) -> None:
        """Report a failed side condition.

        The default checker raises, aborting at the first violation.  The
        multi-error engine (:mod:`repro.analysis.collector`) overrides this
        to record the error and *return*, so each rule continues with its
        natural recovery label and one run surfaces every violation.
        """
        raise err

    def _labels(self, cmd: ast.LabeledCommand) -> Tuple[Label, Label]:
        if cmd.read_label is None or cmd.write_label is None:
            self._violation(MissingLabel(
                "command has no read/write labels; annotate it or run "
                "label inference first",
                cmd,
                kind="missing-label",
            ))
            bottom = self.lattice.bottom
            return (
                cmd.read_label if cmd.read_label is not None else bottom,
                cmd.write_label if cmd.write_label is not None else bottom,
            )
        return cmd.read_label, cmd.write_label

    def _common_checks(
        self, cmd: ast.LabeledCommand, pc: Label, rule: str
    ) -> Tuple[Label, Label]:
        lr, lw = self._labels(cmd)
        if not pc.flows_to(lw):
            self._violation(TypingError(
                f"pc = {pc} must flow to the write label {lw}: a command in "
                "this context would imprint confidential control flow on "
                f"{lw}-and-below machine-environment state",
                cmd,
                rule,
                kind="write-label",
                data={"pc": pc, "write_label": lw},
            ))
        if self.require_cache_labels and lr != lw:
            self._violation(TypingError(
                f"commodity hardware requires lr = lw, got [{lr},{lw}]",
                cmd,
                rule,
                kind="cache-label",
                data={"read_label": lr, "write_label": lw},
            ))
        return lr, lw

    def _check_index_labels(
        self, cmd: ast.LabeledCommand, lw: Label, rule: str, *exprs: ast.Expr
    ) -> None:
        """Array addresses flow into lw-level cache state; index labels must
        flow to lw."""
        for expr in exprs:
            for label in self.gamma.array_index_labels(expr):
                if not label.flows_to(lw):
                    self._violation(TypingError(
                        f"array index at label {label} does not flow to the "
                        f"write label {lw}; the element's address would leak "
                        "into lower cache state",
                        cmd,
                        rule,
                        kind="array-index",
                        data={"index_label": label, "write_label": lw},
                    ))

    # -- the judgment ---------------------------------------------------------

    def check(self, cmd: ast.Command, pc: Label, start: Label) -> Label:
        """``Gamma, pc, start |- cmd : <returned end label>``."""
        join = self.lattice.join

        if isinstance(cmd, ast.Seq):
            mid = self.check(cmd.first, pc, start)
            return self.check(cmd.second, pc, mid)

        assert isinstance(cmd, ast.LabeledCommand)

        if isinstance(cmd, ast.Skip):
            lr, _lw = self._common_checks(cmd, pc, "T-SKIP")
            end = join(start, lr)
            self._record(cmd, pc, start, end)
            return end

        if isinstance(cmd, ast.Assign):
            lr, lw = self._common_checks(cmd, pc, "T-ASGN")
            self._check_index_labels(cmd, lw, "T-ASGN", cmd.expr)
            le = self.gamma.label_of_expr(cmd.expr)
            target = self.gamma[cmd.target]
            sources = join(le, pc, start, lr)
            if not sources.flows_to(target):
                self._violation(TypingError(
                    f"assignment to {cmd.target} at {target}: sources "
                    f"(value {le}, pc {pc}, timing {start}, read label {lr}) "
                    f"join to {sources}, which does not flow to {target}"
                    + self._hint(start, target),
                    cmd,
                    "T-ASGN",
                    kind="flow",
                    data={"value": le, "pc": pc, "timing": start,
                          "read_label": lr, "target": target,
                          "name": cmd.target},
                ))
            self._record(cmd, pc, start, target)
            return target

        if isinstance(cmd, ast.ArrayAssign):
            lr, lw = self._common_checks(cmd, pc, "T-ASGN")
            self._check_index_labels(
                cmd, lw, "T-ASGN", cmd.index, cmd.expr
            )
            index_label = self.gamma.label_of_expr(cmd.index)
            if not index_label.flows_to(lw):
                self._violation(TypingError(
                    f"array store index at {index_label} does not flow to "
                    f"the write label {lw}",
                    cmd,
                    "T-ASGN",
                    kind="array-index",
                    data={"index_label": index_label, "write_label": lw},
                ))
            le = join(self.gamma.label_of_expr(cmd.expr), index_label)
            target = self.gamma[cmd.array]
            sources = join(le, pc, start, lr)
            if not sources.flows_to(target):
                self._violation(TypingError(
                    f"store to {cmd.array} at {target}: sources join to "
                    f"{sources}, which does not flow to {target}"
                    + self._hint(start, target),
                    cmd,
                    "T-ASGN",
                    kind="flow",
                    data={"value": le, "pc": pc, "timing": start,
                          "read_label": lr, "target": target,
                          "name": cmd.array},
                ))
            self._record(cmd, pc, start, target)
            return target

        if isinstance(cmd, ast.Sleep):
            lr, _lw = self._common_checks(cmd, pc, "T-SLEEP")
            self._check_index_labels(cmd, _lw, "T-SLEEP", cmd.duration)
            le = self.gamma.label_of_expr(cmd.duration)
            end = join(start, le, lr)
            self._record(cmd, pc, start, end)
            return end

        if isinstance(cmd, ast.If):
            lr, lw = self._common_checks(cmd, pc, "T-IF")
            self._check_index_labels(cmd, lw, "T-IF", cmd.cond)
            le = self.gamma.label_of_expr(cmd.cond)
            inner_pc = join(le, pc)
            inner_start = join(le, start, lr)
            end1 = self.check(cmd.then_branch, inner_pc, inner_start)
            end2 = self.check(cmd.else_branch, inner_pc, inner_start)
            end = join(end1, end2)
            self._record(cmd, pc, start, end)
            return end

        if isinstance(cmd, ast.While):
            lr, lw = self._common_checks(cmd, pc, "T-WHILE")
            self._check_index_labels(cmd, lw, "T-WHILE", cmd.cond)
            le = self.gamma.label_of_expr(cmd.cond)
            inner_pc = join(le, pc)
            # Least fixpoint of t' = le|start|lr |_| end(body under t').
            # Monotone on a finite lattice, so iteration terminates.
            t_prime = join(le, start, lr)
            while True:
                body_end = self.check(cmd.body, inner_pc, t_prime)
                widened = join(t_prime, body_end)
                if widened == t_prime:
                    break
                t_prime = widened
            self._record(cmd, pc, start, t_prime)
            return t_prime

        if isinstance(cmd, ast.Mitigate):
            lr, lw = self._common_checks(cmd, pc, "T-MTG")
            self._check_index_labels(cmd, lw, "T-MTG", cmd.budget)
            le = self.gamma.label_of_expr(cmd.budget)
            body_start = join(start, le, lr)
            body_end = self.check(cmd.body, pc, body_start)
            if not body_end.flows_to(cmd.level):
                self._violation(TypingError(
                    f"mitigate level {cmd.level} does not bound the body's "
                    f"timing end-label {body_end}; raise the level or "
                    "mitigate the offending subcommand",
                    cmd,
                    "T-MTG",
                    kind="mitigate-level",
                    data={"body_end": body_end, "level": cmd.level},
                ))
            self.info.mitigate_pc[cmd.mit_id] = pc
            self.info.mitigate_level[cmd.mit_id] = cmd.level
            self.info.mitigate_body_end[cmd.mit_id] = body_end
            end = join(le, start, lr)
            self._record(cmd, pc, start, end)
            return end

        raise TypeError(f"not a command: {cmd!r}")

    def _hint(self, start: Label, target: Label) -> str:
        if not start.flows_to(target):
            return (
                "; the timing start-label carries confidential timing into "
                "this public update -- wrap the timing-variable code in a "
                "mitigate command"
            )
        return ""

    def _record(
        self, cmd: ast.LabeledCommand, pc: Label, start: Label, end: Label
    ) -> None:
        self.info.node_contexts[cmd.node_id] = NodeContext(pc, start, end)

    # -- entry point --------------------------------------------------------------

    def run(
        self,
        program: ast.Command,
        pc: Optional[Label] = None,
        start: Optional[Label] = None,
    ) -> TypingInfo:
        """Check a whole program (defaults: bottom pc and start label)."""
        self.info = TypingInfo(end_label=self.lattice.bottom)
        pc = pc if pc is not None else self.lattice.bottom
        start = start if start is not None else self.lattice.bottom
        self.info.end_label = self.check(program, pc, start)
        return self.info


def typecheck(
    program: ast.Command,
    gamma: SecurityEnvironment,
    pc: Optional[Label] = None,
    start: Optional[Label] = None,
    require_cache_labels: bool = False,
) -> TypingInfo:
    """Check ``Gamma, pc, start |- program : t'`` and return the derivation
    facts.  Raises :class:`TypingError` when the program is ill-typed."""
    checker = TypeChecker(gamma, require_cache_labels=require_cache_labels)
    return checker.run(program, pc, start)


def is_well_typed(
    program: ast.Command,
    gamma: SecurityEnvironment,
    require_cache_labels: bool = False,
) -> bool:
    """Does the program typecheck under the default (bottom, bottom) context?"""
    try:
        typecheck(program, gamma, require_cache_labels=require_cache_labels)
        return True
    except TypingError:
        return False
