"""Security environments: the Gamma of the typing judgment.

Gamma maps variable and array names to security labels.  Expression typing
is the standard join over the labels of mentioned locations (Sec. 5.1 says
the expression rules are standard and omits them); for the array extension,
reading ``a[i]`` has label ``Gamma(a) join label(i)`` -- the element value
reveals the index too.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping

from ..lang import ast
from ..lattice import Label, Lattice


class UnboundVariable(KeyError):
    """A program mentions a name Gamma does not bind."""


class SecurityEnvironment(Mapping[str, Label]):
    """An immutable map from names to security labels."""

    def __init__(self, lattice: Lattice, bindings: Mapping[str, Label]):
        self.lattice = lattice
        self._bindings: Dict[str, Label] = dict(bindings)
        for name, label in self._bindings.items():
            if label.lattice is not lattice:
                raise ValueError(
                    f"label of {name!r} belongs to a different lattice"
                )

    @classmethod
    def from_names(
        cls, lattice: Lattice, **names: str
    ) -> "SecurityEnvironment":
        """Convenience constructor: ``from_names(lat, h="H", l="L")``."""
        return cls(lattice, {n: lattice[level] for n, level in names.items()})

    def __getitem__(self, name: str) -> Label:
        try:
            return self._bindings[name]
        except KeyError:
            raise UnboundVariable(
                f"variable {name!r} has no security label"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def binding(self, name: str, label: Label) -> "SecurityEnvironment":
        """A copy with one binding added or replaced."""
        updated = dict(self._bindings)
        updated[name] = label
        return SecurityEnvironment(self.lattice, updated)

    # -- expression typing ------------------------------------------------------

    def label_of_expr(self, expr: ast.Expr) -> Label:
        """The label of an expression: join over every location it reads."""
        if isinstance(expr, ast.IntLit):
            return self.lattice.bottom
        if isinstance(expr, ast.Var):
            return self[expr.name]
        if isinstance(expr, ast.ArrayRead):
            return self.lattice.join(
                self[expr.array], self.label_of_expr(expr.index)
            )
        if isinstance(expr, (ast.BinOp, ast.UnOp)):
            return self.lattice.join_all(
                self.label_of_expr(child) for child in expr.children()
            )
        raise TypeError(f"not an expression: {expr!r}")

    def array_index_labels(self, expr: ast.Expr) -> Iterator[Label]:
        """Labels of every array-index subexpression inside ``expr``.

        The addresses of array accesses flow into cache state, so each index
        label must flow to the accessing command's write label (a constraint
        the paper does not need -- its language has only scalars, whose
        addresses are static).
        """
        if isinstance(expr, ast.ArrayRead):
            yield self.label_of_expr(expr.index)
            yield from self.array_index_labels(expr.index)
        else:
            for child in expr.children():
                yield from self.array_index_labels(child)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}: {label.name}" for name, label in self._bindings.items()
        )
        return f"SecurityEnvironment({{{inner}}})"
