"""Automatic mitigate placement.

Sec. 5 of the paper: "the type system isolates the places where timing needs
to be controlled externally.  These places are where mitigate commands are
needed."  This module makes that actionable: given an ill-typed program,
:func:`auto_mitigate` inserts the smallest trailing ``mitigate`` wrappers
that make it typecheck, and :func:`suggest_mitigations` reports the same
placements without rewriting.

The algorithm walks each sequential block the way the checker does, tracking
the timing start-label.  When a command fails *because of the timing label*
(it would typecheck if the timing start-label were rolled back to an earlier
point of the block), the maximal guilty suffix of the preceding commands is
wrapped in one ``mitigate (1, l) { ... }`` whose level ``l`` is the wrapped
region's timing end-label -- the least level T-MTG accepts.  Failures that
are not timing-induced (explicit flows, implicit flows, pc/write-label
violations) cannot be fixed by mitigation and are re-raised.

The inserted budget is the placeholder ``1``; calibrate it afterwards (cf.
Sec. 8.2's 110%-of-average policy, ``repro.apps.*.calibrate_budget``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from ..lang import ast
from ..lattice import Label
from .environment import SecurityEnvironment
from .errors import TypingError
from .typing import TypeChecker

#: A per-placement budget policy: either one integer for every inserted
#: mitigate, or a callable ``(body, level) -> int`` (e.g. the synthesizer
#: feeding static worst-case body costs back in).
BudgetPolicy = Union[int, Callable[[ast.Command, Label], int]]


@dataclass(frozen=True)
class Placement:
    """One suggested mitigate insertion."""

    level: Label
    wrapped: Tuple[ast.Command, ...]
    before: Optional[ast.Command]

    def describe(self) -> str:
        """One-line human-readable description of the insertion."""
        kinds = ", ".join(type(c).__name__ for c in self.wrapped)
        target = (
            f"before {type(self.before).__name__} node "
            f"{self.before.node_id}"
            if isinstance(self.before, ast.LabeledCommand)
            else "at the end of the block"
        )
        return (
            f"wrap [{kinds}] in mitigate(_, {self.level.name}) {target}"
        )


class UnmitigatableError(TypingError):
    """The program's errors are not timing-induced; mitigation cannot help."""


class _Repairer:
    def __init__(self, gamma: SecurityEnvironment,
                 budget: BudgetPolicy = 1):
        self.gamma = gamma
        self.lattice = gamma.lattice
        self.placements: List[Placement] = []
        self.budget = budget

    def _budget_for(self, body: ast.Command, level: Label) -> int:
        if callable(self.budget):
            return max(int(self.budget(body, level)), 1)
        return max(int(self.budget), 1)

    # -- checking helpers ---------------------------------------------------

    def _end_label(self, cmd: ast.Command, pc: Label, start: Label) -> Label:
        checker = TypeChecker(self.gamma)
        checker.info = _fresh_info(self.lattice)
        return checker.check(cmd, pc, start)

    def _typechecks(self, cmd: ast.Command, pc: Label, start: Label) -> bool:
        try:
            self._end_label(cmd, pc, start)
            return True
        except TypingError:
            return False

    # -- block repair ---------------------------------------------------------

    def repair_block(
        self, commands: List[ast.Command], pc: Label, start: Label
    ) -> Tuple[List[ast.Command], Label]:
        """Repair one flattened sequential block; returns (commands, end)."""
        out: List[ast.Command] = []
        # taints[i] = timing start-label before out[i].
        taints: List[Label] = []
        taint = start
        for cmd in commands:
            cmd = self._repair_subcommands(cmd, pc, taint)
            try:
                new_taint = self._end_label(cmd, pc, taint)
            except TypingError as err:
                # Fold the guilty suffix of `out` into a mitigate (mutating
                # out/taints), leaving the timing label rolled back.
                taint = self._wrap_suffix(out, taints, taint, cmd, pc, err)
                new_taint = self._end_label(cmd, pc, taint)
            out.append(cmd)
            taints.append(taint)
            taint = new_taint
        return out, taint

    def _repair_subcommands(
        self, cmd: ast.Command, pc: Label, taint: Label
    ) -> ast.Command:
        """Recursively repair branch/loop/mitigate bodies."""
        join = self.lattice.join
        if isinstance(cmd, ast.If):
            guard = self.gamma.label_of_expr(cmd.cond)
            inner_pc = join(pc, guard)
            lr = cmd.read_label if cmd.read_label else self.lattice.bottom
            inner_start = join(taint, guard, lr)
            cmd.then_branch = self._repair_into(
                cmd.then_branch, inner_pc, inner_start
            )
            cmd.else_branch = self._repair_into(
                cmd.else_branch, inner_pc, inner_start
            )
        elif isinstance(cmd, ast.While):
            guard = self.gamma.label_of_expr(cmd.cond)
            inner_pc = join(pc, guard)
            lr = cmd.read_label if cmd.read_label else self.lattice.bottom
            cmd.body = self._repair_into(
                cmd.body, inner_pc, join(taint, guard, lr)
            )
        elif isinstance(cmd, ast.Mitigate):
            lr = cmd.read_label if cmd.read_label else self.lattice.bottom
            budget = self.gamma.label_of_expr(cmd.budget)
            cmd.body = self._repair_into(
                cmd.body, pc, self.lattice.join(taint, budget, lr)
            )
        return cmd

    def _repair_into(
        self, cmd: ast.Command, pc: Label, start: Label
    ) -> ast.Command:
        commands, _ = self.repair_block(_flatten(cmd), pc, start)
        return ast.seq(*commands)

    def _wrap_suffix(
        self,
        out: List[ast.Command],
        taints: List[Label],
        taint: Label,
        failing: ast.Command,
        pc: Label,
        original: TypingError,
    ) -> Label:
        """Wrap the maximal guilty suffix of ``out`` so ``failing`` checks.

        Mutates ``out``/``taints`` in place (the suffix is replaced by one
        mitigate command) and returns the timing label after the wrapper.
        """
        # Find the latest cut j such that rolling the timing label back to
        # taints[j] lets the failing command typecheck (minimal wrap).
        cut = None
        for j in range(len(out) - 1, -1, -1):
            if self._typechecks(failing, pc, taints[j]):
                cut = j
                break
        if cut is None:
            # Even a full rollback does not help (or nothing precedes the
            # failure): the error is not timing-induced.
            raise UnmitigatableError(
                "this type error cannot be repaired by inserting mitigate "
                f"commands: {original}",
                getattr(original, "command", None),
            )
        cut_taint = taints[cut]
        suffix = out[cut:]
        del out[cut:]
        del taints[cut:]
        body = ast.seq(*suffix)
        level = self._end_label(body, pc, cut_taint)
        wrapper = ast.Mitigate(
            budget=ast.IntLit(self._budget_for(body, level)),
            level=level,
            body=body,
            # Inferred-style timing labels: the wrapper runs in this pc.
            read_label=pc,
            write_label=pc,
        )
        self.placements.append(
            Placement(level=level, wrapped=tuple(suffix), before=failing)
        )
        out.append(wrapper)
        taints.append(cut_taint)
        new_taint = self._end_label(wrapper, pc, cut_taint)
        if not self._typechecks(failing, pc, new_taint):
            raise UnmitigatableError(
                "mitigation insertion did not unblock the command: "
                f"{original}",
                getattr(original, "command", None),
            )
        return new_taint


def _flatten(cmd: ast.Command) -> List[ast.Command]:
    if isinstance(cmd, ast.Seq):
        return _flatten(cmd.first) + _flatten(cmd.second)
    return [cmd]


def _fresh_info(lattice):
    from .typing import TypingInfo

    return TypingInfo(end_label=lattice.bottom)


def auto_mitigate(
    program: ast.Command,
    gamma: SecurityEnvironment,
    pc: Optional[Label] = None,
    budget: BudgetPolicy = 1,
) -> Tuple[ast.Command, List[Placement]]:
    """Insert mitigate commands until the program typechecks.

    The program must already be label-annotated (run inference first).
    ``budget`` sets the inserted initial estimates: an int applied to
    every wrapper, or a callable ``(body, level) -> int`` so a caller
    with cost facts (the ``repro tune`` synthesizer) can calibrate each
    site.  Returns the rewritten program and the list of placements.
    Raises :class:`UnmitigatableError` when the errors are not
    timing-induced.
    """
    lattice = gamma.lattice
    repairer = _Repairer(gamma, budget=budget)
    commands, _ = repairer.repair_block(
        _flatten(program),
        pc if pc is not None else lattice.bottom,
        lattice.bottom,
    )
    return ast.seq(*commands), repairer.placements


def suggest_mitigations(
    program: ast.Command,
    gamma: SecurityEnvironment,
    pc: Optional[Label] = None,
) -> List[Placement]:
    """The placements :func:`auto_mitigate` would make, computed on a
    throwaway structural copy so the input program is untouched."""
    from ..lang.parser import parse
    from ..lang.pretty import pretty

    clone = parse(pretty(program), gamma.lattice)
    _, placements = auto_mitigate(clone, gamma, pc=pc)
    return placements
