"""Timing-label inference (Sec. 2.2: "these timing labels could be inferred
automatically according to the type system, reducing the burden on
programmers").

The paper's evaluation labels only the *data* (Gamma); read/write labels are
then inferred as the least restrictive labels satisfying the typing rules,
and the ``lr = lw`` side condition makes the pair a single *timing label*
(Sec. 8.1-8.2).  This module fills every missing annotation with::

    lw = pc  join  (labels of array indices the command evaluates)
    lr = lw                                   (cache-usable; Sec. 5.1)

which is exactly the paper's compilation strategy: a command in a high
context runs with a high timing label (so the hardware serves it from the
high partition / in no-fill mode), and low-context commands keep the fast
low label.  ``pc <= lw`` is required by every rule and the array-index term
is required by our array extension, so this is the least write label; taking
``lr = lw`` (rather than the always-sound ``lr = bottom``) is the
performance-optimal choice on cache-based hardware, at the price of raising
timing end-labels -- when that breaks a downstream constraint the checker's
error says where a ``mitigate`` is needed.

Already-annotated commands are left untouched, so hand annotations and
inference mix freely.  Inference mutates the AST in place and returns it
(chaining style); it does *not* typecheck the result -- run
:func:`repro.typesystem.typing.typecheck` afterwards.
"""

from __future__ import annotations

from typing import Optional

from ..lang import ast
from ..lattice import Label
from .environment import SecurityEnvironment


def infer_labels(
    program: ast.Command,
    gamma: SecurityEnvironment,
    pc: Optional[Label] = None,
) -> ast.Command:
    """Fill in missing read/write labels throughout ``program``."""
    lattice = gamma.lattice
    _infer(program, gamma, pc if pc is not None else lattice.bottom)
    return program


def _index_label(gamma: SecurityEnvironment, *exprs: ast.Expr) -> Label:
    """Join of all array-index labels inside the given expressions."""
    return gamma.lattice.join_all(
        label for expr in exprs for label in gamma.array_index_labels(expr)
    )


def _step_exprs(cmd: ast.LabeledCommand):
    """The expressions this command evaluates in its own step (cf. vars1)."""
    if isinstance(cmd, ast.Assign):
        return (cmd.expr,)
    if isinstance(cmd, ast.ArrayAssign):
        return (cmd.index, cmd.expr)
    if isinstance(cmd, ast.Sleep):
        return (cmd.duration,)
    if isinstance(cmd, (ast.If, ast.While)):
        return (cmd.cond,)
    if isinstance(cmd, ast.Mitigate):
        return (cmd.budget,)
    return ()


def _fill(cmd: ast.LabeledCommand, gamma: SecurityEnvironment, pc: Label) -> None:
    lattice = gamma.lattice
    inferred = lattice.join(pc, _index_label(gamma, *_step_exprs(cmd)))
    if isinstance(cmd, ast.ArrayAssign):
        # The stored element's address leaks the index; fold it in.
        inferred = lattice.join(inferred, gamma.label_of_expr(cmd.index))
    if cmd.write_label is None:
        cmd.write_label = inferred
    if cmd.read_label is None:
        cmd.read_label = cmd.write_label


def _infer(cmd: ast.Command, gamma: SecurityEnvironment, pc: Label) -> None:
    lattice = gamma.lattice
    if isinstance(cmd, ast.Seq):
        _infer(cmd.first, gamma, pc)
        _infer(cmd.second, gamma, pc)
        return

    assert isinstance(cmd, ast.LabeledCommand)
    _fill(cmd, gamma, pc)

    if isinstance(cmd, ast.If):
        inner_pc = lattice.join(pc, gamma.label_of_expr(cmd.cond))
        _infer(cmd.then_branch, gamma, inner_pc)
        _infer(cmd.else_branch, gamma, inner_pc)
    elif isinstance(cmd, ast.While):
        inner_pc = lattice.join(pc, gamma.label_of_expr(cmd.cond))
        _infer(cmd.body, gamma, inner_pc)
    elif isinstance(cmd, ast.Mitigate):
        # T-MTG does not raise pc for the body.
        _infer(cmd.body, gamma, pc)
