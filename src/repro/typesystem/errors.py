"""Typing errors with enough context to locate and explain the failure."""

from __future__ import annotations

from typing import Mapping, Optional

from ..lang import ast


class TypingError(Exception):
    """A program violates the Fig. 4 type system.

    Carries the offending command (when known), the rule that failed, a
    machine-readable ``kind`` naming the specific side condition, and a
    ``data`` mapping with the labels involved -- the static-analysis engine
    (:mod:`repro.analysis`) uses both to turn one failure into precise,
    decomposed diagnostics.  Error messages locate the command by its source
    ``line:col`` span when it was parsed from text, falling back to the node
    id for programmatically built ASTs; the type system's practical job is
    isolating exactly those places (Sec. 5).
    """

    def __init__(
        self,
        message: str,
        command: Optional[ast.Command] = None,
        rule: Optional[str] = None,
        kind: Optional[str] = None,
        data: Optional[Mapping[str, object]] = None,
    ):
        self.command = command
        self.rule = rule
        self.kind = kind
        self.data = dict(data) if data else {}
        self.message = message  # bare, without rule prefix or location
        prefix = f"[{rule}] " if rule else ""
        where = ""
        if isinstance(command, ast.LabeledCommand):
            if not command.span.is_synthetic:
                where = (
                    f" (at {type(command).__name__}, "
                    f"line {command.span.line}, col {command.span.column})"
                )
            else:
                where = f" (at {type(command).__name__} node {command.node_id})"
        super().__init__(f"{prefix}{message}{where}")


class MissingLabel(TypingError):
    """A command reached the checker without read/write labels."""
