"""Typing errors with enough context to locate and explain the failure."""

from __future__ import annotations

from typing import Optional

from ..lang import ast


class TypingError(Exception):
    """A program violates the Fig. 4 type system.

    Carries the offending command (when known) and the rule that failed, so
    error messages can say *where* a mitigate command is needed -- the type
    system's practical job is isolating exactly those places (Sec. 5).
    """

    def __init__(
        self,
        message: str,
        command: Optional[ast.Command] = None,
        rule: Optional[str] = None,
    ):
        self.command = command
        self.rule = rule
        prefix = f"[{rule}] " if rule else ""
        where = ""
        if isinstance(command, ast.LabeledCommand):
            where = f" (at {type(command).__name__} node {command.node_id})"
        super().__init__(f"{prefix}{message}{where}")


class MissingLabel(TypingError):
    """A command reached the checker without read/write labels."""
