"""The security type system: checking, label inference, and environments."""

from .environment import SecurityEnvironment, UnboundVariable
from .errors import MissingLabel, TypingError
from .inference import infer_labels
from .suggest import (
    Placement,
    UnmitigatableError,
    auto_mitigate,
    suggest_mitigations,
)
from .typing import NodeContext, TypeChecker, TypingInfo, is_well_typed, typecheck

__all__ = [
    "MissingLabel",
    "NodeContext",
    "Placement",
    "SecurityEnvironment",
    "TypeChecker",
    "TypingError",
    "TypingInfo",
    "UnboundVariable",
    "UnmitigatableError",
    "auto_mitigate",
    "infer_labels",
    "is_well_typed",
    "suggest_mitigations",
    "typecheck",
]
