"""Abstract syntax for the timing-label language (Fig. 1 of the paper).

The command grammar is the paper's::

    c ::= skip[lr,lw] | (x := e)[lr,lw] | c ; c
        | (while e do c)[lr,lw] | (if e then c1 else c2)[lr,lw]
        | (mitigate_n (e, l) c)[lr,lw] | (sleep e)[lr,lw]

extended with arrays (``a[e]`` reads and ``(a[e1] := e2)`` writes), which the
paper's C case studies need.  Every primitive command carries a *read label*
``lr`` (an upper bound on the machine-environment state that may affect its
running time) and a *write label* ``lw`` (a lower bound on the
machine-environment state it may modify); sequential composition carries no
labels (Sec. 3).  Labels may be omitted (``None``) and later filled in by
:mod:`repro.typesystem.inference`.

AST nodes use *identity* equality so they can serve as dictionary keys in the
layout pass and the type checker; use :func:`ast_equal` for structural
comparison (e.g. parser/pretty-printer round-trip tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional, Tuple

from ..lattice import Label

_node_counter = itertools.count(1)


def _fresh_node_id() -> int:
    return next(_node_counter)


# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, 1-based (``line:column`` up to but
    not including ``end_line:end_column``).

    Nodes built programmatically (via :mod:`repro.lang.builder` or raw
    constructors) carry :data:`SYNTHETIC_SPAN`, whose coordinates are all
    zero; the parser overwrites it with the real region.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    @property
    def is_synthetic(self) -> bool:
        """True for spans of nodes that never came from source text."""
        return self.line == 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


#: The span of every node not produced by the parser.
SYNTHETIC_SPAN = Span(0, 0, 0, 0)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

ARITH_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>")
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
BOOL_OPS = ("&&", "||")
BINARY_OPS = ARITH_OPS + CMP_OPS + BOOL_OPS
UNARY_OPS = ("-", "!")


@dataclass(eq=False)
class Expr:
    """Base class for expressions."""

    span: Span = field(default=SYNTHETIC_SPAN, kw_only=True)

    def variables(self) -> FrozenSet[str]:
        """Names of all variables (including array names) read by this expression."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(eq=False)
class IntLit(Expr):
    """An integer literal."""

    value: int

    def variables(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(eq=False)
class Var(Expr):
    """A scalar variable read."""

    name: str

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})


@dataclass(eq=False)
class ArrayRead(Expr):
    """Reading element ``array[index]``."""

    array: str
    index: Expr

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.array}) | self.index.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.index,)


@dataclass(eq=False)
class BinOp(Expr):
    """A binary operation. ``op`` is drawn from :data:`BINARY_OPS`."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(eq=False)
class UnOp(Expr):
    """A unary operation. ``op`` is drawn from :data:`UNARY_OPS`."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Command:
    """Base class for commands."""

    span: Span = field(default=SYNTHETIC_SPAN, kw_only=True)

    def labeled(self) -> bool:
        """True for the paper's *labeled commands* ``c[lr,lw]`` (all but Seq)."""
        return True

    def subcommands(self) -> Tuple["Command", ...]:
        return ()

    def walk(self) -> Iterator["Command"]:
        """All commands in this subtree, preorder."""
        yield self
        for sub in self.subcommands():
            yield from sub.walk()


@dataclass(eq=False)
class LabeledCommand(Command):
    """A command carrying read/write timing labels.

    ``read_label``/``write_label`` are ``None`` until annotated (either in the
    source text or by label inference).  ``node_id`` uniquely identifies the
    occurrence; the layout pass derives instruction addresses from it and the
    type checker keys per-occurrence facts (like ``pc`` at ``mitigate``) on it.
    """

    read_label: Optional[Label] = field(default=None, kw_only=True)
    write_label: Optional[Label] = field(default=None, kw_only=True)
    node_id: int = field(default_factory=_fresh_node_id, kw_only=True)

    def vars1(self) -> FrozenSet[str]:
        """The part of memory that may affect the timing of the *next*
        evaluation step of this command (Sec. 3.6).

        For compound commands this includes only the guard expression; for
        assignments and ``sleep`` it is the target and the full expression.
        """
        raise NotImplementedError


@dataclass(eq=False)
class Skip(LabeledCommand):
    """``skip[lr,lw]`` -- a real command that consumes observable time."""

    def vars1(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(eq=False)
class Assign(LabeledCommand):
    """``(x := e)[lr,lw]``."""

    target: str = ""
    expr: Expr = field(default_factory=lambda: IntLit(0))

    def vars1(self) -> FrozenSet[str]:
        return frozenset({self.target}) | self.expr.variables()


@dataclass(eq=False)
class ArrayAssign(LabeledCommand):
    """``(a[e1] := e2)[lr,lw]`` -- the array extension."""

    array: str = ""
    index: Expr = field(default_factory=lambda: IntLit(0))
    expr: Expr = field(default_factory=lambda: IntLit(0))

    def vars1(self) -> FrozenSet[str]:
        return (
            frozenset({self.array})
            | self.index.variables()
            | self.expr.variables()
        )


@dataclass(eq=False)
class Seq(Command):
    """``c1 ; c2`` -- carries no timing labels (Sec. 3)."""

    first: Command = None  # type: ignore[assignment]
    second: Command = None  # type: ignore[assignment]

    def labeled(self) -> bool:
        return False

    def subcommands(self) -> Tuple[Command, ...]:
        return (self.first, self.second)


@dataclass(eq=False)
class If(LabeledCommand):
    """``(if e then c1 else c2)[lr,lw]``."""

    cond: Expr = field(default_factory=lambda: IntLit(0))
    then_branch: Command = None  # type: ignore[assignment]
    else_branch: Command = None  # type: ignore[assignment]

    def vars1(self) -> FrozenSet[str]:
        return self.cond.variables()

    def subcommands(self) -> Tuple[Command, ...]:
        return (self.then_branch, self.else_branch)


@dataclass(eq=False)
class While(LabeledCommand):
    """``(while e do c)[lr,lw]``."""

    cond: Expr = field(default_factory=lambda: IntLit(0))
    body: Command = None  # type: ignore[assignment]

    def vars1(self) -> FrozenSet[str]:
        return self.cond.variables()

    def subcommands(self) -> Tuple[Command, ...]:
        return (self.body,)


@dataclass(eq=False)
class Sleep(LabeledCommand):
    """``(sleep e)[lr,lw]`` -- suspends for ``max(e, 0)`` cycles (Property 4)."""

    duration: Expr = field(default_factory=lambda: IntLit(0))

    def vars1(self) -> FrozenSet[str]:
        return self.duration.variables()


@dataclass(eq=False)
class Mitigate(LabeledCommand):
    """``(mitigate_n (e, l) c)[lr,lw]``.

    ``budget`` computes the initial prediction for the running time of
    ``body``; ``level`` bounds what can be learned from the timing of the
    mitigated block (no information above ``level`` leaks).  ``mit_id`` is the
    paper's source identifier eta; it defaults to the node id and names the
    command in mitigate-vector traces (Sec. 6.3).
    """

    budget: Expr = field(default_factory=lambda: IntLit(1))
    level: Label = None  # type: ignore[assignment]
    body: Command = None  # type: ignore[assignment]
    mit_id: Optional[str] = None

    def __post_init__(self) -> None:
        self.auto_id = self.mit_id is None
        if self.mit_id is None:
            self.mit_id = f"m{self.node_id}"

    def vars1(self) -> FrozenSet[str]:
        return self.budget.variables()

    def subcommands(self) -> Tuple[Command, ...]:
        return (self.body,)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def _flatten_seq(cmd: "Command") -> list:
    if isinstance(cmd, Seq):
        return _flatten_seq(cmd.first) + _flatten_seq(cmd.second)
    return [cmd]


def ast_equal(a: object, b: object) -> bool:
    """Structural equality of two AST fragments, ignoring node ids.

    Sequential composition is compared modulo associativity (``(a;b);c``
    equals ``a;(b;c)``) -- the semantics cannot tell them apart and the
    pretty-printer flattens them.  Mitigate identifiers are compared only
    when both are explicitly set.
    """
    if isinstance(a, Command) and isinstance(b, Command):
        if isinstance(a, Seq) or isinstance(b, Seq):
            flat_a = _flatten_seq(a)
            flat_b = _flatten_seq(b)
            return len(flat_a) == len(flat_b) and all(
                ast_equal(x, y) for x, y in zip(flat_a, flat_b)
            )
    if type(a) is not type(b):
        return False
    if isinstance(a, IntLit):
        return a.value == b.value
    if isinstance(a, Var):
        return a.name == b.name
    if isinstance(a, ArrayRead):
        return a.array == b.array and ast_equal(a.index, b.index)
    if isinstance(a, BinOp):
        return (
            a.op == b.op
            and ast_equal(a.left, b.left)
            and ast_equal(a.right, b.right)
        )
    if isinstance(a, UnOp):
        return a.op == b.op and ast_equal(a.operand, b.operand)
    if isinstance(a, LabeledCommand):
        if a.read_label != b.read_label or a.write_label != b.write_label:
            return False
        if isinstance(a, Skip):
            return True
        if isinstance(a, Assign):
            return a.target == b.target and ast_equal(a.expr, b.expr)
        if isinstance(a, ArrayAssign):
            return (
                a.array == b.array
                and ast_equal(a.index, b.index)
                and ast_equal(a.expr, b.expr)
            )
        if isinstance(a, If):
            return (
                ast_equal(a.cond, b.cond)
                and ast_equal(a.then_branch, b.then_branch)
                and ast_equal(a.else_branch, b.else_branch)
            )
        if isinstance(a, While):
            return ast_equal(a.cond, b.cond) and ast_equal(a.body, b.body)
        if isinstance(a, Sleep):
            return ast_equal(a.duration, b.duration)
        if isinstance(a, Mitigate):
            return (
                ast_equal(a.budget, b.budget)
                and a.level == b.level
                and ast_equal(a.body, b.body)
            )
    raise TypeError(f"not an AST node: {a!r}")


def seq(*commands: Command) -> Command:
    """Right-associated sequential composition of one or more commands."""
    if not commands:
        raise ValueError("seq() needs at least one command")
    result = commands[-1]
    for cmd in reversed(commands[:-1]):
        result = Seq(first=cmd, second=result)
    return result


def labeled_commands(root: Command) -> Tuple[LabeledCommand, ...]:
    """All labeled (non-Seq) commands in the tree, preorder."""
    return tuple(c for c in root.walk() if isinstance(c, LabeledCommand))


def mitigates(root: Command) -> Tuple[Mitigate, ...]:
    """All mitigate commands in the tree, preorder."""
    return tuple(c for c in root.walk() if isinstance(c, Mitigate))


def program_variables(root: Command) -> FrozenSet[str]:
    """Every variable or array name mentioned anywhere in the program."""
    names: set = set()
    for cmd in root.walk():
        if isinstance(cmd, LabeledCommand):
            names |= cmd.vars1()
        if isinstance(cmd, (If, While)):
            names |= cmd.cond.variables()
        if isinstance(cmd, Mitigate):
            names |= cmd.budget.variables()
    return frozenset(names)
