"""Hand-written lexer for the concrete syntax of the timing-label language.

The concrete syntax (see :mod:`repro.lang.parser`) uses a small token set:
identifiers, integer literals, multi-character operators, punctuation, and
keywords.  Comments run from ``//`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


class LexError(SyntaxError):
    """Raised on an unrecognized character in the source text."""


KEYWORDS = frozenset(
    {"skip", "if", "then", "else", "while", "do", "sleep", "mitigate"}
)

# Longest-match-first operator table.
_OPERATORS: Tuple[str, ...] = (
    ":=",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "@",
)


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is one of ``int``, ``ident``, ``keyword``,
    an operator's own spelling, or ``eof``."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r} @{self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens, ending with a single ``eof`` token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            start = i
            while i < n and source[i] != "\n":
                i += 1
            col += i - start
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            yield Token("int", source[start:i], line, col)
            col += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, col)
            col += i - start
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                yield Token(op, op, line, col)
                i += len(op)
                col += len(op)
                break
        else:
            raise LexError(
                f"unexpected character {ch!r} at line {line}, column {col}"
            )
    yield Token("eof", "", line, col)
